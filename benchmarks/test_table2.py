"""Benchmark: regenerate Table 2 (phase-abstracted GP netlists).

Covers both halves of the paper's GP story: the table itself runs on
already-phase-abstracted profiles, and a separate bench exercises the
PHASE engine on latch-based variants (the step the paper applies
before Table 2, with Theorem 3's factor-2 back-translation).
"""

from conftest import bench_register_cap, bench_scale

from repro.core import TBVEngine
from repro.experiments import (
    compare_useful_fractions,
    format_comparison,
    format_table,
    shape_holds,
)
from repro.experiments.table2 import run as run_table2
from repro.gen import gp

SMALL = ["L_SLB", "L_FLUSHN", "L_INTRO", "W_SFA", "CLB_CNTL",
         "D_DASA", "L_EMQN", "D_DUDD"]
MEDIUM = ["L_LRU", "L_PNTRN", "L_TBWKN", "W_GAR", "V_CACH", "V_DIR",
          "S_SCU1"]
LARGE = ["L_PFQ0", "I_IBBQN", "D_DCLA", "V_SNPM", "CP_RAS"]


def test_table2_small_designs(benchmark, sweep_config):
    scale = bench_scale(0.5)
    rows = benchmark.pedantic(
        run_table2, kwargs=dict(scale=scale, designs=SMALL,
                                sweep_config=sweep_config,
                                max_registers=bench_register_cap(200)),
        rounds=1, iterations=1)
    print()
    print(format_table(rows, f"Table 2 (small designs, scale={scale})"))
    comparisons = compare_useful_fractions(
        rows, [gp.profile(n).scaled(scale) for n in SMALL])
    print(format_comparison(comparisons, "Paper vs measured"))
    assert shape_holds(comparisons, monotone_slack=1)


def test_table2_medium_designs(benchmark, sweep_config):
    scale = bench_scale(0.25)
    rows = benchmark.pedantic(
        run_table2, kwargs=dict(scale=scale, designs=MEDIUM,
                                sweep_config=sweep_config,
                                max_registers=bench_register_cap(150)),
        rounds=1, iterations=1)
    print()
    print(format_table(rows, f"Table 2 (medium designs, scale={scale})"))
    sigma_useful = [sum(r.columns[p].useful for r in rows)
                    for p in ("original", "com", "crc")]
    assert sigma_useful[0] <= sigma_useful[2]


def test_table2_large_designs(benchmark, sweep_config):
    scale = bench_scale(0.06)
    rows = benchmark.pedantic(
        run_table2, kwargs=dict(scale=scale, designs=LARGE,
                                sweep_config=sweep_config,
                                max_registers=bench_register_cap(120)),
        rounds=1, iterations=1)
    print()
    print(format_table(rows, f"Table 2 (large designs, scale={scale})"))
    assert len(rows) == len(LARGE)


def test_table2_phase_abstraction_front_end(benchmark, sweep_config):
    """The pre-Table-2 step: latch-based GP design -> PHASE -> flow."""

    def flow():
        net = gp.generate_latched("L_FLUSHN", scale=0.05)
        engine = TBVEngine("PHASE,COM,RET,COM", sweep_config=sweep_config)
        return net, engine.run(net)

    net, result = benchmark.pedantic(flow, rounds=1, iterations=1)
    assert net.latches
    assert result.netlist.latches == []
    assert any(s.factor == 2 for s in result.chain.steps)
