"""Benchmark: transformations speed up QBF-based diameter calculation.

The paper's closing future-work direction: "A promising future research
direction is to apply this theory for speeding up quantified-Boolean-
formulae-based diameter calculation."  These benches realize it: the
exact 2QBF initial-diameter computation is run on a design before and
after retiming, and the back-translated bound (Theorem 2) is checked
to cover the original exact depth — with the transformed query solving
in a fraction of the iterations/time.
"""

import time

from repro.diameter import initial_depth
from repro.diameter.qbf import qbf_initial_diameter
from repro.netlist import NetlistBuilder
from repro.transform import retime


def pipeline_design(depth):
    b = NetlistBuilder(f"pipe{depth}")
    sig = b.input("i")
    for k in range(depth):
        sig = b.register(sig, name=f"p{k}")
    b.net.add_target(sig)
    return b.net


def test_qbf_diameter_exact_on_pipeline(benchmark):
    net = pipeline_design(3)

    def flow():
        return qbf_initial_diameter(net, max_k=8)

    result = benchmark.pedantic(flow, rounds=1, iterations=1)
    assert result.exact
    assert result.bound == initial_depth(net)


def test_qbf_diameter_shrinks_after_retiming(benchmark):
    net = pipeline_design(4)

    def flow():
        t0 = time.perf_counter()
        direct = qbf_initial_diameter(net, max_k=8)
        t_direct = time.perf_counter() - t0
        ret = retime(net)
        t0 = time.perf_counter()
        folded = qbf_initial_diameter(ret.netlist, max_k=8)
        t_folded = time.perf_counter() - t0
        lag = ret.step.lags[net.targets[0]]
        return direct, folded, lag, t_direct, t_folded

    direct, folded, lag, t_direct, t_folded = benchmark.pedantic(
        flow, rounds=1, iterations=1)
    assert direct.exact and folded.exact
    print(f"\nQBF diameter: direct {direct.bound} "
          f"({t_direct * 1e3:.0f} ms), retimed {folded.bound} + lag "
          f"{lag} ({t_folded * 1e3:.0f} ms)")
    # The retimed pipeline is combinational: a single 2QBF at k = 0.
    assert folded.bound == 1
    # Theorem 2: the back-translated bound covers the exact depth.
    assert folded.bound + lag >= initial_depth(net)
    # And fewer (or equal) k-iterations were needed.
    assert len(folded.checks) <= len(direct.checks)


def test_qbf_diameter_on_toggler_feedback(benchmark):
    b = NetlistBuilder("fb")
    i = b.input("i")
    r = b.register(name="r")
    b.connect(r, b.xor(r, i))
    b.net.add_target(r)

    def flow():
        return qbf_initial_diameter(b.net, max_k=4)

    result = benchmark.pedantic(flow, rounds=1, iterations=1)
    assert result.exact
    assert result.bound == initial_depth(b.net) == 2
