"""Benchmark: completing BMC with back-translated diameter bounds.

The paper's raison d'être: "a bounded check of depth equal to the
diameter constitutes a complete proof."  These benches time the whole
flow — transform, bound, back-translate, discharge with BMC — against
plain (incomplete) BMC, and verify the completeness verdicts against
the exact oracle.
"""

from repro.core import TBVEngine
from repro.diameter import first_hit_time
from repro.gen import iscas89
from repro.netlist import NetlistBuilder
from repro.unroll import FALSIFIED, PROVEN, bmc, k_induction


def equal_streams_design(depth=3):
    """Two delayed copies of one input compared: never unequal."""
    b = NetlistBuilder("eq")
    x = b.input("x")
    a = x
    c = x
    for k in range(depth):
        a = b.register(a, name=f"a{k}")
        c = b.register(c, name=f"b{k}")
    t = b.buf(b.xor(a, c), name="t")
    b.net.add_target(t)
    return b.net, t


def test_complete_proof_via_tbv_bound(benchmark, sweep_config):
    net, t = equal_streams_design(3)

    def flow():
        report = TBVEngine("COM,RET,COM",
                           sweep_config=sweep_config).run(net).reports[0]
        if report.status == "proven":
            return report, None
        return report, bmc(net, t, max_depth=100,
                           complete_bound=report.bound)

    report, result = benchmark.pedantic(flow, rounds=1, iterations=1)
    if result is not None:
        assert result.status == PROVEN
    assert first_hit_time(net, t) is None


def test_complete_bmc_on_generated_design(benchmark, sweep_config):
    net = iscas89.generate("S641")

    def flow():
        reports = TBVEngine("COM,RET,COM",
                            sweep_config=sweep_config).run(net).reports
        outcomes = []
        for report in reports:
            if report.status == "bounded" and report.bound < 25:
                outcomes.append(bmc(net, report.target, max_depth=60,
                                    complete_bound=report.bound))
        return outcomes

    outcomes = benchmark.pedantic(flow, rounds=1, iterations=1)
    assert outcomes
    assert all(o.is_complete for o in outcomes)


def test_bmc_window_without_bound_is_incomplete(benchmark):
    """Baseline: the same check without a diameter bound can only
    report BOUNDED — the incompleteness the paper sets out to fix."""
    net, t = equal_streams_design(3)

    def plain():
        return bmc(net, t, max_depth=10)

    result = benchmark.pedantic(plain, rounds=1, iterations=1)
    assert result.status == "bounded"
    assert not result.is_complete


def test_k_induction_baseline(benchmark):
    """The cited alternative completion technique ([5]): k-induction
    with simple-path constraints on the same problem."""
    net, t = equal_streams_design(2)

    def induct():
        return k_induction(net, t, max_k=6)

    result = benchmark.pedantic(induct, rounds=1, iterations=1)
    assert result.status == PROVEN


def test_falsification_inside_window(benchmark, sweep_config):
    b = NetlistBuilder("hit")
    sig = b.input("i")
    for k in range(4):
        sig = b.register(sig, name=f"p{k}")
    b.net.add_target(sig)

    def flow():
        report = TBVEngine("COM,RET,COM",
                           sweep_config=sweep_config).run(b.net).reports[0]
        return report, bmc(b.net, b.net.targets[0], max_depth=100,
                           complete_bound=report.bound)

    report, result = benchmark.pedantic(flow, rounds=1, iterations=1)
    assert result.status == FALSIFIED
    assert result.counterexample.depth < report.bound
