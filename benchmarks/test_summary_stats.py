"""Benchmark: the Section 4 in-text summary statistics.

The paper's headline numbers: useful-target percentage grows from 30%
to 34% (COM) to 40% (COM,RET,COM) on ISCAS89, and from 33% to 39% to
44% on GP — "we increase the percentage by 10% or more of such targets
in both ISCAS89 and GP netlists."  This bench reproduces the aggregate
percentages on a representative design subset and asserts the growth.
"""

from conftest import bench_register_cap, bench_scale

from repro.experiments import compare_useful_fractions, cumulative
from repro.experiments.table1 import run as run_table1
from repro.experiments.table2 import run as run_table2
from repro.gen import gp, iscas89

T1_REPRESENTATIVE = ["S27", "S641", "S713", "S953", "S967", "S1488",
                     "S1196", "S820", "S991", "PROLOG", "S3330",
                     "S5378", "S298", "S499"]
T2_REPRESENTATIVE = ["L_SLB", "L_FLUSHN", "L_INTRO", "L_LRU", "D_DUDD",
                     "L_TBWKN", "W_SFA", "CLB_CNTL"]


def _fractions(rows):
    sigma = cumulative(rows)
    return tuple(sigma.columns[p].useful / max(1, sigma.columns[p].targets)
                 for p in ("original", "com", "crc"))


def test_summary_iscas89_percentages(benchmark, sweep_config):
    rows = benchmark.pedantic(
        run_table1, kwargs=dict(scale=1.0, designs=T1_REPRESENTATIVE,
                                sweep_config=sweep_config,
                                max_registers=bench_register_cap(250)),
        rounds=1, iterations=1)
    orig, com, crc = _fractions(rows)
    print(f"\nISCAS89 useful fractions: original {orig:.1%}, "
          f"COM {com:.1%}, COM,RET,COM {crc:.1%} "
          f"(paper: 30% / 34% / 40%)")
    assert orig <= com <= crc
    # The paper's claim: the full pipeline gains >= 10% relative.
    assert crc >= orig * 1.10


def test_summary_gp_percentages(benchmark, sweep_config):
    scale = bench_scale(0.5)
    rows = benchmark.pedantic(
        run_table2, kwargs=dict(scale=scale, designs=T2_REPRESENTATIVE,
                                sweep_config=sweep_config,
                                max_registers=bench_register_cap(200)),
        rounds=1, iterations=1)
    orig, com, crc = _fractions(rows)
    print(f"\nGP useful fractions: original {orig:.1%}, COM {com:.1%}, "
          f"COM,RET,COM {crc:.1%} (paper: 33% / 39% / 44%)")
    assert orig <= crc
    assert crc > orig


def test_summary_register_category_shift(benchmark, sweep_config):
    """Section 4 also reports the register-population shift: retiming
    drains the acyclic class (ISCAS89: 21% AC originally, 10% after
    COM,RET,COM — 'this drop in acyclic registers is due primarily to
    their elimination by retiming')."""
    rows = benchmark.pedantic(
        run_table1, kwargs=dict(scale=1.0,
                                designs=["PROLOG", "S3330", "S6669",
                                         "S953", "S967", "S5378"],
                                sweep_config=sweep_config,
                                max_registers=bench_register_cap(250)),
        rounds=1, iterations=1)
    sigma = cumulative(rows)
    ac_orig = sigma.columns["original"].profile[1]
    ac_crc = sigma.columns["crc"].profile[1]
    print(f"\nAC registers: original {ac_orig}, after COM,RET,COM "
          f"{ac_crc}")
    assert ac_crc < ac_orig
