"""Microbenchmarks for the substrate engines.

Not tied to a specific paper table; they track the throughput of the
pieces every experiment depends on (SAT, BDD, sweeping, retiming LP,
structural analysis) so regressions in the substrates are visible
independently of the end-to-end numbers.
"""

from repro.bdd import BDD, SymbolicNetlist
from repro.diameter import StructuralAnalysis
from repro.gen import iscas89
from repro.netlist import NetlistBuilder, s27
from repro.sat import Solver, neg, pos
from repro.sim import random_signatures
from repro.transform import RetimingGraph, min_register_lags, \
    redundancy_removal, retime


def test_sat_pigeonhole(benchmark):
    def php():
        solver = Solver()
        holes, pigeons = 5, 6
        var = {(p, h): solver.new_var() for p in range(pigeons)
               for h in range(holes)}
        for p in range(pigeons):
            solver.add_clause([pos(var[p, h]) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([neg(var[p1, h]),
                                       neg(var[p2, h])])
        return solver.solve()

    assert benchmark(php) == "unsat"


def test_bdd_counter_preimage(benchmark):
    b = NetlistBuilder("cnt")
    regs = b.registers(6, prefix="c")
    b.connect_word(regs, b.increment(regs))
    b.net.add_target(regs[-1])

    def preimages():
        sym = SymbolicNetlist(b.net)
        states = sym.bdd.var(sym.state_vars[regs[-1]])
        for _ in range(4):
            states = sym.preimage(states)
        return sym.bdd.count_nodes(states)

    assert benchmark(preimages) > 0


def test_random_signature_throughput(benchmark):
    net = iscas89.generate("PROLOG")
    result = benchmark.pedantic(
        lambda: random_signatures(net, cycles=8, width=64),
        rounds=2, iterations=1)
    assert len(result) == len(net)


def test_com_sweep_s27(benchmark):
    net = s27()
    result = benchmark.pedantic(lambda: redundancy_removal(net),
                                rounds=2, iterations=1)
    assert result.netlist.num_registers() <= net.num_registers()


def test_retiming_lp(benchmark):
    net = iscas89.generate("S6669", scale=0.5)
    graph = RetimingGraph(net)

    def solve():
        return min_register_lags(graph)

    lags = benchmark.pedantic(solve, rounds=2, iterations=1)
    assert lags


def test_retime_end_to_end(benchmark):
    net = iscas89.generate("S1196")
    result = benchmark.pedantic(lambda: retime(net),
                                rounds=2, iterations=1)
    assert result.netlist.num_registers() <= net.num_registers()


def test_structural_analysis_large(benchmark):
    net = iscas89.generate("S13207_1", scale=0.5)

    def analyze():
        analysis = StructuralAnalysis(net)
        return [analysis.bound(t) for t in net.targets]

    bounds = benchmark.pedantic(analyze, rounds=2, iterations=1)
    assert len(bounds) == len(net.targets)
