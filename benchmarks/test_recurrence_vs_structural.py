"""Benchmark: recurrence diameter vs the structural bound (Section 1).

The paper motivates the structural technique of [7] against the
recurrence diameter of [2]: "the recurrence diameter may be
exponentially larger than the diameter ... [the structural] approach
may yield tight bounds for certain designs (primarily acyclic and
memory-based) for which the recurrence diameter is loose, though may
also result in exponentially-loose bounds for other designs."  These
benches reproduce both directions of that trade-off, plus the timing
gap.
"""

from repro.diameter import recurrence_diameter, structural_diameter_bound
from repro.netlist import NetlistBuilder
from repro.gen import blocks


def counter_net(width):
    b = NetlistBuilder(f"counter{width}")
    regs = b.registers(width, prefix="c")
    b.connect_word(regs, b.increment(regs))
    t = b.buf(b.and_(*regs), name="t")
    b.net.add_target(t)
    return b.net, t


def memory_net(rows, width):
    b = NetlistBuilder("mem")
    cells = blocks.add_memory(b, rows, width, "m")
    t = b.buf(b.or_(*cells), name="t")
    b.net.add_target(t)
    return b.net, t


def pipeline_net(depth):
    b = NetlistBuilder("pipe")
    sig = b.input("i")
    for k in range(depth):
        sig = b.register(sig, name=f"p{k}")
    b.net.add_target(sig)
    return b.net, sig


def test_memory_structural_wins(benchmark):
    """Memory designs: structural = rows + 1; recurrence explodes in
    the number of *states* of the array."""
    net, t = memory_net(rows=3, width=2)

    def both():
        s = structural_diameter_bound(net, t)
        r = recurrence_diameter(net, max_k=24)
        return s, r

    s, r = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nmemory 3x2: structural {s}, recurrence "
          f"{'>' if not r.exact else ''}{r.bound}")
    assert s == 4  # rows + 1
    assert (not r.exact) or r.bound > s


def test_pipeline_both_tight(benchmark):
    net, t = pipeline_net(4)

    def both():
        s = structural_diameter_bound(net, t)
        r = recurrence_diameter(net, max_k=40)
        return s, r

    s, r = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\npipeline-4: structural {s}, recurrence {r.bound}")
    assert s == 5
    assert r.exact


def test_counter_structural_loose_direction(benchmark):
    """For a dense FSM both are exponential; the structural GC rule
    saturates at the state count while recurrence enumerates paths by
    SAT (far more expensive)."""
    net, t = counter_net(3)

    def both():
        s = structural_diameter_bound(net, t)
        r = recurrence_diameter(net, max_k=16)
        return s, r

    s, r = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\ncounter-3: structural {s}, recurrence {r.bound} "
          f"(exact={r.exact})")
    assert s == 8
    assert r.exact and r.bound == 8


def test_structural_is_orders_of_magnitude_faster(benchmark):
    """The paper: 'the structural diameter overapproximation algorithms
    consume less than 1 second and 1 MB per target.'"""
    net, t = memory_net(rows=4, width=3)

    def structural():
        return structural_diameter_bound(net, t)

    bound = benchmark(structural)
    assert bound == 5


def test_recurrence_cost_grows_with_depth(benchmark):
    net, t = counter_net(2)

    def recurrence():
        return recurrence_diameter(net, max_k=10)

    result = benchmark.pedantic(recurrence, rounds=3, iterations=1)
    assert result.exact and result.bound == 4
