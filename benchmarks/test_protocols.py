"""Benchmark: end-to-end verification of protocol workloads.

Realistic safety properties (one-hot arbitration, FIFO flag
consistency, credit conservation) discharged by the full stack — the
"automatic proofs that otherwise would be infeasible" the abstract
promises, on designs with meaningful targets rather than output pins.
"""

from repro.core import prove
from repro.gen.protocols import (
    credit_channel,
    fifo_with_flags,
    round_robin_arbiter,
)
from repro.unroll import PROVEN, k_induction


def test_arbiter_proof(benchmark, sweep_config):
    net, violation = round_robin_arbiter(3)

    def flow():
        return prove(net, violation, sweep_config=sweep_config,
                     max_complete_depth=40, induction_k=4)

    result = benchmark.pedantic(flow, rounds=1, iterations=1)
    assert result.status == "proven"
    print(f"\narbiter: {result.method} in {result.seconds * 1e3:.0f} ms")


def test_fifo_proof(benchmark, sweep_config):
    net, violation = fifo_with_flags(depth=3, width=2)

    def flow():
        return prove(net, violation, sweep_config=sweep_config,
                     max_complete_depth=40, induction_k=6)

    result = benchmark.pedantic(flow, rounds=1, iterations=1)
    assert result.status == "proven"
    print(f"\nfifo: {result.method} in {result.seconds * 1e3:.0f} ms")


def test_credit_channel_proof(benchmark, sweep_config):
    net, violation = credit_channel(credits=3)

    def flow():
        return prove(net, violation, sweep_config=sweep_config,
                     max_complete_depth=40, induction_k=6)

    result = benchmark.pedantic(flow, rounds=1, iterations=1)
    assert result.status == "proven"
    print(f"\ncredit: {result.method} in {result.seconds * 1e3:.0f} ms")


def test_arbiter_scales_with_requesters(benchmark):
    def flow():
        outcomes = []
        for n in (2, 3, 4):
            net, violation = round_robin_arbiter(n)
            outcomes.append(k_induction(net, violation, max_k=4))
        return outcomes

    outcomes = benchmark.pedantic(flow, rounds=1, iterations=1)
    assert all(o.status == PROVEN for o in outcomes)
