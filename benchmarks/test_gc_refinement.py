"""Ablation: the reachable-state GC refinement.

The paper's engine reports per-component GC bounds tighter than 2^k
(e.g. 33 for a 6-register component), indicating a reachability-style
refinement; our sound variant extracts the component with a freed
environment and counts its reachable states symbolically.  This bench
measures the bound uplift and its cost on mod-counter workloads.
"""

from repro.core import TBVEngine
from repro.diameter import StructuralAnalysis, first_hit_time
from repro.netlist import NetlistBuilder


def mod_counter_design(width, modulus, value):
    b = NetlistBuilder(f"mod{modulus}")
    regs = b.registers(width, prefix="c")
    wrap = b.word_eq(regs, b.word_const(modulus - 1, width))
    bump = b.word_mux(wrap, b.word_const(0, width), b.increment(regs))
    b.connect_word(regs, bump)
    t = b.buf(b.word_eq(regs, b.word_const(value, width)), name="t")
    b.net.add_target(t)
    return b.net, t


def test_refinement_tightens_gc_bounds(benchmark):
    net, t = mod_counter_design(6, 33, 60)

    def both():
        coarse = StructuralAnalysis(net).bound(t)
        refined = StructuralAnalysis(net, refine_gc_limit=6).bound(t)
        return coarse, refined

    coarse, refined = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nmod-33 counter: coarse {coarse}, refined {refined} "
          f"(paper's S1488-style component: 33)")
    assert coarse == 64
    assert refined == 33


def test_refinement_moves_targets_under_threshold(benchmark,
                                                  sweep_config):
    # A 6-register mod-40 component: useless at 2^6 = 64, useful at 40.
    net, t = mod_counter_design(6, 40, 60)

    def both():
        coarse = TBVEngine("", sweep_config=sweep_config).run(net)
        refined = TBVEngine("", sweep_config=sweep_config,
                            refine_gc_limit=6).run(net)
        return coarse, refined

    coarse, refined = benchmark.pedantic(both, rounds=1, iterations=1)
    assert len(coarse.useful(50)) == 0
    assert len(refined.useful(50)) == 1


def test_refinement_cost(benchmark):
    net, t = mod_counter_design(6, 33, 60)

    def refined():
        return StructuralAnalysis(net, refine_gc_limit=6).bound(t)

    bound = benchmark(refined)
    assert bound == 33


def test_refined_bound_sound_on_reachable_target(benchmark):
    net, t = mod_counter_design(5, 20, 17)

    def flow():
        return StructuralAnalysis(net, refine_gc_limit=5).bound(t)

    bound = benchmark.pedantic(flow, rounds=1, iterations=1)
    hit = first_hit_time(net, t)
    assert hit is not None and hit < bound
