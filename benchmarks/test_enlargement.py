"""Benchmark: target enlargement (Section 3.4, Theorem 4).

Sweeps the enlargement depth ``k`` on counter-style targets and
measures (a) how much shallower the enlarged target's first hit gets —
the technique's purpose ("render a target which may be hit at a
shallower depth ... and with a higher probability") — and (b) the
preimage-computation cost.
"""

import pytest

from repro.diameter import first_hit_time, structural_diameter_bound
from repro.netlist import NetlistBuilder
from repro.transform import enlarge_target


def counter_target(width, value):
    b = NetlistBuilder(f"cnt{width}")
    regs = b.registers(width, prefix="c")
    b.connect_word(regs, b.increment(regs))
    t = b.buf(b.word_eq(regs, b.word_const(value, width)), name="t")
    b.net.add_target(t)
    return b.net, t


@pytest.mark.parametrize("k", [1, 2, 3])
def test_enlargement_depth_sweep(benchmark, k):
    net, t = counter_target(4, 11)

    def enlarge():
        return enlarge_target(net, t, k=k)

    result = benchmark.pedantic(enlarge, rounds=1, iterations=1)
    mapped = result.step.target_map[t]
    hit_orig = first_hit_time(net, t)
    hit_enl = first_hit_time(result.netlist, mapped)
    print(f"\nk={k}: first hit {hit_orig} -> {hit_enl}")
    assert hit_enl == hit_orig - k  # counters: exactly k shallower
    # Theorem 4: the window invariant.
    assert hit_orig <= hit_enl + k


def test_enlargement_plus_bounding(benchmark):
    """The combined flow: enlarge, bound the enlarged target, apply
    Theorem 4 — the total window covers the original hit."""
    net, t = counter_target(3, 6)

    def flow():
        result = enlarge_target(net, t, k=2)
        mapped = result.step.target_map[t]
        bound = structural_diameter_bound(result.netlist, mapped)
        return bound + result.step.depth

    window = benchmark.pedantic(flow, rounds=1, iterations=1)
    hit = first_hit_time(net, t)
    assert hit < window


def test_enlargement_sat_vs_bdd(benchmark):
    """[24]-style SAT enumeration vs BDD preimages: same frontier,
    different substrate; both must shift the first hit by k."""
    from repro.transform import enlarge_target_sat

    net, t = counter_target(4, 11)

    def both():
        bdd_res = enlarge_target(net, t, k=2)
        sat_res = enlarge_target_sat(net, t, k=2)
        return bdd_res, sat_res

    bdd_res, sat_res = benchmark.pedantic(both, rounds=1, iterations=1)
    hit_bdd = first_hit_time(bdd_res.netlist,
                             bdd_res.step.target_map[t])
    hit_sat = first_hit_time(sat_res.netlist,
                             sat_res.step.target_map[t])
    assert hit_bdd == hit_sat == 9


def test_enlargement_empties_unreachable_target(benchmark):
    b = NetlistBuilder("stuck")
    r = b.register(name="r")
    b.connect(r, r)
    t = b.buf(r, name="t")
    b.net.add_target(t)

    def enlarge():
        return enlarge_target(b.net, t, k=2)

    result = benchmark.pedantic(enlarge, rounds=1, iterations=1)
    mapped = result.step.target_map[t]
    assert first_hit_time(result.netlist, mapped) is None
