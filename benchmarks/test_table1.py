"""Benchmark: regenerate Table 1 (ISCAS89 diameter bounding).

Prints the same row format the paper reports — per design, for each of
Original / COM / COM,RET,COM: the register classification
``CC;AC;MC+QC;GC`` and ``|T'|/|T|; avg d̂`` — and checks the headline
shape: the useful-target fraction grows along the pipeline sequence.
"""

from conftest import bench_register_cap, bench_scale

from repro.experiments import (
    compare_useful_fractions,
    format_comparison,
    format_table,
    shape_holds,
)
from repro.experiments.table1 import run as run_table1
from repro.gen import iscas89

#: Designs grouped by register population (full table via
#: REPRO_BENCH_FULL=1).
SMALL = ["S27", "S1196", "S1238", "S386", "S510", "S641", "S713",
         "S820", "S832", "S953", "S967", "S1488", "S1494", "S991"]
MEDIUM = ["PROLOG", "S3330", "S1269", "S5378", "S1423", "S298",
          "S344", "S349", "S499", "S526N"]
LARGE = ["S13207_1", "S15850_1", "S9234_1", "S38584_1", "S35932"]


def _run(designs, scale, cap, sweep_config):
    return run_table1(scale=scale, designs=designs, max_registers=cap,
                      sweep_config=sweep_config)


def test_table1_small_designs(benchmark, sweep_config):
    rows = benchmark.pedantic(
        _run, args=(SMALL, 1.0, None, sweep_config),
        rounds=1, iterations=1)
    print()
    print(format_table(rows, "Table 1 (small designs, full scale)"))
    comparisons = compare_useful_fractions(
        rows, [iscas89.profile(n) for n in SMALL])
    print(format_comparison(comparisons, "Paper vs measured"))
    assert shape_holds(comparisons)
    assert comparisons[2].measured_useful > comparisons[0].measured_useful


def test_table1_medium_designs(benchmark, sweep_config):
    scale = bench_scale(0.5)
    cap = bench_register_cap(250)
    rows = benchmark.pedantic(
        _run, args=(MEDIUM, scale, cap, sweep_config),
        rounds=1, iterations=1)
    print()
    print(format_table(rows, f"Table 1 (medium designs, scale={scale})"))
    sigma_useful = [sum(r.columns[p].useful for r in rows)
                    for p in ("original", "com", "crc")]
    assert sigma_useful[0] <= sigma_useful[1] <= sigma_useful[2]


def test_table1_large_designs(benchmark, sweep_config):
    scale = bench_scale(0.1)
    cap = bench_register_cap(120)
    rows = benchmark.pedantic(
        _run, args=(LARGE, scale, cap, sweep_config),
        rounds=1, iterations=1)
    print()
    print(format_table(rows, f"Table 1 (large designs, scale={scale})"))
    assert all(set(r.columns) == {"original", "com", "crc"} for r in rows)
