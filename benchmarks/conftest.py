"""Shared fixtures for the benchmark harness.

Every paper artifact (Tables 1 and 2 plus the Section 4 summary
statistics) has a corresponding benchmark module; ablation benches
cover the design choices called out in ``DESIGN.md``.  Scales default
to small-but-representative subsets so ``pytest benchmarks/
--benchmark-only`` completes in minutes; set ``REPRO_BENCH_SCALE`` /
``REPRO_BENCH_FULL=1`` for larger runs.
"""

import os

import pytest

from repro.transform import SweepConfig


def bench_scale(default=0.25):
    if os.environ.get("REPRO_BENCH_FULL"):
        return 1.0
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def bench_register_cap(default=150):
    if os.environ.get("REPRO_BENCH_FULL"):
        return None
    return int(os.environ.get("REPRO_BENCH_MAX_REGISTERS", default))


@pytest.fixture(scope="session")
def sweep_config():
    return SweepConfig(sim_cycles=8, sim_width=32, conflict_budget=300)
