"""Ablation: retiming's Theorem 2 penalty and ordering effects.

Section 4 notes: "In some cases, the diameter bound computed for a
retimed netlist is slightly larger than that of the original netlist —
for example, with S1196 and S15850_1.  This is partially due to the
inequality in Theorem 2; we must add the negated target lag to its
diameter bound."  These benches quantify that penalty, confirm it stays
small ("the potential for increase tends to be very small ... whereas
the potential for decrease is exponentially greater"), and ablate the
pipeline ordering (RET without surrounding COMs).
"""

from conftest import bench_scale

from repro.core import TBVEngine
from repro.experiments import evaluate_design
from repro.gen import iscas89


def test_ablation_theorem2_penalty_on_ac_designs(benchmark, sweep_config):
    """S1196-profile: all-AC design where retiming can only add lag."""

    def flow():
        net = iscas89.generate("S1196")
        return evaluate_design(net, sweep_config=sweep_config)

    row = benchmark.pedantic(flow, rounds=1, iterations=1)
    avg_orig = row.columns["original"].average
    avg_crc = row.columns["crc"].average
    print(f"\nS1196 avg bound: original {avg_orig:.1f}, "
          f"COM,RET,COM {avg_crc:.1f} (paper: 3.3 -> 4.3)")
    # The penalty exists but every target stays useful.
    assert avg_crc >= avg_orig
    assert row.columns["crc"].useful == row.columns["original"].useful


def test_ablation_penalty_bounded_by_lag(benchmark, sweep_config):
    """Per-target: the CRC bound exceeds the COM bound by at most the
    recorded lag (Theorem 2 is an inequality, never worse than +i)."""

    def flow():
        net = iscas89.generate("S6669", scale=bench_scale(0.5))
        com = TBVEngine("COM", sweep_config=sweep_config).run(net)
        crc = TBVEngine("COM,RET,COM", sweep_config=sweep_config).run(net)
        return net, com, crc

    net, com, crc = benchmark.pedantic(flow, rounds=1, iterations=1)
    ret_step = crc.chain.steps[1]
    checked = 0
    for rep_com, rep_crc in zip(com.reports, crc.reports):
        if rep_com.status != "bounded" or rep_crc.status != "bounded":
            continue
        # Resolve the target entering the RET step to read its lag.
        entering = crc.chain.steps[0].target_map.get(rep_crc.target)
        lag = ret_step.lags.get(entering, 0)
        assert rep_crc.bound <= rep_com.bound + lag + 1
        checked += 1
    assert checked > 0


def test_ablation_ret_without_com(benchmark, sweep_config):
    """RET alone vs COM,RET,COM: the paper brackets retiming with
    redundancy removal because retiming duplicates logic into the
    stump and benefits from pre-merged fanins."""

    def flow():
        net = iscas89.generate("S953")
        ret_only = TBVEngine("RET", sweep_config=sweep_config).run(net)
        full = TBVEngine("COM,RET,COM", sweep_config=sweep_config).run(net)
        return ret_only, full

    ret_only, full = benchmark.pedantic(flow, rounds=1, iterations=1)
    print(f"\nS953 useful: RET alone {len(ret_only.useful())}, "
          f"COM,RET,COM {len(full.useful())}")
    assert len(full.useful()) >= len(ret_only.useful())


def test_ablation_gc_bound_dominates_everything(benchmark, sweep_config):
    """The experiments 'assume an exponential diameter increase' for
    GCs; this bench confirms GC-dominated designs stay useless under
    every pipeline (the S35932 row: 0/320 in all columns)."""

    def flow():
        net = iscas89.generate("S35932", scale=0.05)
        return evaluate_design(net, sweep_config=sweep_config)

    row = benchmark.pedantic(flow, rounds=1, iterations=1)
    for pipeline in ("original", "com", "crc"):
        assert row.columns[pipeline].useful == 0
