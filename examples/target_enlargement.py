"""Target enlargement (Section 3.4) on a counter-guarded target.

A 4-bit counter target ``counter == 11`` is first hittable at time 11.
A k-step enlargement replaces it with the characteristic function of
the states exactly k steps from a hit (computed by BDD preimages with
inductive simplification), which is hit k steps earlier — and by
Theorem 4 a diameter bound d(t') for the enlarged target certifies the
original target hittable within d(t') + k steps, if at all.

Run:  python examples/target_enlargement.py
"""

from repro.diameter import first_hit_time, structural_diameter_bound
from repro.netlist import NetlistBuilder
from repro.transform import enlarge_target
from repro.unroll import bmc


def build_counter_target(width=4, value=11):
    b = NetlistBuilder("enlarge-demo")
    regs = b.registers(width, prefix="c")
    b.connect_word(regs, b.increment(regs))
    t = b.buf(b.word_eq(regs, b.word_const(value, width)),
              name=f"count_eq_{value}")
    b.net.add_target(t)
    return b.net, t


def main():
    net, target = build_counter_target()
    hit = first_hit_time(net, target)
    print(f"original target first hittable at time {hit}")

    for k in (1, 2, 4):
        result = enlarge_target(net, target, k=k)
        enlarged = result.step.target_map[target]
        hit_k = first_hit_time(result.netlist, enlarged)
        bound = structural_diameter_bound(result.netlist, enlarged)
        window = bound + result.step.depth
        print(f"k = {k}: enlarged target hit at {hit_k} "
              f"(shallower by {hit - hit_k}); "
              f"Theorem 4 window = d̂(t') + k = {bound} + {k} = {window}")
        assert hit <= window, "Theorem 4 violated!"

        # Discharge the enlarged target with BMC: any hit of t' plus
        # the k-step suffix witnesses the original target.
        check = bmc(result.netlist, enlarged, max_depth=hit_k + 1)
        print(f"       BMC finds the enlarged hit at depth "
              f"{check.counterexample.depth}")

    print("\nTheorem 4 held for every enlargement depth.")


if __name__ == "__main__":
    main()
