"""Regenerate a slice of the paper's Table 1 (ISCAS89 designs).

Synthesizes profile-faithful substitutes for a handful of ISCAS89
designs (the originals are not redistributable; see DESIGN.md), runs
the three transformation pipelines of Section 4 — Original, COM,
COM,RET,COM — and prints the table rows plus the paper-vs-measured
comparison of useful-target fractions.

Run:  python examples/iscas89_table.py [design ...]
"""

import sys

from repro.experiments import (
    compare_useful_fractions,
    format_comparison,
    format_table,
)
from repro.experiments.table1 import run as run_table1
from repro.gen import iscas89

DEFAULT_DESIGNS = ["S27", "S641", "S953", "S1196", "S1488", "PROLOG"]


def main(argv):
    designs = argv[1:] or DEFAULT_DESIGNS
    known = set(iscas89.design_names())
    unknown = [d for d in designs if d.upper() not in known]
    if unknown:
        raise SystemExit(f"unknown designs {unknown}; choose from "
                         f"{sorted(known)}")
    print(f"running Table 1 pipelines over {designs} ...")
    rows = run_table1(scale=1.0, designs=designs)
    print()
    print(format_table(rows, "Table 1 slice (profile-synthesized)"))
    print()
    comparisons = compare_useful_fractions(
        rows, [iscas89.profile(d) for d in designs])
    print(format_comparison(comparisons, "Paper vs measured |T'|"))
    print()
    for row in rows:
        o = row.columns["original"]
        c = row.columns["crc"]
        gained = c.useful - o.useful
        if gained > 0:
            print(f"  {row.name}: transformations made {gained} more "
                  f"target(s) provable by bounded checking")


if __name__ == "__main__":
    main(sys.argv)
