"""Strategy portfolios and localization refinement on a hard target.

Section 1, motivation 2: transformations "may vary both resource
requirements and tightness of the obtained approximation ... yet
another practical mechanism which may be attempted to discharge
difficult verification problems."  This example

1. builds a design mixing an easy pipeline cone with a deep counter
   cone,
2. races a portfolio of transformation strategies and keeps the best
   (still sound) bound per target, and
3. falls back to localization refinement (Section 3.5 soundly used:
   abstraction unreachability transfers, abstraction bounds do not)
   for the target the bounds cannot crack.

Run:  python examples/strategy_portfolio.py
"""

from repro.core import compare_strategies
from repro.netlist import NetlistBuilder
from repro.transform.localize_cegar import localization_refinement


def build_design():
    b = NetlistBuilder("portfolio-demo")
    # Easy cone: input pipeline observed directly.
    sig = b.input("data")
    for k in range(4):
        sig = b.register(sig, name=f"p{k}")
    easy = b.buf(sig, name="easy")
    b.net.add_target(easy)
    # Hard cone: 6-bit counter that wraps at 40; target value 60 is
    # unreachable but the structural bound is exponential (2**6 = 64,
    # over the paper's usefulness threshold of 50).
    regs = b.registers(6, prefix="c")
    wrap = b.word_eq(regs, b.word_const(39, 6))
    bump = b.word_mux(wrap, b.word_const(0, 6), b.increment(regs))
    b.connect_word(regs, bump)
    hard = b.buf(b.word_eq(regs, b.word_const(60, 6)), name="hard")
    b.net.add_target(hard)
    return b.net


def main():
    net = build_design()
    print(f"design: {net}\n")

    portfolio = compare_strategies(net)
    print(portfolio.summary())
    print("\nbest bound per target:")
    for target, (bound, strategy) in portfolio.best_per_target().items():
        name = net.gate(target).name
        print(f"  {name:<6} -> {bound} (via {strategy or '(none)'})")

    # The 'hard' target's bound stays exponential (a 5-bit GC): finish
    # it with localization refinement instead.
    hard = net.by_name("hard")
    bound, _ = portfolio.best(hard)
    print(f"\n'hard' bound {bound} is impractical for BMC; "
          f"running localization refinement ...")
    result = localization_refinement(net, hard, max_depth=64)
    for line in result.history:
        print(f"  {line}")
    print(f"=> {result.status.upper()} after {result.iterations} "
          f"iteration(s) keeping {result.abstraction_registers} "
          f"register(s)")


if __name__ == "__main__":
    main()
