"""A gigahertz-processor-style flow: phase abstraction then retiming.

The paper's Table 2 designs are level-sensitive-latch netlists from the
IBM Gigahertz Processor, folded to registers by phase abstraction [10]
before diameter bounding.  This example rebuilds that end-to-end flow
on a synthetic two-phase GP-profile design:

1. generate a latch-based (master/slave, two-phase-clocked) netlist,
2. PHASE: fold it modulo 2 (Theorem 3 doubles bounds on the way back),
3. COM,RET,COM: the Table 2 pipeline,
4. back-translate each target's bound through the whole chain and
   compare against the untransformed netlist.

Run:  python examples/gigahertz_pipeline.py
"""

from repro.core import TBVEngine
from repro.diameter import StructuralAnalysis
from repro.gen import gp


def describe(net, label):
    print(f"{label}: {len(net)} vertices, {len(net.inputs)} inputs, "
          f"{net.num_registers()} registers, {len(net.latches)} latches, "
          f"{len(net.targets)} targets")


def main():
    net = gp.generate_latched("L_FLUSHN", scale=0.1)
    describe(net, "latched GP design")

    engine = TBVEngine("PHASE,COM,RET,COM")
    result = engine.run(net)
    describe(result.netlist, "after PHASE,COM,RET,COM")

    print("\ntransformation chain:")
    for step in result.chain.steps:
        extra = ""
        if step.factor > 1:
            extra = f" (fold factor c = {step.factor}: Theorem 3)"
        if step.lags:
            lags = sorted(set(step.lags.values()))
            extra = f" (target lags {lags}: Theorem 2)"
        print(f"  {step.name:<6} {step.kind.value}{extra}")

    print("\nper-target results:")
    for report in result.reports:
        if report.status == "proven":
            print(f"  target {report.name or report.target}: PROVEN "
                  f"unreachable by the transformations alone")
        else:
            print(f"  target {report.name or report.target}: "
                  f"d̂(t') = {report.transformed_bound} on the folded "
                  f"netlist -> d̂(t) = {report.bound} on the original")

    # Contrast: bounding the latch-based netlist directly.
    analysis = StructuralAnalysis(net)
    print("\ndirect bounds on the latch netlist (no transformation):")
    for t in net.targets:
        print(f"  target {net.gate(t).name or t}: {analysis.bound(t)}")


if __name__ == "__main__":
    main()
