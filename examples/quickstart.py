"""Quickstart: complete a bounded proof with a transformed diameter bound.

Builds a small design whose target is unreachable, but not provably so
by simple induction: a mod-6 counter is observed through a 3-stage
pipeline, and the target asserts that the observed value is 7 — a state
the wrap-around never reaches.  Plain BMC can only ever say "no hit so
far".  The paper's flow — transform, bound the diameter on the reduced
netlist, back-translate via Theorems 1-2, and run BMC to exactly that
depth — yields a full proof.

Run:  python examples/quickstart.py
"""

from repro.core import TBVEngine
from repro.diameter import structural_diameter_bound
from repro.netlist import NetlistBuilder
from repro.unroll import bmc


def build_design():
    """input -> 3-stage pipeline -> enable of a mod-6 counter, with the
    target asserting the unreachable counter value 7."""
    b = NetlistBuilder("quickstart")
    enable = b.input("enable")
    for k in range(3):
        enable = b.register(enable, name=f"p{k}")
    counter = b.registers(3, prefix="c")
    wrap = b.word_eq(counter, b.word_const(5, 3))
    bumped = b.word_mux(wrap, b.word_const(0, 3), b.increment(counter))
    b.connect_word(counter, b.word_mux(enable, bumped, counter))
    t = b.buf(b.word_eq(counter, b.word_const(7, 3)), name="saw_seven")
    b.net.add_target(t)
    return b.net


def main():
    net = build_design()
    target = net.targets[0]
    print(f"design: {net}")

    # 1. The direct structural bound (CAV'02 technique) on the raw
    #    netlist: every register is acyclic, so the bound is small.
    direct = structural_diameter_bound(net, target)
    print(f"structural diameter bound, untransformed: {direct}")

    # 2. The paper's flow: COM (redundancy removal) merges the two
    #    identical pipelines; RET (normalized retiming) absorbs the
    #    remaining registers into the target's lag; the bound on the
    #    final (combinational!) netlist back-translates by Theorems
    #    1 and 2.
    engine = TBVEngine("COM,RET,COM")
    result = engine.run(net)
    report = result.reports[0]
    print(f"after COM,RET,COM: {result.netlist}")
    print(f"  transformed bound d̂(t') = {report.transformed_bound}")
    print(f"  back-translated bound d̂(t) = {report.bound} "
          f"(status: {report.status})")

    # 3. Completeness: a clean BMC window of that depth is a proof.
    if report.status == "proven":
        print("target discharged by the transformations alone")
        return
    check = bmc(net, target, max_depth=100, complete_bound=report.bound)
    print(f"BMC to depth {report.bound}: {check.status}")
    assert check.status == "proven"
    print("=> AG(!saw_seven) holds — a complete proof from a "
          "bounded check.")


if __name__ == "__main__":
    main()
