"""Certify a transformation with a sequential-equivalence miter.

Theorem 1's premise is trace equivalence (Definition 4).  Rather than
trusting the COM engine, this example *checks* it: the original and
reduced netlists are joined into a product machine sharing their
inputs, with a disagreement target per output pair — unreachable iff
the reduction preserved the semantics.  The check is discharged by the
library's own engines (sweeping across the two halves rediscovers the
merges), and the retimed netlist is shown to FAIL the cycle-accurate
check, which is precisely why Theorem 2 carries the lag term.

Run:  python examples/sequential_equivalence.py
"""

from repro.netlist import s27
from repro.transform import (
    check_equivalence,
    redundancy_removal,
    retime,
    strash,
)


def main():
    net = s27()
    print(f"original: {net}")

    for label, transform in (("STRASH", strash),
                             ("COM", redundancy_removal)):
        result = transform(net)
        mapped = result.step.target_map[net.targets[0]]
        verdict = check_equivalence(
            net, result.netlist, pairs=[(net.targets[0], mapped)])
        print(f"{label:<7} -> {result.netlist}")
        print(f"         miter verdict: {verdict.verdict} "
              f"(method: {verdict.method})")
        assert verdict.verdict == "equivalent"

    # Retiming is NOT cycle-accurate: the miter must catch the skew.
    from repro.netlist import NetlistBuilder

    b = NetlistBuilder("pipe")
    sig = b.input("i")
    for k in range(2):
        sig = b.register(sig, name=f"p{k}")
    t = b.buf(sig, name="t")
    b.net.add_target(t)
    ret = retime(b.net)
    mapped = ret.step.target_map[t]
    verdict = check_equivalence(b.net, ret.netlist, pairs=[(t, mapped)])
    print(f"RET     -> {ret.netlist} (target lag "
          f"{ret.step.lags[t]})")
    print(f"         miter verdict: {verdict.verdict} at depth "
          f"{verdict.counterexample_depth} — the temporal skew "
          f"Theorem 2 accounts for with '+ i'")
    assert verdict.verdict == "different"


if __name__ == "__main__":
    main()
