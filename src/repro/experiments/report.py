"""CLI: regenerate the full experimental report as a markdown artifact.

Usage::

    python -m repro.experiments.report [--out results.md] [--scale 0.35]
        [--max-registers 300] [--designs-t1 ...] [--designs-t2 ...]

Runs both tables, renders the rows, the Σ lines, and the paper
comparisons into one self-contained markdown document — the mechanism
by which ``EXPERIMENTS.md`` numbers are refreshed.
"""

from __future__ import annotations

import argparse
import platform
from typing import List, Optional, Sequence

from .. import obs
from ..gen import gp, iscas89
from ..resilience import Budget
from .compare import compare_useful_fractions, format_comparison
from .runner import RowResult, cumulative, format_table
from .table1 import run as run_table1
from .table2 import run as run_table2


def _scaled_profiles(profiles, scale, cap, designs):
    out = []
    wanted = {d.upper() for d in designs} if designs else None
    for p in profiles:
        if wanted is not None and p.name.upper() not in wanted:
            continue
        effective = scale
        if cap and p.registers * scale > cap:
            effective = cap / p.registers
        out.append(p.scaled(effective))
    return out


def generate_report(scale: float = 0.35,
                    max_registers: Optional[int] = 300,
                    designs_t1: Optional[Sequence[str]] = None,
                    designs_t2: Optional[Sequence[str]] = None,
                    budget: Optional[Budget] = None,
                    jobs: int = 1) -> str:
    """Run both tables and render a markdown report.

    ``budget`` is split evenly between the tables (Table 1 runs on a
    half slice, Table 2 on the remainder); exhausted designs render as
    error rows, so the report always completes.  ``jobs`` fans each
    table's designs across a process pool; rendered rows are in design
    order either way, so the document is identical at any jobs value.
    """
    # Monotonic timing (obs.Stopwatch wraps perf_counter): time.time()
    # is subject to NTP steps and can yield negative durations.
    watch = obs.stopwatch()
    lines: List[str] = [
        "# Experimental report (generated)",
        "",
        f"* scale: {scale}; per-design register cap: {max_registers}",
        f"* host: Python {platform.python_version()} on "
        f"{platform.system()} {platform.machine()}",
        "",
    ]
    with obs.span("report/table1"):
        rows1 = run_table1(scale=scale, designs=designs_t1,
                           max_registers=max_registers,
                           budget=budget.slice(0.5, name="report/t1")
                           if budget else None, jobs=jobs)
    lines.append("```")
    lines.append(format_table(rows1, "Table 1: ISCAS89 "
                                     "(profile-synthesized)"))
    lines.append("```")
    profiles1 = _scaled_profiles(iscas89.profiles(), scale,
                                 max_registers, designs_t1)
    lines.append("```")
    lines.append(format_comparison(
        compare_useful_fractions(rows1, profiles1),
        "Paper-vs-measured |T'| fractions (Table 1)"))
    lines.append("```")
    lines.append("")

    with obs.span("report/table2"):
        rows2 = run_table2(scale=scale, designs=designs_t2,
                           max_registers=max_registers, budget=budget,
                           jobs=jobs)
    lines.append("```")
    lines.append(format_table(rows2, "Table 2: GP (profile-synthesized,"
                                     " phase-abstracted)"))
    lines.append("```")
    profiles2 = _scaled_profiles(gp.profiles(), scale, max_registers,
                                 designs_t2)
    lines.append("```")
    lines.append(format_comparison(
        compare_useful_fractions(rows2, profiles2),
        "Paper-vs-measured |T'| fractions (Table 2)"))
    lines.append("```")
    lines.append("")
    sigma1 = cumulative(rows1)
    sigma2 = cumulative(rows2)
    lines.append("## Headline shape")
    lines.append("")
    for label, sigma, paper in (
            ("ISCAS89", sigma1, iscas89.TABLE1_SIGMA),
            ("GP", sigma2, gp.TABLE2_SIGMA)):
        frac = [sigma.columns[p].useful / max(1, sigma.columns[p].targets)
                for p in ("original", "com", "crc")]
        paper_frac = [paper[k]["useful"] / paper[k]["targets"]
                      for k in ("original", "com", "crc")]
        lines.append(
            f"* {label}: measured "
            f"{' → '.join(f'{x:.1%}' for x in frac)} "
            f"(paper full-scale: "
            f"{' → '.join(f'{x:.1%}' for x in paper_frac)})")
    lines.append("")
    lines.append(f"_Generated in {watch.elapsed:.1f} s._")
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="output file (default: stdout)")
    parser.add_argument("--scale", type=float, default=0.35)
    parser.add_argument("--max-registers", type=int, default=300)
    parser.add_argument("--designs-t1", type=str, default=None)
    parser.add_argument("--designs-t2", type=str, default=None)
    parser.add_argument("--timeout", type=float, default=0,
                        help="wall-clock budget in seconds for the "
                             "whole report (0 = unlimited)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for per-design fan-out "
                             "(default 1 = sequential)")
    parser.add_argument("--cubes", action="store_true",
                        help="split hard solver queries into cube sets "
                             "raced across --jobs workers (verdicts "
                             "and tables are unchanged)")
    parser.add_argument("--progress", action="store_true",
                        help="report live engine progress on stderr")
    args = parser.parse_args(argv)
    obs.trace.setup_cli(progress_flag=args.progress)
    if args.cubes:
        from ..sat import cube as _cube

        _cube.set_cubes_enabled(True)
        _cube.set_cube_config(jobs=max(1, args.jobs))
    report = generate_report(
        scale=args.scale,
        max_registers=args.max_registers or None,
        designs_t1=args.designs_t1.split(",") if args.designs_t1 else None,
        designs_t2=args.designs_t2.split(",") if args.designs_t2 else None,
        budget=Budget(wall_seconds=args.timeout, name="report")
        if args.timeout else None,
        jobs=args.jobs,
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
