"""Reproduce Table 2: diameter bounding experiments, GP profiles.

Run as a module::

    python -m repro.experiments.table2 [--scale 0.25] [--designs L_LRU]
        [--max-registers 400]

The profiles are the paper's *phase-abstracted* GP netlists; latch-based
pre-abstraction variants (for exercising the PHASE engine itself) are
covered by ``repro.gen.gp.generate_latched`` and the phase-abstraction
benchmarks.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from .. import obs
from ..gen import gp
from ..resilience import Budget
from ..transform import SweepConfig
from .compare import compare_useful_fractions, format_comparison
from .runner import EXPERIMENT_SWEEP, RowResult, format_table, run_table


def run(scale: float = 1.0,
        designs: Optional[Sequence[str]] = None,
        max_registers: Optional[int] = None,
        sweep_config: Optional[SweepConfig] = None,
        budget: Optional[Budget] = None,
        jobs: int = 1) -> List[RowResult]:
    """Evaluate the Table 2 designs; returns the per-design rows.

    ``budget`` bounds the whole table cooperatively; designs that do
    not fit the remaining budget become error rows (the table always
    completes).  ``jobs > 1`` fans the designs across a process pool;
    rows come back in design order, so the printed table is identical
    at any jobs value.
    """
    return run_table(gp.generate, gp.profiles(), scale=scale,
                     designs=designs, max_registers=max_registers,
                     sweep_config=sweep_config or EXPERIMENT_SWEEP,
                     budget=budget, jobs=jobs)


def run_latched(scale: float = 0.05,
                designs: Optional[Sequence[str]] = None,
                sweep_config: Optional[SweepConfig] = None
                ) -> List[RowResult]:
    """The full GP flow on *latch-based* designs.

    Each profile is wrapped into a two-phase master/slave latch netlist
    (``gp.generate_latched``) and run through ``PHASE`` + the Table 2
    pipelines; Theorem 3's factor-2 appears in every back-translated
    bound.  Small default scale: the latch wrapper doubles the state
    count before PHASE folds it back.
    """
    from .runner import LATCHED_STRATEGY, evaluate_design

    names = [d.upper() for d in designs] if designs else \
        ["L_SLB", "L_FLUSHN", "CLB_CNTL"]
    rows = []
    for name in names:
        net = gp.generate_latched(name, scale=scale)
        rows.append(evaluate_design(net, sweep_config=sweep_config,
                                    strategy_map=LATCHED_STRATEGY))
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="profile scale factor (default 0.25)")
    parser.add_argument("--designs", type=str, default=None,
                        help="comma-separated design subset")
    parser.add_argument("--max-registers", type=int, default=400,
                        help="per-design register cap (0 = none)")
    parser.add_argument("--timeout", type=float, default=0,
                        help="wall-clock budget in seconds for the "
                             "whole table (0 = unlimited); exhausted "
                             "designs become error rows")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for per-design fan-out "
                             "(default 1 = sequential)")
    parser.add_argument("--cubes", action="store_true",
                        help="split hard solver queries into cube sets "
                             "raced across --jobs workers (verdicts "
                             "and tables are unchanged)")
    parser.add_argument("--progress", action="store_true",
                        help="report live engine progress on stderr")
    args = parser.parse_args(argv)
    obs.trace.setup_cli(progress_flag=args.progress)
    if args.cubes:
        from ..sat import cube as _cube

        _cube.set_cubes_enabled(True)
        _cube.set_cube_config(jobs=max(1, args.jobs))
    designs = args.designs.split(",") if args.designs else None
    budget = Budget(wall_seconds=args.timeout, name="table2") \
        if args.timeout else None
    rows = run(scale=args.scale, designs=designs,
               max_registers=args.max_registers or None, budget=budget,
               jobs=args.jobs)
    print(format_table(rows, "Table 2: GP (profile-synthesized, "
                             "phase-abstracted)"))
    print()
    profiles = [p.scaled(min(args.scale,
                             (args.max_registers / p.registers)
                             if args.max_registers and p.registers else 1))
                for p in gp.profiles()
                if designs is None or p.name in {d.upper()
                                                 for d in designs}]
    comparisons = compare_useful_fractions(rows, profiles)
    print(format_comparison(comparisons,
                            "Paper-vs-measured |T'| fractions (Table 2)"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
