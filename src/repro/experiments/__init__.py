"""Regeneration of the paper's evaluation (Tables 1 and 2)."""

from .runner import (
    ColumnResult,
    LATCHED_STRATEGY,
    EXPERIMENT_SWEEP,
    PIPELINES,
    RowResult,
    cumulative,
    evaluate_design,
    format_table,
    run_table,
)
from .compare import (
    PipelineComparison,
    compare_useful_fractions,
    format_comparison,
    shape_holds,
)

__all__ = [
    "ColumnResult",
    "EXPERIMENT_SWEEP",
    "LATCHED_STRATEGY",
    "PIPELINES",
    "PipelineComparison",
    "RowResult",
    "compare_useful_fractions",
    "cumulative",
    "evaluate_design",
    "format_comparison",
    "format_table",
    "run_table",
    "shape_holds",
]
