"""Shared experiment harness for the Table 1 / Table 2 reproductions.

For every design the paper's three columns are reproduced:

* **Original Netlist** — the structural diameter bound of [7] run
  directly on the (synthesized) design;
* **COM** — bound on the redundancy-removed netlist, back-translated by
  Theorem 1;
* **COM,RET,COM** — bound after redundancy removal + min-register
  normalized retiming, back-translated by Theorems 1 and 2.

Each column reports the register classification ``R in CC; AC; MC+QC;
GC``, the useful-target count ``|T'|`` (bound below 50), and the
average bound over ``T'`` — exactly the quantities of Tables 1 and 2.

Robustness: one failing design or pipeline never aborts a table.  Per-
pipeline failures (engine crash, exhausted budget) become *error
cells* (:attr:`ColumnResult.error`), per-design failures become error
rows (:attr:`RowResult.error`); the Σ row and the renderer skip them.
Only cooperative cancellation (:class:`repro.resilience.Cancelled`)
aborts a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..core import TBVEngine
from ..diameter.structural import StructuralAnalysis
from ..gen.profiles import USEFUL_THRESHOLD, DesignProfile
from ..netlist import Netlist
from ..resilience import Budget, Cancelled
from ..transform import SweepConfig

#: Sweep configuration tuned for experiment throughput (the structural
#: bounder itself is sub-second; COM's SAT sweeping dominates).
EXPERIMENT_SWEEP = SweepConfig(sim_cycles=8, sim_width=32,
                               conflict_budget=300)

PIPELINES = ("original", "com", "crc")
_STRATEGY = {"original": "", "com": "COM", "crc": "COM,RET,COM"}

#: The full GP flow of Table 2's preamble: the latch netlists are first
#: folded by the phase-abstraction engine [10], then pushed through the
#: Table pipelines (Theorem 3 contributes the factor-c on the way back).
LATCHED_STRATEGY = {
    "original": "PHASE",
    "com": "PHASE,COM",
    "crc": "PHASE,COM,RET,COM",
}


@dataclass
class ColumnResult:
    """One pipeline column for one design.

    A non-None ``error`` marks a column whose pipeline failed or ran
    out of budget; the numeric fields are then zeros/placeholders and
    the column is excluded from the Σ row.  ``exhaustion_reason`` is
    set when the error was a structured resource exhaustion.
    """

    profile: Tuple[int, int, int, int]  # (CC, AC, MC+QC, GC)
    useful: int
    targets: int
    average: float
    seconds: float = 0.0
    error: Optional[str] = None
    exhaustion_reason: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the column holds real measurements."""
        return self.error is None


@dataclass
class RowResult:
    """One design row across the three pipeline columns.

    ``error`` marks a design that failed before any pipeline could
    run (e.g. generation error, budget exhausted); its ``columns``
    dict is then empty.
    """

    name: str
    columns: Dict[str, ColumnResult] = field(default_factory=dict)
    error: Optional[str] = None


def _error_column(targets: int, message: str,
                  exhaustion_reason: Optional[str] = None,
                  seconds: float = 0.0) -> ColumnResult:
    return ColumnResult(profile=(0, 0, 0, 0), useful=0, targets=targets,
                        average=0.0, seconds=seconds, error=message,
                        exhaustion_reason=exhaustion_reason)


def _profile_tuple(analysis: StructuralAnalysis) -> Tuple[int, int, int,
                                                          int]:
    p = analysis.register_profile()
    return (p["CC"], p["AC"], p["MC"] + p["QC"], p["GC"])


def evaluate_design(net: Netlist,
                    sweep_config: Optional[SweepConfig] = None,
                    threshold: int = USEFUL_THRESHOLD,
                    pipelines: Sequence[str] = PIPELINES,
                    strategy_map: Optional[Dict[str, str]] = None,
                    budget: Optional[Budget] = None
                    ) -> RowResult:
    """Run the transformation pipelines over one netlist.

    ``strategy_map`` overrides the column-to-strategy mapping (e.g.
    :data:`LATCHED_STRATEGY` for latch-based designs needing the PHASE
    front-end).  ``budget`` is split equally across the pending
    pipelines; a pipeline that fails or exhausts its share yields an
    error cell (``runner.error_cells`` counter) and the row carries
    on.  :class:`Cancelled` propagates.
    """
    sweep_config = sweep_config or EXPERIMENT_SWEEP
    strategies = strategy_map or _STRATEGY
    row = RowResult(net.name)
    reg = obs.get_registry()
    with reg.span(f"experiment/{net.name}"):
        for i, pipeline in enumerate(pipelines):
            sub: Optional[Budget] = None
            if budget is not None:
                if budget.cancelled:
                    raise Cancelled(budget_name=budget.name)
                reason = budget.exhausted()
                if reason is not None:
                    reg.counter("runner.error_cells")
                    row.columns[pipeline] = _error_column(
                        len(net.targets),
                        f"budget exhausted ({reason})",
                        exhaustion_reason=reason)
                    continue
                sub = budget.slice(1.0 / (len(pipelines) - i),
                                   name=f"{net.name}/{pipeline}")
            # The per-pipeline span doubles as the table's time column:
            # monotonic, and visible in any enclosing obs snapshot
            # (e.g. the bench harness) as experiment/<design>/<col>.
            column_span = None
            try:
                with reg.span(pipeline) as column_span:
                    engine = TBVEngine(strategies[pipeline],
                                       sweep_config=sweep_config)
                    result = engine.run(net, budget=sub)
                    analysis = StructuralAnalysis(result.netlist)
                    useful = result.useful(threshold)
                row.columns[pipeline] = ColumnResult(
                    profile=_profile_tuple(analysis),
                    useful=len(useful),
                    targets=len(net.targets),
                    average=result.average_bound(threshold),
                    seconds=column_span.seconds,
                )
            except Cancelled:
                raise
            except Exception as exc:
                reg.counter("runner.error_cells")
                reg.event("runner.pipeline_error", design=net.name,
                          pipeline=pipeline, error=str(exc))
                reason = getattr(exc, "reason", None)
                row.columns[pipeline] = _error_column(
                    len(net.targets), str(exc) or type(exc).__name__,
                    exhaustion_reason=reason,
                    seconds=column_span.seconds if column_span else 0.0)
    return row


def run_table(generate: Callable[..., Netlist],
              profiles: Sequence[DesignProfile],
              scale: float = 1.0,
              sweep_config: Optional[SweepConfig] = None,
              designs: Optional[Sequence[str]] = None,
              max_registers: Optional[int] = None,
              budget: Optional[Budget] = None,
              jobs: int = 1) -> List[RowResult]:
    """Evaluate every profile (optionally filtered/scaled).

    Every selected profile produces a row: a design whose generation
    or evaluation fails contributes an error row instead of aborting
    the table, and once ``budget`` is exhausted the remaining designs
    are emitted as error rows immediately.  :class:`Cancelled` is the
    only exception that escapes.

    ``jobs > 1`` evaluates the designs across a process pool
    (:mod:`repro.parallel`): rows come back in profile order — the
    rendered table is byte-identical at any ``jobs`` value — each
    design runs on an equal pre-split budget slice, and a crashed
    worker becomes an error row, never an aborted table.
    """
    if jobs > 1:
        return _run_table_parallel(generate, profiles, scale,
                                   sweep_config, designs,
                                   max_registers, budget, jobs)
    rows = []
    reg = obs.get_registry()
    wanted = {d.upper() for d in designs} if designs else None
    for profile in profiles:
        if wanted is not None and profile.name.upper() not in wanted:
            continue
        if budget is not None:
            if budget.cancelled:
                raise Cancelled(budget_name=budget.name)
            reason = budget.exhausted()
            if reason is not None:
                reg.counter("runner.design_errors")
                rows.append(RowResult(
                    profile.name,
                    error=f"budget exhausted ({reason})"))
                continue
        effective_scale = scale
        if max_registers and profile.registers * scale > max_registers:
            effective_scale = max_registers / profile.registers
        try:
            net = generate(profile.name, scale=effective_scale)
            rows.append(evaluate_design(net, sweep_config=sweep_config,
                                        budget=budget))
        except Cancelled:
            raise
        except Exception as exc:
            reg.counter("runner.design_errors")
            reg.event("runner.design_error", design=profile.name,
                      error=str(exc))
            rows.append(RowResult(profile.name,
                                  error=str(exc) or type(exc).__name__))
    return rows


def _run_table_parallel(generate: Callable[..., Netlist],
                        profiles: Sequence[DesignProfile],
                        scale: float,
                        sweep_config: Optional[SweepConfig],
                        designs: Optional[Sequence[str]],
                        max_registers: Optional[int],
                        budget: Optional[Budget],
                        jobs: int) -> List[RowResult]:
    """The ``jobs > 1`` fan-out of :func:`run_table`."""
    from ..parallel import ParallelExecutor
    from ..parallel.workers import run_design

    reg = obs.get_registry()
    wanted = {d.upper() for d in designs} if designs else None
    payloads = []
    for profile in profiles:
        if wanted is not None and profile.name.upper() not in wanted:
            continue
        effective_scale = scale
        if max_registers and profile.registers * scale > max_registers:
            effective_scale = max_registers / profile.registers
        payloads.append({"generate": generate, "name": profile.name,
                         "scale": effective_scale,
                         "sweep_config": sweep_config
                         or EXPERIMENT_SWEEP})
    if budget is not None:
        if budget.cancelled:
            raise Cancelled(budget_name=budget.name)
        reason = budget.exhausted()
        if reason is not None:
            reg.counter("runner.design_errors", len(payloads))
            return [RowResult(payload["name"],
                              error=f"budget exhausted ({reason})")
                    for payload in payloads]
    # Work-stealing engine: rows are heterogeneous (one big design can
    # dwarf the rest), so workers steal from a shared queue instead of
    # receiving a fixed pre-split; outcomes still merge in submission
    # order, keeping the rendered table byte-identical at any jobs.
    executor = ParallelExecutor(jobs=jobs, name="table", stealing=True)
    outcomes = executor.map(run_design, payloads, budget=budget,
                            labels=[p["name"] for p in payloads])
    rows: List[RowResult] = []
    for payload, outcome in zip(payloads, outcomes):
        if outcome.ok:
            rows.append(outcome.value)
        else:
            # A crashed worker degrades to the error row the
            # sequential loop would emit for a failed design.
            reg.counter("runner.design_errors")
            reg.event("runner.design_error", design=payload["name"],
                      error=str(outcome.error))
            rows.append(RowResult(payload["name"],
                                  error=str(outcome.error)
                                  or type(outcome.error).__name__))
    return rows


def cumulative(rows: Sequence[RowResult]) -> RowResult:
    """The paper's Σ row.

    Error cells and error rows are skipped: the Σ column aggregates
    only the measurements that actually completed (missing columns —
    e.g. from a renderer given partial rows — are tolerated the same
    way).
    """
    sigma = RowResult("Σ")
    for pipeline in PIPELINES:
        profile = [0, 0, 0, 0]
        useful = targets = 0
        seconds = 0.0
        weighted = 0.0
        for row in rows:
            col = row.columns.get(pipeline)
            if col is None or not col.ok:
                continue
            for i in range(4):
                profile[i] += col.profile[i]
            useful += col.useful
            targets += col.targets
            seconds += col.seconds
            weighted += col.average * col.useful
        sigma.columns[pipeline] = ColumnResult(
            profile=tuple(profile), useful=useful, targets=targets,
            average=weighted / useful if useful else 0.0,
            seconds=seconds)
    return sigma


def format_table(rows: Sequence[RowResult], title: str) -> str:
    """Render rows in the paper's table layout.

    Failed pipelines render as error cells, failed designs as error
    rows; missing columns render as ``--`` so partially-evaluated
    rows (e.g. a custom pipeline subset) still format.
    """
    header = (f"{'Design':<12}"
              + "".join(f"| {col:^34} " for col in
                        ("Original Netlist", "COM", "COM,RET,COM")))
    sub = (f"{'':<12}"
           + "".join(f"| {'CC;AC;MC+QC;GC':>20} {'T/T;avg':>13} "
                     for _ in range(3)))
    lines = [title, "=" * len(header), header, sub, "-" * len(header)]
    for row in list(rows) + [cumulative(rows)]:
        cells = [f"{row.name:<12}"]
        for pipeline in PIPELINES:
            col = row.columns.get(pipeline)
            if col is None:
                text = f"!! {row.error}" if row.error else "--"
                cells.append(f"| {text[:34]:^34} ")
            elif not col.ok:
                text = f"!! {col.error}"
                cells.append(f"| {text[:34]:^34} ")
            else:
                prof = ";".join(str(x) for x in col.profile)
                cells.append(
                    f"| {prof:>20} {col.useful:>4}/{col.targets:<4}"
                    f";{col.average:>5.1f} ")
        lines.append("".join(cells))
    return "\n".join(lines)
