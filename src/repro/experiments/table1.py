"""Reproduce Table 1: diameter bounding experiments, ISCAS89 profiles.

Run as a module::

    python -m repro.experiments.table1 [--scale 0.25] [--designs S953,S641]
        [--max-registers 400]

``--scale`` shrinks every profile's register/target counts (the paper's
largest designs take minutes under the pure-Python COM engine at full
scale); ``--max-registers`` caps individual designs instead.  The shape
comparison against the paper's Σ row is printed either way.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from .. import obs
from ..gen import iscas89
from ..resilience import Budget
from ..transform import SweepConfig
from .compare import compare_useful_fractions, format_comparison
from .runner import EXPERIMENT_SWEEP, RowResult, format_table, run_table


def run(scale: float = 1.0,
        designs: Optional[Sequence[str]] = None,
        max_registers: Optional[int] = None,
        sweep_config: Optional[SweepConfig] = None,
        budget: Optional[Budget] = None,
        jobs: int = 1) -> List[RowResult]:
    """Evaluate the Table 1 designs; returns the per-design rows.

    ``budget`` bounds the whole table cooperatively; designs that do
    not fit the remaining budget become error rows (the table always
    completes).  ``jobs > 1`` fans the designs across a process pool;
    rows come back in design order, so the printed table is identical
    at any jobs value.
    """
    return run_table(iscas89.generate, iscas89.profiles(), scale=scale,
                     designs=designs, max_registers=max_registers,
                     sweep_config=sweep_config or EXPERIMENT_SWEEP,
                     budget=budget, jobs=jobs)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="profile scale factor (default 0.25)")
    parser.add_argument("--designs", type=str, default=None,
                        help="comma-separated design subset")
    parser.add_argument("--max-registers", type=int, default=400,
                        help="per-design register cap (0 = none)")
    parser.add_argument("--timeout", type=float, default=0,
                        help="wall-clock budget in seconds for the "
                             "whole table (0 = unlimited); exhausted "
                             "designs become error rows")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for per-design fan-out "
                             "(default 1 = sequential)")
    parser.add_argument("--cubes", action="store_true",
                        help="split hard solver queries into cube sets "
                             "raced across --jobs workers (verdicts "
                             "and tables are unchanged)")
    parser.add_argument("--progress", action="store_true",
                        help="report live engine progress on stderr")
    args = parser.parse_args(argv)
    obs.trace.setup_cli(progress_flag=args.progress)
    if args.cubes:
        from ..sat import cube as _cube

        _cube.set_cubes_enabled(True)
        _cube.set_cube_config(jobs=max(1, args.jobs))
    designs = args.designs.split(",") if args.designs else None
    budget = Budget(wall_seconds=args.timeout, name="table1") \
        if args.timeout else None
    rows = run(scale=args.scale, designs=designs,
               max_registers=args.max_registers or None, budget=budget,
               jobs=args.jobs)
    print(format_table(rows, "Table 1: ISCAS89 (profile-synthesized)"))
    print()
    profiles = [p.scaled(min(args.scale,
                             (args.max_registers / p.registers)
                             if args.max_registers and p.registers else 1))
                for p in iscas89.profiles()
                if designs is None or p.name in {d.upper()
                                                 for d in designs}]
    comparisons = compare_useful_fractions(rows, profiles)
    print(format_comparison(comparisons,
                            "Paper-vs-measured |T'| fractions (Table 1)"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
