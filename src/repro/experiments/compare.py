"""Paper-vs-measured comparison utilities (feeds EXPERIMENTS.md).

The reproduction target is *shape*, not digits (the workloads are
profile-driven substitutes — see ``DESIGN.md``): the fraction of
targets with a useful (< 50) bound must grow monotonically across
Original -> COM -> COM,RET,COM, by roughly the margins the paper
reports (+4 pts and +6 pts on ISCAS89; +6 pts and +5 pts on GP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..gen.profiles import DesignProfile
from .runner import PIPELINES, RowResult, cumulative


@dataclass
class PipelineComparison:
    """Aggregate |T'| fractions: paper vs measured, per pipeline."""

    pipeline: str
    paper_useful: int
    paper_targets: int
    measured_useful: int
    measured_targets: int

    @property
    def paper_fraction(self) -> float:
        """The paper's useful-target fraction."""
        return self.paper_useful / max(1, self.paper_targets)

    @property
    def measured_fraction(self) -> float:
        """Our measured useful-target fraction."""
        return self.measured_useful / max(1, self.measured_targets)


def compare_useful_fractions(
    rows: Sequence[RowResult],
    profiles: Sequence[DesignProfile],
) -> List[PipelineComparison]:
    """Compare measured Σ|T'| fractions against the paper's trios."""
    by_name: Dict[str, DesignProfile] = {p.name: p for p in profiles}
    sigma = cumulative(rows)
    out = []
    for i, pipeline in enumerate(PIPELINES):
        paper_useful = 0
        paper_targets = 0
        for row in rows:
            profile = by_name[row.name]
            paper_useful += profile.useful_trio[i]
            paper_targets += profile.targets
        col = sigma.columns[pipeline]
        out.append(PipelineComparison(
            pipeline=pipeline,
            paper_useful=paper_useful,
            paper_targets=paper_targets,
            measured_useful=col.useful,
            measured_targets=col.targets,
        ))
    return out


def shape_holds(comparisons: Sequence[PipelineComparison],
                monotone_slack: int = 0) -> bool:
    """The headline claim: |T'| grows along the pipeline sequence."""
    fractions = [c.measured_fraction for c in comparisons]
    return all(b >= a - monotone_slack / max(1, comparisons[0]
                                             .measured_targets)
               for a, b in zip(fractions, fractions[1:]))


def format_comparison(comparisons: Sequence[PipelineComparison],
                      title: str) -> str:
    """Human-readable paper-vs-measured summary block."""
    lines = [title,
             f"{'pipeline':<12}{'paper |T`|/|T|':>18}"
             f"{'measured |T`|/|T|':>20}"]
    for c in comparisons:
        lines.append(
            f"{c.pipeline:<12}"
            f"{c.paper_useful:>8}/{c.paper_targets:<4}"
            f"({100 * c.paper_fraction:5.1f}%)"
            f"{c.measured_useful:>9}/{c.measured_targets:<4}"
            f"({100 * c.measured_fraction:5.1f}%)")
    return "\n".join(lines)
