"""SAT-verdict certification by concrete witness replay.

A counterexample is certified by *re-executing* it: the decoded input
trace is stepped through :class:`~repro.sim.BitParallelSimulator` —
cycle-accurate netlist semantics, entirely independent of the Tseitin
encoding and the CDCL search — and the verdict stands only if

* the target evaluates to 1 at exactly the claimed depth,
* the target evaluates to 0 at every earlier frame (BMC refuted those
  frames, so a trace hitting earlier would contradict the solver), and
* when the solver model and unrolling are available, every frame
  literal of the unrolled CNF agrees with the simulated value of its
  vertex, and the decoded latch-transition boundary
  (``state_values(model, t + 1)``) equals the simulated next state —
  i.e. the model satisfies the netlist *semantics*, not merely the
  clauses the encoder happened to emit.

The counterexample argument is duck-typed (``.depth`` / ``.inputs`` /
``.initial_state``, the :class:`repro.unroll.bmc.Counterexample`
shape) so this module never imports :mod:`repro.unroll` — the unroll
layer imports :mod:`repro.sat`, which imports the proof log from this
package, and a top-level back edge would cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["WitnessReport", "replay_witness"]

#: Mismatch messages kept per report (the count is always exact).
_MAX_MISMATCHES = 10


@dataclass
class WitnessReport:
    """Outcome of a witness replay (``ok`` iff everything agreed)."""

    ok: bool
    depth: int
    frames_checked: int = 0
    literals_checked: int = 0
    mismatch_count: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def detail(self) -> str:
        """The first mismatch, or an empty string when certified."""
        return self.mismatches[0] if self.mismatches else ""


def _decode(model: List[bool], lit: int) -> int:
    """Value of a 0-based literal under a solver model."""
    val = model[lit >> 1]
    return int(val if not (lit & 1) else not val)


def replay_witness(
    net,
    target: int,
    cex,
    model: Optional[List[bool]] = None,
    unroll=None,
) -> WitnessReport:
    """Replay ``cex`` against ``net``; see the module docstring.

    ``model`` and ``unroll`` (the solver model and the
    :class:`~repro.unroll.unroller.Unrolling` it satisfies) enable the
    frame-by-frame literal and latch-transition checks; without them
    only the input-trace replay and target checks run.
    """
    from ..sim import BitParallelSimulator

    report = WitnessReport(ok=True, depth=cex.depth)

    def mismatch(message: str) -> None:
        report.ok = False
        report.mismatch_count += 1
        if len(report.mismatches) < _MAX_MISMATCHES:
            report.mismatches.append(message)

    if len(cex.inputs) != cex.depth + 1:
        mismatch(f"trace length {len(cex.inputs)} does not cover "
                 f"claimed depth {cex.depth}")
        return report
    if model is not None and unroll is not None:
        decoded_init = unroll.state_values(model, 0)
        if decoded_init != cex.initial_state:
            mismatch("counterexample initial state disagrees with "
                     "the solver model")
    sim = BitParallelSimulator(net)
    state: Dict[int, int] = dict(cex.initial_state)
    for t, inputs in enumerate(cex.inputs):
        values, state = sim.step(state, inputs)
        report.frames_checked += 1
        hit = bool(values[target] & 1)
        if t == cex.depth and not hit:
            mismatch(f"target {target} is 0 at the claimed depth {t}")
        elif t < cex.depth and hit:
            mismatch(f"target {target} hit at frame {t}, before the "
                     f"claimed depth {cex.depth} (frame {t} was "
                     "refuted)")
        if model is None or unroll is None:
            continue
        # Model/semantics agreement, vertex by vertex: every frame
        # literal the encoder emitted must carry the simulated value.
        if inputs != unroll.input_values(model, t):
            mismatch(f"frame {t}: counterexample inputs disagree with "
                     "the solver model")
        for vid, lit in unroll.frames[t].items():
            report.literals_checked += 1
            if _decode(model, lit) != values[vid] & 1:
                mismatch(f"frame {t}: vertex {vid} is "
                         f"{values[vid] & 1} under simulation but "
                         f"{_decode(model, lit)} in the model")
        # Latch-transition constraints: the model's next-state
        # boundary must be the simulated successor state.
        decoded_next = unroll.state_values(model, t + 1)
        for vid, value in decoded_next.items():
            if value != state[vid] & 1:
                mismatch(f"frame {t}: state element {vid} steps to "
                         f"{state[vid] & 1} under simulation but "
                         f"{value} in the model")
    return report
