"""DRAT-style proof event logs emitted by the SAT solver cores.

A :class:`ProofLog` records every clause-database mutation the solver
performs, in order, as immutable events:

* ``("i", lits)`` — an *input* (problem) clause, logged exactly once at
  the public loading boundary (``add_clause`` / ``add_clauses_bulk``)
  with its **original** literals, before any level-0 normalisation.
  Input clauses are the checker's trust base: they are never verified,
  only consumed.
* ``("a", lits)`` — a *learned* clause (post-minimization), including
  unit learnts that never enter the learnt database proper.  Every
  ``a`` event must have the RUP property with respect to the clauses
  active at that point — this is what :mod:`repro.cert.drat` checks.
* ``("d", lits)`` — a clause *deleted* by learnt-DB reduction or by
  the inprocessing pass (:mod:`repro.sat.simplify`: subsumption,
  strengthening, variable elimination).  The solver's watched-literal
  scheme permutes clause literals in place after the addition was
  logged, so deletions are matched by the canonical
  :func:`clause_key` (sorted literal *set*), never by literal order;
  duplicate copies of a clause remain distinct instances — deleting
  one leaves the others live (see :func:`clause_key`).
* ``("u", assumptions)`` — an UNSAT *conclusion*: the solver claimed
  ``unsat`` under exactly these assumption literals (the empty tuple
  for an unconditional refutation).  Unit propagation over the active
  clauses plus the assumptions must yield a conflict.

The log is always held in memory; when ``stream_path`` is given every
event is additionally appended to a text file in an extended
DIMACS/DRAT line format (``i``/``d``/``u`` prefixes, 1-based signed
literals, ``0`` terminator) for offline inspection.

This module imports nothing from ``repro`` — :mod:`repro.sat.solver`
must be able to import it without cycles, exactly like the resilience
error taxonomy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["EVENT_KINDS", "ProofLog", "clause_key"]

#: Event tags, in the order they typically appear.
EVENT_KINDS = ("i", "a", "d", "u")


def clause_key(lits: Iterable[int]) -> Tuple[int, ...]:
    """The canonical key under which deletion events are matched to
    clause instances: the sorted *set* of literals.

    Two properties matter, and both bit the naive sorted-tuple key:

    * duplicate *literals* are semantically irrelevant — inputs are
      logged pre-normalisation (e.g. XOR clauses over aliased frame
      literals repeat a literal) while the solver's stored copy is
      deduplicated, so a deletion of the stored form must still match
      the logged instance;
    * duplicate *copies* of a clause are distinct instances — the
      checker keeps one bookkeeping stack per key, so deleting one
      copy pops a single instance and leaves the other copies live.
    """
    return tuple(sorted(set(lits)))


def _dimacs(lits: Tuple[int, ...]) -> str:
    """Render 0-based solver literals as a signed 1-based DIMACS line."""
    return " ".join(
        str(-(lit // 2 + 1) if lit & 1 else lit // 2 + 1)
        for lit in lits
    ) + " 0"


class ProofLog:
    """An in-memory (optionally disk-streamed) clausal proof log.

    Events are ``(kind, lits)`` tuples with ``kind`` in
    :data:`EVENT_KINDS` and ``lits`` an immutable tuple of 0-based
    literals (the :mod:`repro.sat.cnf` encoding).  Literal tuples are
    snapshotted at logging time: callers may hand over the very lists
    the solver will keep mutating (watched-literal swaps), the log is
    unaffected.
    """

    __slots__ = ("events", "stream_path", "_stream")

    def __init__(self, stream_path: Optional[str] = None) -> None:
        self.events: List[Tuple[str, Tuple[int, ...]]] = []
        self.stream_path = stream_path
        self._stream = None
        if stream_path:
            # Append mode: several solvers (or incremental sessions)
            # may share one debugging stream; the in-memory log stays
            # per-solver regardless.
            self._stream = open(stream_path, "a", encoding="ascii")

    # ------------------------------------------------------------------
    # Logging (called from the solver hot paths; each is one append)
    # ------------------------------------------------------------------
    def _log(self, kind: str, lits: Iterable[int]) -> None:
        event = (kind, tuple(lits))
        self.events.append(event)
        if self._stream is not None:
            prefix = "" if kind == "a" else kind + " "
            self._stream.write(prefix + _dimacs(event[1]) + "\n")

    def input(self, lits: Iterable[int]) -> None:
        """Log an original problem clause (the checker's axiom set)."""
        self._log("i", lits)

    def learnt(self, lits: Iterable[int]) -> None:
        """Log a learned clause (must be RUP at this point)."""
        self._log("a", lits)

    def delete(self, lits: Iterable[int]) -> None:
        """Log a clause deletion (learnt-DB reduction or inprocessing);
        matched against one live instance by :func:`clause_key`."""
        self._log("d", lits)

    def conclude_unsat(self, assumptions: Iterable[int] = ()) -> None:
        """Log an UNSAT verdict under ``assumptions`` (may be empty)."""
        self._log("u", assumptions)
        if self._stream is not None:
            self._stream.flush()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Event counts per kind (``i`` / ``a`` / ``d`` / ``u``)."""
        out = {kind: 0 for kind in EVENT_KINDS}
        for kind, _ in self.events:
            out[kind] += 1
        return out

    def __len__(self) -> int:
        return len(self.events)

    def close(self) -> None:
        """Close the optional disk stream (in-memory events remain)."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass
