"""A stdlib RUP/DRAT proof checker with backward checking and trimming.

Validates the UNSAT side of a solver run *independently of the CDCL
code*: the only trusted facts are the ``i`` (input clause) events of a
:class:`~repro.cert.proof.ProofLog`; everything else is re-derived by
unit propagation, the one inference rule simple enough to audit by
eye.

Checking is *backward*, DRAT-trim style.  The event timeline is first
replayed structurally, pairing each deletion with exactly one clause
*instance* it removed — matched by the canonical
:func:`~repro.cert.proof.clause_key` (sorted literal set), because
the solver's watched-literal swaps permute stored literal order and
its add-time normalisation deduplicates literals after the addition
was logged, while duplicate copies of one clause must remain distinct
instances (deleting a copy leaves the others live).  The checker then
walks the timeline in reverse:

* at a ``u`` (UNSAT conclusion) event, unit propagation over the
  clauses active *at that point* plus the recorded assumption literals
  must derive a conflict; the conflict cone (the conflicting clause
  and, transitively, every reason clause of the literals involved) is
  marked *needed*;
* at a ``d`` event, the deleted clause is re-activated (it was live
  before this point);
* at an ``a`` (learned clause) event, the lemma is deactivated first
  and then — only if some later check marked it needed — verified to
  have the RUP property: propagating the negation of its literals over
  the remaining active clauses must conflict.  Its cone is marked in
  turn.  Lemmas nothing depended on are *trimmed*, never checked —
  that is what makes backward checking cheaper than forward checking,
  and the surviving marked ``i`` clauses form the unsatisfiable *core*.

Soundness: if every conclusion and every marked lemma checks, each
``u`` event's claimed UNSAT-under-assumptions verdict is a theorem of
the input clauses alone.  A corrupted lemma (see the ``corrupt_learnt``
fault of :mod:`repro.resilience.faults`) either breaks its own RUP
check or leaves the verdict genuinely valid.

Everything here is pure stdlib and imports only the proof-log module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from .proof import ProofLog, clause_key

__all__ = ["CheckResult", "check_events", "check_proof"]

#: Safety valve: stop accumulating error strings past this many (the
#: checker still finishes, so the statistics stay meaningful).
_MAX_ERRORS = 50


@dataclass
class CheckResult:
    """Outcome of a proof check.

    ``ok`` is True iff every UNSAT conclusion and every needed lemma
    verified (and, under ``require_conclusion``, at least one
    conclusion was present).  ``lemmas_trimmed`` counts learned
    clauses no conclusion transitively depended on; ``core_inputs``
    is the size of the marked unsatisfiable core among the inputs.
    """

    ok: bool
    errors: List[str] = field(default_factory=list)
    conclusions: int = 0
    inputs_total: int = 0
    core_inputs: int = 0
    lemmas_total: int = 0
    lemmas_checked: int = 0
    lemmas_trimmed: int = 0
    deletions: int = 0


class _Clause:
    """A logged clause instance (identity-hashed; never compared)."""

    __slots__ = ("lits", "kind", "active", "needed")

    def __init__(self, lits: Tuple[int, ...], kind: str) -> None:
        # Input events log pre-normalization literals, which may
        # repeat (e.g. XOR clauses over aliased frame literals); a
        # duplicate would make the propagator's unit detection count
        # the same unassigned literal twice and silently never
        # propagate, so dedupe here — order-preserving, semantics
        # unchanged.
        self.lits = tuple(dict.fromkeys(lits))
        self.kind = kind  # "i" or "a"
        self.active = True
        self.needed = False


class _Propagator:
    """Unit propagation over an activatable clause set.

    Occurrence lists are append-only (deactivation just clears the
    clause flag), which keeps attach/detach O(len(clause)) and O(1)
    respectively; every clause is activated at most once over the
    whole backward pass, so the lists stay bounded.
    """

    def __init__(self, num_vars: int) -> None:
        self._assign = [-1] * num_vars  # -1 unassigned / 0 false / 1 true
        self._reason: List[Optional[_Clause]] = [None] * num_vars
        self._occ: List[List[_Clause]] = [[] for _ in range(2 * num_vars)]
        self._units: List[_Clause] = []  # append-only; skip inactive
        self._empty: Optional[_Clause] = None

    def attach(self, clause: _Clause) -> None:
        clause.active = True
        n = len(clause.lits)
        if n == 0:
            self._empty = clause
            return
        if n == 1:
            self._units.append(clause)
        occ = self._occ
        for lit in clause.lits:
            occ[lit].append(clause)

    @staticmethod
    def detach(clause: _Clause) -> None:
        clause.active = False

    def check(self, roots: Sequence[int]) -> Optional[List[_Clause]]:
        """Propagate active units plus ``roots`` (asserted literals).

        Returns the conflict cone (the clauses the derived conflict
        depends on) when unit propagation conflicts, None when it
        reaches a conflict-free fixpoint.  The assignment is fully
        undone before returning, so checks are independent.
        """
        if self._empty is not None and self._empty.active:
            return [self._empty]
        assign = self._assign
        reason = self._reason
        occ = self._occ
        trail: List[int] = []
        conflict: Optional[Tuple[Optional[_Clause], Optional[int]]] = None

        def enqueue(lit: int, why: Optional[_Clause]) -> bool:
            var = lit >> 1
            val = (lit & 1) ^ 1
            cur = assign[var]
            if cur >= 0:
                return cur == val
            assign[var] = val
            reason[var] = why
            trail.append(lit)
            return True

        for clause in self._units:
            if clause.active and not enqueue(clause.lits[0], clause):
                conflict = (clause, clause.lits[0])
                break
        if conflict is None:
            for lit in roots:
                if not enqueue(lit, None):
                    conflict = (None, lit)
                    break
        head = 0
        while conflict is None and head < len(trail):
            false_lit = trail[head] ^ 1
            head += 1
            for clause in occ[false_lit]:
                if not clause.active:
                    continue
                unassigned = -1
                satisfied = False
                unit = True
                for q in clause.lits:
                    v = assign[q >> 1]
                    if v < 0:
                        if unassigned >= 0:
                            unit = False
                            break
                        unassigned = q
                    elif v == (q & 1) ^ 1:
                        satisfied = True
                        break
                if satisfied or not unit:
                    continue
                if unassigned < 0:
                    conflict = (clause, None)
                    break
                enqueue(unassigned, clause)
            # (a conflict breaks both loops via the while condition)
        cone: Optional[List[_Clause]] = None
        if conflict is not None:
            cone = self._explain(conflict)
        for lit in trail:
            assign[lit >> 1] = -1
            reason[lit >> 1] = None
        return cone

    def _explain(
        self, conflict: Tuple[Optional[_Clause], Optional[int]]
    ) -> List[_Clause]:
        """The conflict cone: the conflicting clause plus, transitively,
        the reason clause of every literal it rests on."""
        clause, clash_lit = conflict
        cone: List[_Clause] = []
        work: List[int] = []
        if clause is not None:
            cone.append(clause)
            work.extend(clause.lits)
        if clash_lit is not None:
            work.append(clash_lit)
        seen = set()
        reason = self._reason
        while work:
            var = work.pop() >> 1
            if var in seen:
                continue
            seen.add(var)
            why = reason[var]
            if why is not None:
                cone.append(why)
                work.extend(why.lits)
        return cone


def check_events(
    events: Iterable[Tuple[str, Tuple[int, ...]]],
    require_conclusion: bool = True,
) -> CheckResult:
    """Check a proof event stream (see the module docstring).

    ``require_conclusion`` demands at least one ``u`` event — a
    certification caller asking "was this UNSAT answer derived?" must
    fail on a log that never concluded anything.
    """
    result = CheckResult(ok=True)
    errors = result.errors

    def report(message: str) -> None:
        if len(errors) < _MAX_ERRORS:
            errors.append(message)
        result.ok = False

    # ---- forward structural replay -----------------------------------
    timeline: List[Tuple[str, object]] = []
    clauses: List[_Clause] = []
    by_key: dict = {}
    max_var = -1
    for index, (kind, lits) in enumerate(events):
        for lit in lits:
            if lit > max_var * 2 + 1:
                max_var = lit >> 1
        if kind in ("i", "a"):
            clause = _Clause(tuple(lits), kind)
            clauses.append(clause)
            # Instances are stacked per canonical key (sorted literal
            # *set* — clause_key): duplicate-literal forms of the same
            # clause share one stack, while duplicate *copies* stay
            # separate instances on it, so a deletion pops exactly one
            # copy and leaves the rest live.
            by_key.setdefault(clause_key(lits), []).append(clause)
            timeline.append((kind, clause))
        elif kind == "d":
            stack = by_key.get(clause_key(lits))
            if not stack:
                report(f"event #{index}: deletion of a clause never "
                       f"added: {tuple(lits)}")
                continue
            clause = stack.pop()
            clause.active = False
            result.deletions += 1
            timeline.append(("d", clause))
        elif kind == "u":
            timeline.append(("u", tuple(lits)))
        else:
            report(f"event #{index}: unknown event kind {kind!r}")
    result.inputs_total = sum(1 for c in clauses if c.kind == "i")
    result.lemmas_total = len(clauses) - result.inputs_total

    # ---- backward checking pass --------------------------------------
    prop = _Propagator(max_var + 1)
    for clause in clauses:
        if clause.active:
            prop.attach(clause)
    for position in range(len(timeline) - 1, -1, -1):
        kind, payload = timeline[position]
        if kind == "u":
            assumptions = payload  # type: ignore[assignment]
            cone = prop.check(list(assumptions))
            result.conclusions += 1
            if cone is None:
                report(f"event #{position}: UNSAT conclusion under "
                       f"assumptions {tuple(assumptions)} is not "
                       "derivable by unit propagation")
            else:
                for clause in cone:
                    clause.needed = True
        elif kind == "d":
            prop.attach(payload)  # live again before the deletion point
        else:  # "i" / "a" addition: leaves scope going backward
            clause = payload
            prop.detach(clause)
            if clause.kind != "a":
                continue
            if not clause.needed:
                result.lemmas_trimmed += 1
                continue
            result.lemmas_checked += 1
            cone = prop.check([lit ^ 1 for lit in clause.lits])
            if cone is None:
                report(f"event #{position}: learned clause "
                       f"{clause.lits} is not RUP (unit propagation "
                       "on its negation does not conflict)")
            else:
                for needed in cone:
                    needed.needed = True
    result.core_inputs = sum(
        1 for c in clauses if c.kind == "i" and c.needed)
    if require_conclusion and result.conclusions == 0:
        report("proof log contains no UNSAT conclusion to check")
    return result


def check_proof(proof: ProofLog,
                require_conclusion: bool = True) -> CheckResult:
    """Convenience wrapper over :func:`check_events`."""
    return check_events(proof.events,
                        require_conclusion=require_conclusion)
