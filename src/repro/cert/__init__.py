"""Verdict certification: every answer ships with a checkable artifact.

The engines in this library *search*; this package *audits*.  A
verdict is certified by an artifact validated by machinery far simpler
than the solver that produced it (the trace-automata BMC-certification
shape):

* **UNSAT** — the solver's DRAT-style proof log
  (:mod:`repro.cert.proof`, emitted by both CDCL cores under the
  ``REPRO_SAT_PROOF`` / :func:`repro.sat.use_proofs` toggle) is
  replayed by the stdlib RUP checker of :mod:`repro.cert.drat`
  (backward checking, core trimming) — unit propagation is the only
  trusted inference.
* **SAT** — the counterexample is re-executed concretely through the
  bit-parallel simulator (:mod:`repro.cert.witness`), asserting the
  target literal and every latch-transition constraint frame by frame.

A failed check raises :class:`~repro.resilience.CertificationFailure`
(an :class:`~repro.resilience.EngineFailure` subtype, so every
existing degradation path already handles it); ``prove()`` reacts by
retrying once on the *other* solver core and, on persistent
disagreement, degrading to the sound structural bound.  Certification
is scoped by the ``REPRO_CERT`` env toggle / :func:`use_certification`
(engines also accept an explicit ``certify=`` override) and publishes
``cert.checked`` / ``cert.failed`` counters plus ``cert.*`` trace
instants through :mod:`repro.obs`.

Import discipline: :mod:`repro.sat.solver` imports
:mod:`repro.cert.proof` through this ``__init__``, so nothing here may
import back through the solver stack at module scope —
:mod:`repro.cert.witness` (which needs :mod:`repro.sim`) loads lazily
inside :func:`certify_witness`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, List, Optional

from .. import obs
from ..resilience.errors import CertificationFailure
from . import drat
from .drat import CheckResult, check_events
from .proof import ProofLog

__all__ = [
    "CertificationFailure",
    "CheckResult",
    "ProofLog",
    "certification_enabled",
    "certify_unsat",
    "certify_witness",
    "check_events",
    "set_certification_enabled",
    "use_certification",
]

# ----------------------------------------------------------------------
# Certification toggle (mirrors the solver-core and template toggles)
# ----------------------------------------------------------------------
_CERT_ENV = "REPRO_CERT"
_cert_enabled = os.environ.get(_CERT_ENV, "0").strip().lower() \
    not in ("0", "false", "off", "no", "")


def certification_enabled() -> bool:
    """Whether verdict-emitting engines certify by default."""
    return _cert_enabled


def set_certification_enabled(enabled: bool) -> bool:
    """Set the global certification toggle; returns the previous value."""
    global _cert_enabled
    previous = _cert_enabled
    _cert_enabled = bool(enabled)
    return previous


@contextmanager
def use_certification(enabled: bool) -> Iterator[None]:
    """Scoped override of the certification toggle (``--certify``)."""
    previous = set_certification_enabled(enabled)
    try:
        yield
    finally:
        set_certification_enabled(previous)


# ----------------------------------------------------------------------
# Certification entry points (the engines call these)
# ----------------------------------------------------------------------
def certify_unsat(solver, engine: str) -> CheckResult:
    """Certify a solver's UNSAT answers from its proof log.

    Checks every UNSAT conclusion the solver emitted (incremental
    sessions conclude once per refuted query) and the needed lemmas
    backward from each.  Raises
    :class:`~repro.resilience.CertificationFailure` when the solver
    carries no proof log or the check fails; returns the
    :class:`~repro.cert.drat.CheckResult` otherwise.
    """
    reg = obs.get_registry()
    proof: Optional[ProofLog] = getattr(solver, "proof", None)
    if proof is None:
        reg.counter("cert.failed")
        reg.event("cert.failure", engine=engine, stage="proof",
                  detail="no proof log")
        raise CertificationFailure(
            engine, stage="proof",
            message="solver carries no proof log (proof logging was "
                    "off when it was constructed)")
    with reg.span("cert.proof"):
        result = drat.check_events(proof.events)
    reg.counter("cert.checked")
    if result.lemmas_checked:
        reg.counter("cert.lemmas_checked", result.lemmas_checked)
    if result.lemmas_trimmed:
        reg.counter("cert.lemmas_trimmed", result.lemmas_trimmed)
    reg.event("cert.proof", engine=engine, ok=result.ok,
              conclusions=result.conclusions,
              lemmas_checked=result.lemmas_checked,
              lemmas_trimmed=result.lemmas_trimmed,
              core_inputs=result.core_inputs)
    if not result.ok:
        reg.counter("cert.failed")
        reg.event("cert.failure", engine=engine, stage="proof",
                  detail=result.errors[0] if result.errors else "")
        raise CertificationFailure(
            engine, stage="proof",
            message=result.errors[0] if result.errors
            else "proof check failed")
    return result


def certify_witness(net, target: int, cex, model=None, unroll=None,
                    engine: str = "bmc"):
    """Certify a SAT verdict by concrete counterexample replay.

    Raises :class:`~repro.resilience.CertificationFailure` on any
    disagreement between the claimed trace/model and the simulated
    netlist semantics; returns the
    :class:`~repro.cert.witness.WitnessReport` otherwise.
    """
    from .witness import replay_witness  # lazy: pulls in repro.sim

    reg = obs.get_registry()
    with reg.span("cert.witness"):
        report = replay_witness(net, target, cex, model=model,
                                unroll=unroll)
    reg.counter("cert.checked")
    reg.event("cert.witness", engine=engine, ok=report.ok,
              depth=report.depth,
              frames_checked=report.frames_checked,
              literals_checked=report.literals_checked)
    if not report.ok:
        reg.counter("cert.failed")
        reg.event("cert.failure", engine=engine, stage="witness",
                  detail=report.detail)
        raise CertificationFailure(engine, stage="witness",
                                   message=report.detail
                                   or "witness replay failed")
    return report
