"""Module-level worker entry points for the process-pool fan-out.

Every function here has the shape ``fn(payload, budget) -> result``
demanded by :meth:`repro.parallel.ParallelExecutor.map`: module-level
(so the pool pickles it by reference), payload a plain picklable dict,
result one of the library's existing dataclasses (all audited to
pickle cleanly — they carry netlists, bounds and traces, never live
solvers or registries).

Each mirrors one sequential loop body exactly — same engine
construction, same error-to-outcome mapping — so a fan-out at any
``jobs`` value reproduces the sequential results value-for-value:

* :func:`run_strategy` — one portfolio strategy
  (:func:`repro.core.portfolio.compare_strategies`);
* :func:`run_design` — one experiment table row
  (:func:`repro.experiments.runner.run_table`);
* :func:`run_bmc_probe` / :func:`run_induction_probe` — the
  independent engine probes ``prove()`` races after the portfolio;
* :func:`run_cube` — one cube of a split hard query
  (:func:`repro.sat.cube.solve_cubes`).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .. import obs
from ..resilience import Budget

__all__ = ["run_bmc_probe", "run_cube", "run_design",
           "run_induction_probe", "run_strategy"]


def run_strategy(payload: Dict[str, Any],
                 budget: Optional[Budget]) -> Any:
    """One portfolio strategy over a netlist.

    Payload keys: ``net``, ``strategy``, ``sweep_config``,
    ``refine_gc_limit``.  Returns a
    :class:`~repro.core.portfolio.StrategyOutcome` — engine errors
    become the outcome's ``error`` field exactly as in the sequential
    portfolio loop.  :class:`Cancelled` (and anything non-engine)
    propagates to the shim.
    """
    from ..core.engine import TBVEngine
    from ..core.portfolio import StrategyOutcome
    from ..netlist import NetlistError
    from ..resilience import EngineFailure, ResourceExhausted

    strategy = payload["strategy"]
    reg = obs.get_registry()
    label = strategy or "(none)"
    try:
        with reg.span(label) as strategy_span:
            result = TBVEngine(
                strategy, sweep_config=payload.get("sweep_config"),
                refine_gc_limit=payload.get("refine_gc_limit", 0)).run(
                    payload["net"], budget=budget)
        return StrategyOutcome(strategy=strategy, result=result,
                               seconds=strategy_span.seconds)
    except (NetlistError, ValueError, EngineFailure,
            ResourceExhausted) as exc:
        reg.counter("portfolio.failures")
        return StrategyOutcome(strategy=strategy, error=str(exc),
                               seconds=strategy_span.seconds)


def run_design(payload: Dict[str, Any],
               budget: Optional[Budget]) -> Any:
    """One experiment-table row: generate the design, run the
    pipelines.

    Payload keys: ``generate`` (a module-level generator function,
    e.g. ``repro.gen.iscas89.generate``), ``name``, ``scale``,
    ``sweep_config``, and optionally ``strategy_map``.  Returns a
    :class:`~repro.experiments.runner.RowResult`; a generation failure
    yields the same error row the sequential table loop produces.
    """
    from ..experiments.runner import RowResult, evaluate_design
    from ..resilience import Cancelled

    reg = obs.get_registry()
    try:
        net = payload["generate"](payload["name"],
                                  scale=payload["scale"])
        return evaluate_design(net,
                               sweep_config=payload.get("sweep_config"),
                               strategy_map=payload.get("strategy_map"),
                               budget=budget)
    except Cancelled:
        raise
    except Exception as exc:
        reg.counter("runner.design_errors")
        reg.event("runner.design_error", design=payload["name"],
                  error=str(exc))
        return RowResult(payload["name"],
                         error=str(exc) or type(exc).__name__)


def run_cube(payload: Dict[str, Any],
             budget: Optional[Budget]) -> Any:
    """One cube of a split query (see :mod:`repro.sat.cube`).

    Payload keys: ``mode`` (``cnf``/``bmc``/``induction``), the
    mode's rebuild recipe (clauses, or netlist + frame/k + target),
    ``cube`` (the assumption literals), ``cube_index``/``cube_of``,
    and the ``certify`` / ``conflict_budget`` / ``share_max_len``
    knobs.  Certification runs *inside* the worker (per-cube DRAT
    check, witness replay); a :class:`CertificationFailure`
    propagates to the shim and re-raises at the join.
    """
    from ..sat.cube import run_cube_task

    return run_cube_task(payload, budget)


def run_bmc_probe(payload: Dict[str, Any],
                  budget: Optional[Budget]) -> Any:
    """The quick falsification probe of ``prove()``'s engine race.

    The optional ``certify`` and ``use_cubes`` payload keys carry the
    parent's certification and cube-split toggles explicitly — a
    worker never relies on inheriting process globals across the pool
    boundary.  A
    :class:`repro.resilience.CertificationFailure` propagates to the
    shim, surfaces as the outcome's ``error``, and re-enters the
    parent's cross-core arbitration.
    """
    from ..unroll import bmc

    reg = obs.get_registry()
    with reg.span("quick-bmc"):
        return bmc(payload["net"], payload["target"],
                   max_depth=payload["max_depth"], budget=budget,
                   certify=payload.get("certify"),
                   use_cubes=payload.get("use_cubes"))


def run_induction_probe(payload: Dict[str, Any],
                        budget: Optional[Budget]) -> Any:
    """The k-induction probe of ``prove()``'s engine race.

    ``certify`` follows the :func:`run_bmc_probe` contract.
    """
    from ..unroll import k_induction

    reg = obs.get_registry()
    with reg.span("k-induction"):
        return k_induction(payload["net"], payload["target"],
                           max_k=payload["max_k"], budget=budget,
                           certify=payload.get("certify"),
                           use_cubes=payload.get("use_cubes"))
