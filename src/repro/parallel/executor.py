"""The process-pool fan-out engine (Layer 0.7).

Motivation 2 of Section 1 frames the transformation strategies as a
*portfolio* of independently-sound attempts whose minimum bound wins —
an embarrassingly parallel workload, as are the per-design rows of the
Table 1/2 sweeps.  This module provides the one fan-out mechanism all
of those share: a :class:`ParallelExecutor` that ships
``(worker function, payload, budget spec, fault schedule)`` tuples to
a ``concurrent.futures.ProcessPoolExecutor``, collects
``(result-or-typed-error, obs snapshot)`` tuples back, and merges them
**deterministically** — outcomes are returned in input order, never
completion order, so tables and bench artifacts are byte-identical at
any ``--jobs`` value.

Protocol invariants (see ``docs/architecture.md``, Layer 0.7):

* **Budgets pre-split.**  A worker cannot charge its parent's pools
  across a process boundary, so the parent carves one
  :meth:`~repro.resilience.Budget.slice` per task *before* submission
  and ships it as a :class:`BudgetSpec` — the wall deadline travels as
  an absolute ``time.time()`` epoch (``time.perf_counter`` values are
  meaningless in another process), the conflict/query pools as plain
  integers.  After the join, the parent charges itself with each
  worker's reported solver effort so hierarchical accounting stays
  truthful.
* **Typed errors are values.**  Workers catch the
  :mod:`repro.resilience` taxonomy (plus the engine-level
  ``NetlistError``/``ValueError``) and return the exception object —
  all of them pickle with structured fields intact — so the parent
  replays exactly the error handling the sequential code path has.  A
  worker *crash* (the process dying, an unpicklable result, an
  unexpected exception) maps to :class:`EngineFailure`, the existing
  degradation path, so PR 2's guarantees (tables always complete,
  sound structural fallback) hold unchanged.  :class:`Cancelled` is
  re-raised at the join, as everywhere else.
* **Observability survives.**  Each worker runs under a scoped
  :class:`repro.obs.Registry`; the parent folds every snapshot into
  the active registry under ``parallel/<name>/<label>`` and counts
  ``parallel.tasks`` / ``parallel.worker_crashes``.
* **Fault plans re-script per task.**  An active
  :class:`~repro.resilience.FaultPlan` is shipped as its schedule and
  re-armed from call index 0 in every worker — the only deterministic
  reading of call indices once work is distributed.

``jobs=1`` never touches the pool: call sites keep their existing
sequential loops, and :meth:`ParallelExecutor.map` itself degrades to
an in-process loop (used by tests and by call sites that want one
code path).

Since PR 9 the executor has a second engine, selected per instance
with ``stealing=True`` (or implied by a ``first_win`` predicate): the
work-stealing queue of :mod:`repro.parallel.stealing`.  Instead of one
future and one pre-split budget slice per task, workers steal task
indices from a shared deque and charge one *shared* cross-process
conflict/query pool under the common wall deadline — so budget flows
to the tasks that need it and no worker idles behind a static split.
The join is unchanged: outcomes come back in submission order, so the
determinism contract (byte-identical tables at any ``--jobs``) holds
in both engines.  ``first_win`` adds first-win cancellation on top:
the first ok outcome satisfying the predicate sets the pool-wide
cancel event, which reaches losers through their budgets' per-conflict
cancellation checks; their :class:`Cancelled` / exhausted outcomes are
then *not* re-raised at the join (the caller's join rule — e.g.
:func:`repro.sat.cube.join_cubes` — owns error precedence).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, \
    TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from .. import obs
from ..netlist import NetlistError
from ..resilience import Budget, Cancelled, EngineFailure, \
    ResourceExhausted
from ..resilience import faults as _faults

__all__ = ["BudgetSpec", "ParallelExecutor", "WorkerOutcome"]

#: Error types workers return as values (everything else is a crash).
_TYPED_ERRORS = (ResourceExhausted, EngineFailure, Cancelled,
                 NetlistError, ValueError)

#: Watchdog tuning.  A worker is expected to stop *itself* at its
#: budget deadline (cooperative checks inside every solve); the parent
#: only declares it stalled once it has overrun the deadline by
#: ``(grace - 1) x`` its original wall allowance, plus a small floor
#: absorbing pool scheduling jitter on tiny budgets.  Tasks with no
#: wall deadline are never watched — there is no bound to enforce.
_WATCHDOG_GRACE = 2.0
_WATCHDOG_FLOOR = 0.5


@dataclass(frozen=True)
class BudgetSpec:
    """A :class:`~repro.resilience.Budget`'s remains, in picklable form.

    ``deadline_epoch`` is an absolute ``time.time()`` instant (None =
    unlimited): monotonic ``perf_counter`` readings cannot cross a
    process boundary, so the deadline travels as wall-clock epoch and
    is re-anchored to the worker's own monotonic clock by
    :meth:`restore`.  The conflict/query pools are pre-split integers
    — the worker gets a private cap, not a shared pool.
    """

    deadline_epoch: Optional[float] = None
    conflicts: Optional[int] = None
    queries: Optional[int] = None
    name: str = "worker"
    #: ``time.time()`` at capture; with ``deadline_epoch`` this
    #: preserves the original wall allowance, which the parent-side
    #: watchdog scales by :data:`_WATCHDOG_GRACE` to decide when an
    #: unresponsive worker counts as stalled.
    captured_epoch: Optional[float] = None

    @classmethod
    def capture(cls, budget: Optional[Budget],
                name: Optional[str] = None) -> Optional["BudgetSpec"]:
        """Freeze ``budget``'s current remains (None passes through)."""
        if budget is None:
            return None
        now = time.time()
        seconds = budget.remaining_seconds()
        return cls(
            deadline_epoch=None if seconds is None
            else now + seconds,
            conflicts=budget.remaining_conflicts(),
            queries=budget.remaining_queries(),
            name=name or budget.name,
            captured_epoch=now,
        )

    def watchdog_timeout(self) -> Optional[float]:
        """Seconds from now until the parent should declare a worker
        on this budget stalled (None = never — no wall deadline)."""
        if self.deadline_epoch is None:
            return None
        allowance = 0.0
        if self.captured_epoch is not None:
            allowance = max(0.0,
                            self.deadline_epoch - self.captured_epoch)
        grace = allowance * (_WATCHDOG_GRACE - 1.0) + _WATCHDOG_FLOOR
        return max(0.0, self.deadline_epoch + grace - time.time())

    def restore(self) -> Budget:
        """Rebuild a live budget in the current process."""
        seconds = None
        if self.deadline_epoch is not None:
            seconds = max(0.0, self.deadline_epoch - time.time())
        return Budget(seconds, self.conflicts, self.queries,
                      name=self.name)


@dataclass
class WorkerOutcome:
    """One task's round-trip: its value or typed error, plus telemetry.

    Exactly one of ``value``/``error`` is set.  ``seconds`` is the
    worker-side wall time of the task body (monotonic, measured inside
    the worker); ``snapshot`` the worker's full obs snapshot (already
    merged into the parent registry by the time callers see it).
    """

    index: int
    label: str
    value: Any = None
    error: Optional[BaseException] = None
    seconds: float = 0.0
    snapshot: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """True when the task returned a value."""
        return self.error is None


def _run_task(fn: Callable[[Any, Optional[Budget]], Any],
              payload: Any,
              spec: Optional[BudgetSpec],
              fault_config: Optional[dict],
              budget: Optional[Budget] = None) -> tuple:
    """The worker-side shim (module-level so the pool can pickle it).

    Runs ``fn(payload, budget)`` under a fresh scoped registry and the
    re-armed fault schedule, returning ``(kind, value, snapshot,
    seconds)`` where ``kind`` is ``"ok"`` or ``"error"``.

    When ``REPRO_TRACE`` is set (inherited from the parent CLI) the
    shim opens a per-process sibling sink ``<path>.<pid>`` sharing the
    parent's trace id, so the parent can stitch all worker files into
    one wall-clock-aligned timeline; ``REPRO_PROGRESS`` likewise
    re-installs the stderr reporter in the worker.  Both are no-ops
    in-process (``jobs=1``): the parent's sink/reporter are already
    live.
    """
    obs.trace.open_worker_sink()
    obs.trace.progress_from_env()
    watch = obs.stopwatch()
    with obs.scoped(obs.Registry("worker")) as reg:
        if budget is None:
            budget = spec.restore() if spec is not None else None
        plan = _faults.FaultPlan(**fault_config) \
            if fault_config is not None else None
        try:
            if plan is not None:
                with _faults.inject(plan):
                    value = fn(payload, budget)
            else:
                value = fn(payload, budget)
            return ("ok", value, reg.snapshot(), watch.elapsed)
        except _TYPED_ERRORS as exc:
            return ("error", exc, reg.snapshot(), watch.elapsed)
        finally:
            # Pool workers are reused and then killed without cleanup:
            # push buffered trace records out after every task so the
            # parent can stitch complete files at any point.
            sink = obs.trace.active_sink()
            if sink is not None:
                sink.flush()


class ParallelExecutor:
    """Deterministic fan-out of independent engine calls.

    ``jobs`` caps the worker-process count; ``jobs <= 1`` runs every
    task in-process (same shim, no pool, no pickling) so a single code
    path serves both modes.  ``name`` prefixes the merged obs data:
    worker telemetry lands under ``parallel/<name>/<label>``.
    """

    def __init__(self, jobs: int = 1, name: str = "pool",
                 stealing: bool = False) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.name = name
        self.stealing = stealing
        #: Metadata of the last work-stealing run (first-win index,
        #: cancel latency, watchdog/crash slots) — read by the cube
        #: driver and the bench cancellation-latency probe.
        self.last_race: dict = {}

    # ------------------------------------------------------------------
    def map(self,
            fn: Callable[[Any, Optional[Budget]], Any],
            payloads: Sequence[Any],
            budget: Optional[Budget] = None,
            labels: Optional[Sequence[str]] = None,
            first_win: Optional[Callable[[Any], bool]] = None
            ) -> List[WorkerOutcome]:
        """Run ``fn(payload, budget-slice)`` for every payload.

        ``fn`` must be a module-level function (the pool pickles it by
        reference).  In the default engine ``budget`` is pre-split
        equally (each task gets a ``slice(1/n)`` of the remains at
        submission time); in stealing mode the pool shares one budget
        view instead.  The result list is ordered by input index
        regardless of completion order; a cancelled budget raises
        :class:`Cancelled` at the join, every other failure is an
        outcome.  ``first_win`` implies stealing mode.
        """
        return self.map_tasks([(fn, payload) for payload in payloads],
                              budget=budget, labels=labels,
                              first_win=first_win)

    def map_tasks(self,
                  tasks: Sequence[tuple],
                  budget: Optional[Budget] = None,
                  labels: Optional[Sequence[str]] = None,
                  first_win: Optional[Callable[[Any], bool]] = None
                  ) -> List[WorkerOutcome]:
        """Like :meth:`map`, but each task is its own ``(fn, payload)``
        pair — used for heterogeneous races (e.g. ``prove``'s quick-BMC
        vs k-induction probes)."""
        tasks = list(tasks)
        if not tasks:
            return []
        labels = [str(label) for label in labels] if labels \
            else [str(i) for i in range(len(tasks))]
        if len(labels) != len(tasks):
            raise ValueError("labels/tasks length mismatch")
        plan = _faults.active_plan()
        fault_config = plan.config() if plan is not None else None
        if self.stealing or first_win is not None:
            outcomes = self._stolen(tasks, labels, budget,
                                    fault_config, first_win)
        elif self.jobs == 1 or len(tasks) == 1:
            specs = self._specs(budget, labels, len(tasks))
            raw = [_run_task(fn, payload, spec, None)
                   for (fn, payload), spec in zip(tasks, specs)]
            outcomes = [self._decode(i, labels[i], raw[i])
                        for i in range(len(raw))]
        else:
            specs = self._specs(budget, labels, len(tasks))
            outcomes = self._pooled(tasks, specs, labels, fault_config)
        self._merge(outcomes, budget,
                    reraise_cancelled=first_win is None)
        return outcomes

    # ------------------------------------------------------------------
    def _specs(self, budget: Optional[Budget], labels: Sequence[str],
               n: int) -> List[Optional[BudgetSpec]]:
        if budget is None:
            return [None] * n
        if budget.cancelled:
            raise Cancelled(budget_name=budget.name)
        specs: List[Optional[BudgetSpec]] = []
        for label in labels:
            child = budget.slice(1.0 / n,
                                 name=f"{self.name}[{label}]")
            specs.append(BudgetSpec.capture(child, name=child.name))
        return specs

    def _pooled(self, tasks, specs, labels,
                fault_config) -> List[WorkerOutcome]:
        workers = min(self.jobs, len(tasks))
        outcomes: List[Optional[WorkerOutcome]] = [None] * len(tasks)
        reg = obs.get_registry()
        stalled = False
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = [
                pool.submit(_run_task, fn, payload, spec, fault_config)
                for (fn, payload), spec in zip(tasks, specs)
            ]
            # Joined in submission order: determinism over latency.
            # Each join is bounded by the task's watchdog deadline —
            # a worker that has blown past its wall budget by the
            # grace factor is declared stalled and its slot filled
            # with a typed exhaustion, exactly where its result
            # would have gone, so outcome order never depends on
            # which worker hung.
            for i, future in enumerate(futures):
                spec = specs[i]
                timeout = None if spec is None \
                    else spec.watchdog_timeout()
                try:
                    raw = future.result(timeout=timeout)
                except _FuturesTimeout:
                    stalled = True
                    future.cancel()
                    reg.counter("parallel.watchdog_kills")
                    reg.event("parallel.watchdog", label=labels[i],
                              budget=spec.name)
                    outcomes[i] = WorkerOutcome(
                        index=i, label=labels[i],
                        error=ResourceExhausted(
                            "parallel.watchdog",
                            f"worker {labels[i]!r} overran its wall "
                            "deadline past the watchdog grace; task "
                            "cancelled",
                            budget_name=spec.name))
                    continue
                except Exception as exc:
                    # The process died or the round-trip broke: the
                    # existing EngineFailure degradation path applies.
                    outcomes[i] = WorkerOutcome(
                        index=i, label=labels[i],
                        error=EngineFailure(
                            "parallel.worker",
                            "worker crashed: "
                            f"{str(exc) or type(exc).__name__}"))
                    continue
                outcomes[i] = self._decode(i, labels[i], raw)
        finally:
            if stalled:
                # A stalled worker never returns; a clean
                # shutdown(wait=True) would turn the watchdog into a
                # deadlock.  Kill the worker processes outright and
                # reap the pool without waiting.
                processes = getattr(pool, "_processes", None) or {}
                for proc in list(processes.values()):
                    proc.terminate()
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True)
        return [outcome for outcome in outcomes if outcome is not None]

    # ------------------------------------------------------------------
    # Work-stealing engine
    # ------------------------------------------------------------------
    def _stolen(self, tasks, labels, budget, fault_config,
                first_win) -> List[WorkerOutcome]:
        """Run tasks through the shared-deque engine (see
        :mod:`repro.parallel.stealing`); in-process when ``jobs`` (or
        the task count) is 1 — sequential draining of the same queue
        semantics, with first-win early exit."""
        from . import stealing as _stealing

        if budget is not None and budget.cancelled:
            raise Cancelled(budget_name=budget.name)
        reg = obs.get_registry()
        self.last_race = {}
        if self.jobs == 1 or len(tasks) == 1:
            return self._stolen_in_process(tasks, labels, budget,
                                           first_win)
        spec = BudgetSpec.capture(budget, name=self.name)
        raws, meta = _stealing.execute(
            tasks, labels, spec, fault_config,
            min(self.jobs, len(tasks)), self.name, first_win)
        self.last_race = meta
        outcomes: List[WorkerOutcome] = []
        for i, raw in enumerate(raws):
            if raw is not None:
                outcomes.append(self._decode(i, labels[i], raw))
            elif i in meta.get("watchdog", ()):
                reg.counter("parallel.watchdog_kills")
                reg.event("parallel.watchdog", label=labels[i],
                          budget=spec.name if spec else self.name)
                outcomes.append(WorkerOutcome(
                    index=i, label=labels[i],
                    error=ResourceExhausted(
                        "parallel.watchdog",
                        f"worker {labels[i]!r} overran the pool wall "
                        "deadline past the watchdog grace; task "
                        "cancelled",
                        budget_name=f"{self.name}[{labels[i]}]")))
            else:
                outcomes.append(WorkerOutcome(
                    index=i, label=labels[i],
                    error=EngineFailure(
                        "parallel.worker",
                        f"worker running {labels[i]!r} crashed")))
        return outcomes

    def _stolen_in_process(self, tasks, labels, budget,
                           first_win) -> List[WorkerOutcome]:
        """The ``jobs=1`` drain: same shared-budget semantics (tasks
        drain one pool through subbudget views of a single restored
        budget), same first-win early exit (later tasks short-circuit
        to :class:`Cancelled`), no processes."""
        spec = BudgetSpec.capture(budget, name=self.name)
        shared = spec.restore() if spec is not None else None
        outcomes: List[WorkerOutcome] = []
        won = False
        win_at = None
        for i, (fn, payload) in enumerate(tasks):
            name = f"{self.name}[{labels[i]}]"
            if won:
                outcomes.append(WorkerOutcome(
                    index=i, label=labels[i],
                    error=Cancelled(budget_name=name)))
                continue
            child = shared.subbudget(name=name) \
                if shared is not None else None
            raw = _run_task(fn, payload, None, None, budget=child)
            outcome = self._decode(i, labels[i], raw)
            outcomes.append(outcome)
            if first_win is not None and outcome.ok and \
                    first_win(outcome.value):
                won = True
                win_at = time.monotonic()
                self.last_race = {"first_win_index": i}
        if win_at is not None:
            self.last_race["cancel_latency"] = \
                time.monotonic() - win_at
        return outcomes

    @staticmethod
    def _decode(index: int, label: str, raw: tuple) -> WorkerOutcome:
        kind, value, snapshot, seconds = raw
        if kind == "ok":
            return WorkerOutcome(index=index, label=label, value=value,
                                 seconds=seconds, snapshot=snapshot)
        return WorkerOutcome(index=index, label=label, error=value,
                             seconds=seconds, snapshot=snapshot)

    def _merge(self, outcomes: List[WorkerOutcome],
               budget: Optional[Budget],
               reraise_cancelled: bool = True) -> None:
        """Fold worker telemetry into the parent registry and charge
        the parent budget with the reported solver effort; re-raise a
        worker-side :class:`Cancelled` (cooperative cancellation always
        propagates — except under a ``first_win`` race, where a
        loser's cancellation is bookkeeping and the caller's join rule
        owns error precedence)."""
        reg = obs.get_registry()
        for outcome in outcomes:
            reg.counter("parallel.tasks")
            if outcome.snapshot is not None:
                reg.merge_snapshot(
                    outcome.snapshot,
                    prefix=f"parallel/{self.name}/{outcome.label}")
                counters = outcome.snapshot.get("counters", {})
                # Certification telemetry stays globally additive:
                # the arbitration layer and the bench certification
                # section read the top-level ``cert.*`` counters, so
                # worker-side checks fold in un-prefixed too.
                for key, delta in counters.items():
                    if key.startswith("cert.") and delta:
                        reg.counter(key, delta)
                if budget is not None:
                    conflicts = counters.get("sat.conflicts", 0)
                    queries = counters.get("sat.solve_calls", 0)
                    if conflicts:
                        budget.charge_conflicts(conflicts)
                    if queries:
                        budget.charge_query(queries)
            if reraise_cancelled and isinstance(outcome.error,
                                                Cancelled):
                raise outcome.error
            if isinstance(outcome.error, EngineFailure) and \
                    outcome.error.engine == "parallel.worker":
                reg.counter("parallel.worker_crashes")
