"""Parallel strategy/experiment execution (Layer 0.7).

Fans the library's embarrassingly-parallel workloads — portfolio
strategies, per-design experiment rows, and ``prove()``'s independent
engine probes — across a ``concurrent.futures.ProcessPoolExecutor``
while keeping every output **byte-identical** to the sequential run:
outcomes merge in input order, budgets are pre-split via
:meth:`~repro.resilience.Budget.slice` and shipped as picklable
:class:`BudgetSpec` values (wall deadline as an absolute epoch
instant), typed errors return as values, worker crashes degrade
through the existing :class:`~repro.resilience.EngineFailure` path,
and each worker's obs snapshot folds into the parent registry under a
``parallel/`` prefix.

Two engines share that contract.  The original pool ships one future
and one pre-split budget slice per task; the work-stealing engine
(:mod:`repro.parallel.stealing`, ``stealing=True``) has workers steal
task indices from a shared deque under one shared cross-process budget
pool, and supports first-win cancellation races — used by the
experiment grid and by :mod:`repro.sat.cube`'s cube-and-conquer solve
path.

Entry points: ``--jobs N`` on the ``table1`` / ``table2`` / ``report``
/ ``bound`` / ``bench`` CLIs, or the ``jobs=`` keyword on
:func:`repro.core.portfolio.compare_strategies`,
:func:`repro.experiments.runner.run_table` and
:func:`repro.core.prove.prove`.  ``jobs=1`` (the default) is exactly
the pre-existing sequential code path.

Stdlib-only, like every substrate layer below it.
"""

from .executor import BudgetSpec, ParallelExecutor, WorkerOutcome
from .stealing import SharedBudget
from . import workers

__all__ = [
    "BudgetSpec",
    "ParallelExecutor",
    "SharedBudget",
    "WorkerOutcome",
    "workers",
]
