"""The work-stealing task queue behind ``ParallelExecutor``.

The PR 3 pool pre-split everything: each task got its own future and a
private ``slice(1/n)`` of the budget, so an unlucky static split left
workers idle behind one long task and starved hard tasks of budget
their easy siblings never used.  This module replaces that with a
shared deque: the parent enqueues task *indices*, every worker process
runs a drain loop that steals the next index whenever it goes idle, and
results are shipped back tagged by index so the parent still joins them
in **submission order** — execution is dynamic, the join is not, and
tables stay byte-identical at any ``--jobs``.

Three pieces of shared state ride along (plain ``multiprocessing``
primitives, shipped at process-spawn time):

* a **cancel event** — the first-win hook: when the parent sees a
  winning result it sets the event, and every worker observes it both
  between tasks (stolen tasks short-circuit to :class:`Cancelled`)
  and *inside* a task, because the event is threaded into the worker's
  :class:`SharedBudget` and the solver checks ``budget.cancelled``
  once per conflict — first-win cancellation through the existing
  Budget cancellation path, no new mechanism;
* a **shared conflict pool** and a **shared query pool** — the
  work-stealing replacement for pre-split budget slices: one
  cross-process counter that every worker charges, so budget flows to
  whichever tasks actually need it (the wall deadline is naturally
  shared already: it is one absolute epoch);
* the **task queue** itself, FIFO with one sentinel per worker
  enqueued after the real work.

Per-task hygiene (the second satellite): every *stolen task* — not
every worker process — re-arms the fault schedule from call index 0
and opens a fresh scoped registry, so fault injection and the
``parallel/<pool>/<label>`` obs merge are functions of the task label
alone, independent of which worker stole it.

Crash containment: workers announce ``("start", index)`` before
running a task, so when a worker process dies the parent knows exactly
which index was in flight, fills that slot with the existing
:class:`EngineFailure` crash outcome, and lets the surviving workers
drain the rest.  A pool-wide wall-clock watchdog (same grace policy as
the pre-split pool) terminates a stalled pool outright.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as _queue
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, \
    Tuple

from .. import obs
from ..resilience import Budget, Cancelled, EngineFailure, \
    ResourceExhausted
from ..resilience import faults as _faults

__all__ = ["SharedBudget", "execute"]

#: Parent-side poll period while waiting on the result queue: short
#: enough to notice dead workers and an expired watchdog promptly,
#: long enough to stay invisible next to any real solve.
_POLL_SECONDS = 0.1


class SharedBudget(Budget):
    """A worker-side budget view over the pool's shared state.

    Wall clock: a private re-anchored deadline (the epoch is absolute,
    so every worker's deadline is the same instant).  Conflict/query
    pools: cross-process shared counters charged under their locks —
    siblings drain one pool, exactly like sequential siblings sharing
    a parent budget in-process.  Cancellation: the pool-wide first-win
    event, OR-ed with the normal in-process flag.
    """

    __slots__ = ("_event", "_shared_conflicts", "_shared_queries")

    def __init__(self, deadline_epoch: Optional[float],
                 event: Optional[Any],
                 conflicts: Optional[Any],
                 queries: Optional[Any],
                 name: str = "worker") -> None:
        seconds = None if deadline_epoch is None \
            else max(0.0, deadline_epoch - time.time())
        super().__init__(seconds, None, None, name=name)
        self._event = event
        self._shared_conflicts = conflicts
        self._shared_queries = queries

    @property
    def cancelled(self) -> bool:
        if self._event is not None and self._event.is_set():
            return True
        return Budget.cancelled.fget(self)

    def remaining_conflicts(self) -> Optional[int]:
        if self._shared_conflicts is None:
            return None
        return max(0, self._shared_conflicts.value)

    def remaining_queries(self) -> Optional[int]:
        if self._shared_queries is None:
            return None
        return max(0, self._shared_queries.value)

    def charge_conflicts(self, n: int = 1) -> None:
        if self._shared_conflicts is not None:
            with self._shared_conflicts.get_lock():
                self._shared_conflicts.value -= n

    def charge_query(self, n: int = 1) -> None:
        if self._shared_queries is not None:
            with self._shared_queries.get_lock():
                self._shared_queries.value -= n


def _run_stolen_task(fn: Callable[[Any, Optional[Budget]], Any],
                     payload: Any,
                     budget: Optional[Budget],
                     fault_config: Optional[dict]) -> tuple:
    """One stolen task under a fresh registry and re-armed faults.

    Mirrors the pre-split pool's ``_run_task`` contract — ``(kind,
    value, snapshot, seconds)`` with the typed taxonomy as values —
    but takes a live (shared-view) budget instead of a spec.  The
    fault schedule restarts at call index 0 *per task*, so injection
    points are deterministic under stealing.
    """
    from .executor import _TYPED_ERRORS

    watch = obs.stopwatch()
    with obs.scoped(obs.Registry("worker")) as reg:
        plan = _faults.FaultPlan(**fault_config) \
            if fault_config is not None else None
        try:
            if plan is not None:
                with _faults.inject(plan):
                    value = fn(payload, budget)
            else:
                value = fn(payload, budget)
            return ("ok", value, reg.snapshot(), watch.elapsed)
        except _TYPED_ERRORS as exc:
            return ("error", exc, reg.snapshot(), watch.elapsed)
        finally:
            sink = obs.trace.active_sink()
            if sink is not None:
                sink.flush()


def _drain_worker(tasks: Sequence[tuple],
                  labels: Sequence[str],
                  pool_name: str,
                  deadline_epoch: Optional[float],
                  fault_config: Optional[dict],
                  task_q: Any,
                  result_q: Any,
                  cancel_event: Any,
                  conflicts: Optional[Any],
                  queries: Optional[Any]) -> None:
    """Worker-process drain loop: steal, run, report, repeat."""
    obs.trace.open_worker_sink()
    obs.trace.progress_from_env()
    while True:
        index = task_q.get()
        if index is None:
            break
        name = f"{pool_name}[{labels[index]}]"
        pid = multiprocessing.current_process().pid
        result_q.put(pickle.dumps(("start", index, pid)))
        if cancel_event.is_set():
            raw = ("error", Cancelled(budget_name=name), None, 0.0)
        else:
            budget = SharedBudget(deadline_epoch, cancel_event,
                                  conflicts, queries, name=name)
            fn, payload = tasks[index]
            raw = _run_stolen_task(fn, payload, budget, fault_config)
        try:
            blob = pickle.dumps(("done", index, raw))
        except Exception as exc:  # unpicklable result = a crash
            blob = pickle.dumps(("done", index, (
                "error",
                EngineFailure("parallel.worker",
                              "unpicklable worker result: "
                              f"{str(exc) or type(exc).__name__}"),
                None, 0.0)))
        result_q.put(blob)


def execute(tasks: Sequence[tuple],
            labels: Sequence[str],
            spec: Optional[Any],  # BudgetSpec (shared, unsliced)
            fault_config: Optional[dict],
            jobs: int,
            pool_name: str,
            first_win: Optional[Callable[[Any], bool]]
            ) -> Tuple[List[Optional[tuple]], Dict[str, Any]]:
    """Run ``tasks`` over a work-stealing worker pool.

    Returns ``(raws, meta)``: ``raws`` is the per-index list of raw
    ``(kind, value, snapshot, seconds)`` tuples (None only for slots
    the watchdog or a crash already resolved — those land in ``meta``),
    aligned to submission order.  ``meta`` carries ``watchdog`` /
    ``crashed`` slot lists and, when ``first_win`` fired,
    ``first_win_index`` and the ``cancel_latency`` between the winning
    result and the last loser draining out.
    """
    n = len(tasks)
    ctx = multiprocessing.get_context()
    task_q: Any = ctx.Queue()
    result_q: Any = ctx.Queue()
    cancel_event = ctx.Event()
    conflicts = queries = None
    deadline_epoch = None
    if spec is not None:
        deadline_epoch = spec.deadline_epoch
        if spec.conflicts is not None:
            conflicts = ctx.Value("q", spec.conflicts)
        if spec.queries is not None:
            queries = ctx.Value("q", spec.queries)
    for index in range(n):
        task_q.put(index)
    for _ in range(jobs):
        task_q.put(None)
    procs = [
        ctx.Process(
            target=_drain_worker,
            args=(list(tasks), list(labels), pool_name, deadline_epoch,
                  fault_config, task_q, result_q, cancel_event,
                  conflicts, queries),
            daemon=True)
        for _ in range(jobs)
    ]
    for proc in procs:
        proc.start()

    raws: List[Optional[tuple]] = [None] * n
    meta: Dict[str, Any] = {"watchdog": [], "crashed": []}
    pending = set(range(n))
    inflight: Dict[int, int] = {}  # index -> worker pid running it
    watchdog_at = None
    if spec is not None:
        timeout = spec.watchdog_timeout()
        if timeout is not None:
            watchdog_at = time.monotonic() + timeout
    win_at: Optional[float] = None
    try:
        while pending:
            try:
                message = pickle.loads(
                    result_q.get(timeout=_POLL_SECONDS))
            except _queue.Empty:
                if watchdog_at is not None and \
                        time.monotonic() >= watchdog_at:
                    meta["watchdog"] = sorted(pending)
                    break
                # The start/done protocol maps every in-flight index
                # to the pid running it: a dead pid with a missing
                # "done" is a crashed task (fill the slot, keep the
                # survivors draining).  A fully dead pool dooms the
                # never-started remainder too.
                dead_pids = {proc.pid for proc in procs
                             if not proc.is_alive()}
                for index, pid in list(inflight.items()):
                    if pid in dead_pids and index in pending:
                        meta["crashed"].append(index)
                        pending.discard(index)
                        del inflight[index]
                if not any(proc.is_alive() for proc in procs):
                    meta["crashed"].extend(sorted(pending))
                    break
                continue
            kind, index, extra = message
            if kind == "start":
                inflight[index] = extra
                continue
            inflight.pop(index, None)
            raws[index] = extra
            pending.discard(index)
            if first_win is not None and win_at is None and \
                    extra[0] == "ok" and first_win(extra[1]):
                cancel_event.set()
                win_at = time.monotonic()
                meta["first_win_index"] = index
    finally:
        if pending:
            # Watchdog or pool death: nothing left to wait for.
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (task_q, result_q):
            q.close()
            q.cancel_join_thread()
    if win_at is not None:
        meta["cancel_latency"] = time.monotonic() - win_at
    return raws, meta
