"""Graph traversals over netlists.

Provides the structural analyses every other subsystem builds on:
combinational topological ordering, cone-of-influence (COI) extraction,
the register dependency graph, and an iterative Tarjan SCC
decomposition (used by the structural diameter bound of Section 4).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from .netlist import Netlist
from .types import GateType, NetlistError


def combinational_fanins(net: Netlist, vid: int) -> Tuple[int, ...]:
    """Fanins of ``vid`` that belong to the *same clock cycle*.

    Registers and latches act as sources within a cycle, so they report
    no combinational fanins; their ``next``/``data`` edges cross into
    the previous cycle.
    """
    gate = net.gate(vid)
    if gate.is_state:
        return ()
    return gate.fanins


def topological_order(
    net: Netlist, roots: Sequence[int] = None
) -> List[int]:
    """Topologically sort the combinational logic feeding ``roots``.

    State elements, inputs and constants appear before the gates that
    read them.  With ``roots=None`` the whole netlist is sorted.
    Raises :class:`NetlistError` on a combinational cycle.
    """
    if roots is None:
        roots = list(net)
    order: List[int] = []
    # 0 = unvisited, 1 = on stack (being expanded), 2 = done.
    state: Dict[int, int] = {}
    for root in roots:
        if state.get(root) == 2:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        while stack:
            vid, idx = stack.pop()
            if idx == 0:
                if state.get(vid) == 2:
                    continue
                if state.get(vid) == 1:
                    raise NetlistError(f"combinational cycle through {vid}")
                state[vid] = 1
            fanins = combinational_fanins(net, vid)
            while idx < len(fanins) and state.get(fanins[idx]) == 2:
                idx += 1
            if idx < len(fanins):
                child = fanins[idx]
                if state.get(child) == 1:
                    raise NetlistError(f"combinational cycle through {child}")
                stack.append((vid, idx + 1))
                stack.append((child, 0))
            else:
                state[vid] = 2
                order.append(vid)
    return order


def cone_of_influence(net: Netlist, roots: Iterable[int]) -> Set[int]:
    """All vertices that may influence ``roots`` at any time.

    Follows every edge: combinational fanins, register ``next`` *and*
    ``init`` edges, latch ``data`` and ``clock`` edges.  This is the set
    ``coi(U)`` the paper uses; the diameter of ``U`` only depends on it.
    """
    seen: Set[int] = set()
    stack = list(roots)
    while stack:
        vid = stack.pop()
        if vid in seen:
            continue
        seen.add(vid)
        stack.extend(net.gate(vid).fanins)
    return seen


def combinational_support(net: Netlist, vid: int) -> Set[int]:
    """State elements, inputs and constants in ``vid``'s current-cycle cone."""
    support: Set[int] = set()
    seen: Set[int] = set()
    stack = [vid]
    while stack:
        v = stack.pop()
        if v in seen:
            continue
        seen.add(v)
        gate = net.gate(v)
        if v != vid and (gate.is_state or gate.is_source):
            support.add(v)
            continue
        if gate.is_state or gate.is_source:
            support.add(v)
            continue
        stack.extend(gate.fanins)
    return support


def state_support(net: Netlist, vid: int) -> Set[int]:
    """State elements (registers/latches) in ``vid``'s combinational cone."""
    support: Set[int] = set()
    seen: Set[int] = set()
    stack = [vid]
    while stack:
        v = stack.pop()
        if v in seen:
            continue
        seen.add(v)
        gate = net.gate(v)
        if gate.is_state:
            support.add(v)
            continue
        stack.extend(gate.fanins)
    return support


def register_graph(net: Netlist) -> Dict[int, Set[int]]:
    """The register dependency graph.

    Nodes are state elements; there is an edge ``r1 -> r2`` when
    ``r2``'s next-state (or latch data/clock) function combinationally
    depends on ``r1``.  This is the graph whose SCC decomposition
    drives the structural diameter bound.
    """
    graph: Dict[int, Set[int]] = {}
    for vid, gate in net.gates():
        if not gate.is_state:
            continue
        preds: Set[int] = set()
        for edge in _sequential_edges(gate):
            for s in state_support(net, edge):
                preds.add(s)
        if gate.type is GateType.LATCH:
            # A latch holds its previous value while the clock is low:
            # an implicit self-dependence.
            preds.add(vid)
        graph[vid] = preds
    # Invert: we stored predecessors; produce successor sets.
    succ: Dict[int, Set[int]] = {v: set() for v in graph}
    for v, preds in graph.items():
        for p in preds:
            succ[p].add(v)
    return succ


def _sequential_edges(gate) -> Tuple[int, ...]:
    """The fanin edges of a state element that cross a cycle boundary."""
    if gate.type is GateType.REGISTER:
        return (gate.fanins[0],)  # next; init handled separately
    return gate.fanins  # latch: data and clock


def strongly_connected_components(
    graph: Dict[int, Set[int]]
) -> List[FrozenSet[int]]:
    """Iterative Tarjan SCC decomposition.

    Returns components in *reverse* topological order (a component
    appears before any component it depends on), which is Tarjan's
    natural emission order.
    """
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    components: List[FrozenSet[int]] = []
    counter = [0]

    for root in graph:
        if root in index:
            continue
        work: List[Tuple[int, "object"]] = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in graph:
                    continue
                if w not in index:
                    index[w] = lowlink[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
            if lowlink[v] == index[v]:
                component = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.add(w)
                    if w == v:
                        break
                components.append(frozenset(component))
    return components


def condensation_order(
    graph: Dict[int, Set[int]]
) -> Tuple[List[FrozenSet[int]], Dict[FrozenSet[int], Set[FrozenSet[int]]]]:
    """SCCs in topological order plus the condensed predecessor map.

    Returns ``(components, preds)`` where ``components`` is ordered so
    that predecessors come first and ``preds[c]`` is the set of
    components with an edge into ``c``.
    """
    components = list(reversed(strongly_connected_components(graph)))
    member: Dict[int, FrozenSet[int]] = {}
    for comp in components:
        for v in comp:
            member[v] = comp
    preds: Dict[FrozenSet[int], Set[FrozenSet[int]]] = {
        c: set() for c in components
    }
    for v, succs in graph.items():
        for w in succs:
            cv, cw = member[v], member[w]
            if cv is not cw:
                preds[cw].add(cv)
    return components, preds


def combinational_depth(net: Netlist, roots: Sequence[int] = None) -> int:
    """Longest purely-combinational path length feeding ``roots``."""
    order = topological_order(net, roots)
    depth: Dict[int, int] = {}
    best = 0
    for vid in order:
        fanins = combinational_fanins(net, vid)
        d = 0 if not fanins else 1 + max(depth[f] for f in fanins)
        depth[vid] = d
        best = max(best, d)
    return best
