"""ISCAS89 BENCH format reader and writer.

The BENCH format is the textual netlist format the ISCAS89 benchmark
suite (the designs of Table 1) is distributed in::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G10 = NAND(G0, G5)

``DFF`` state elements are mapped to registers with constant-0 initial
values, the ISCAS89 convention.  The full (public) ``s27`` circuit is
embedded as :data:`S27_BENCH` and serves as a golden reference in the
test-suite; the remaining Table 1 designs are synthesized by profile
(:mod:`repro.gen.iscas89`) as documented in ``DESIGN.md``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .netlist import Netlist
from .types import GateType, NetlistError

_LINE_RE = re.compile(r"^(\w+)\s*=\s*(\w+)\s*\(([^)]*)\)\s*$")
_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\((\w+)\)\s*$")

_GATE_BY_OP = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
}

_OP_BY_GATE = {
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "NOT",
    GateType.BUF: "BUFF",
}


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse BENCH ``text`` into a netlist.

    Every primary output is also registered as a verification target,
    matching the experimental setup of Section 4.
    """
    inputs: List[str] = []
    outputs: List[str] = []
    defs: List[Tuple[str, str, List[str]]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io = _IO_RE.match(line)
        if io:
            (inputs if io.group(1) == "INPUT" else outputs).append(io.group(2))
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise NetlistError(f"unparseable BENCH line: {raw!r}")
        lhs, op, args = m.group(1), m.group(2).upper(), m.group(3)
        fanins = [a.strip() for a in args.split(",") if a.strip()]
        defs.append((lhs, op, fanins))

    net = Netlist(name)
    vid_by_signal: Dict[str, int] = {}
    for sig in inputs:
        vid_by_signal[sig] = net.add_gate(GateType.INPUT, (), name=sig)

    # First pass: create registers (they may be read before their
    # next-state functions are definable).
    const0 = None
    for lhs, op, fanins in defs:
        if op == "DFF":
            if const0 is None:
                const0 = net.const0()
            vid_by_signal[lhs] = net.add_gate(
                GateType.REGISTER, (const0, const0), name=lhs
            )

    # Second pass: combinational gates, in dependency order.
    pending = [(lhs, op, fanins) for lhs, op, fanins in defs if op != "DFF"]
    while pending:
        progressed = False
        deferred = []
        for lhs, op, fanins in pending:
            if all(f in vid_by_signal for f in fanins):
                gtype = _GATE_BY_OP.get(op)
                if gtype is None:
                    raise NetlistError(f"unknown BENCH gate type {op!r}")
                vid_by_signal[lhs] = net.add_gate(
                    gtype, tuple(vid_by_signal[f] for f in fanins), name=lhs
                )
                progressed = True
            else:
                deferred.append((lhs, op, fanins))
        if not progressed:
            missing = {f for _, _, fs in deferred for f in fs} - set(vid_by_signal)
            raise NetlistError(f"undefined BENCH signals: {sorted(missing)}")
        pending = deferred

    # Third pass: wire register next-state edges.
    for lhs, op, fanins in defs:
        if op == "DFF":
            if len(fanins) != 1:
                raise NetlistError(f"DFF {lhs} must have exactly one fanin")
            reg = vid_by_signal[lhs]
            init = net.gate(reg).fanins[1]
            net.set_fanins(reg, (vid_by_signal[fanins[0]], init))

    for sig in outputs:
        if sig not in vid_by_signal:
            raise NetlistError(f"undefined output signal {sig!r}")
        net.add_output(vid_by_signal[sig])
        net.add_target(vid_by_signal[sig])
    return net


def write_bench(net: Netlist) -> str:
    """Serialize ``net`` to BENCH text.

    Requires a netlist expressible in BENCH: no latches, no muxes and
    constant-0 register initial values.  Unnamed vertices get ``n<id>``
    names.
    """

    def label(vid: int) -> str:
        gate = net.gate(vid)
        return gate.name if gate.name else f"n{vid}"

    # The constant-0 vertex needs encoding only if it feeds real logic;
    # register init edges are implicit in DFF semantics.
    const_users = False
    for vid, gate in net.gates():
        fanins = gate.fanins
        if gate.type is GateType.REGISTER:
            fanins = fanins[:1]
        for f in fanins:
            if net.gate(f).type is GateType.CONST0:
                const_users = True
    for out in net.outputs:
        if net.gate(out).type is GateType.CONST0:
            const_users = True

    lines = [f"# {net.name}"]
    body: List[str] = []
    for vid, gate in net.gates():
        if gate.type is GateType.INPUT:
            lines.append(f"INPUT({label(vid)})")
        elif gate.type is GateType.REGISTER:
            nxt, init = gate.fanins
            if net.gate(init).type is not GateType.CONST0:
                raise NetlistError(
                    "BENCH supports only constant-0 register initial values"
                )
            body.append(f"{label(vid)} = DFF({label(nxt)})")
        elif gate.type is GateType.CONST0:
            pass
        elif gate.type in _OP_BY_GATE:
            args = ", ".join(label(f) for f in gate.fanins)
            body.append(f"{label(vid)} = {_OP_BY_GATE[gate.type]}({args})")
        else:
            raise NetlistError(
                f"gate type {gate.type.value} is not expressible in BENCH"
            )
    if const_users:
        # BENCH has no constants; model const-0 as x AND NOT x over a
        # dedicated dummy input.
        for vid, gate in net.gates():
            if gate.type is GateType.CONST0:
                lines.append("INPUT(__zero_in)")
                body.insert(0, f"{label(vid)}_n = NOT(__zero_in)")
                body.insert(1, f"{label(vid)} = AND(__zero_in, {label(vid)}_n)")
    for out in net.outputs:
        lines.append(f"OUTPUT({label(out)})")
    lines.extend(body)
    return "\n".join(lines) + "\n"


#: The complete public ISCAS89 ``s27`` benchmark.
S27_BENCH = """\
# s27 (ISCAS89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
"""


def s27() -> Netlist:
    """The ISCAS89 ``s27`` netlist (3 registers, 4 inputs, 1 output)."""
    return parse_bench(S27_BENCH, name="s27")
