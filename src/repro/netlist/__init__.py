"""Netlist data model, construction, traversal and I/O (Definition 1)."""

from .types import Gate, GateType, NetlistError
from .netlist import Netlist
from .builder import NetlistBuilder, all_outputs_as_targets
from .rebuild import rebuild
from .bench import parse_bench, write_bench, s27, S27_BENCH
from .aig import (
    AIG,
    FALSE,
    TRUE,
    aig_complemented,
    aig_node,
    aig_not,
    aig_to_netlist,
    netlist_to_aig,
)
from .aiger import parse_aiger, write_aiger
from .blif import parse_blif, write_blif
from .validate import ERROR, Issue, WARNING, assert_valid, validate
from .traversal import (
    cone_of_influence,
    combinational_depth,
    combinational_fanins,
    combinational_support,
    condensation_order,
    register_graph,
    state_support,
    strongly_connected_components,
    topological_order,
)

__all__ = [
    "AIG",
    "FALSE",
    "TRUE",
    "Gate",
    "GateType",
    "aig_complemented",
    "aig_node",
    "aig_not",
    "aig_to_netlist",
    "netlist_to_aig",
    "parse_aiger",
    "parse_blif",
    "validate",
    "assert_valid",
    "Issue",
    "ERROR",
    "WARNING",
    "write_aiger",
    "write_blif",
    "Netlist",
    "NetlistBuilder",
    "NetlistError",
    "S27_BENCH",
    "all_outputs_as_targets",
    "combinational_depth",
    "combinational_fanins",
    "combinational_support",
    "condensation_order",
    "cone_of_influence",
    "parse_bench",
    "rebuild",
    "register_graph",
    "s27",
    "state_support",
    "strongly_connected_components",
    "topological_order",
    "write_bench",
]
