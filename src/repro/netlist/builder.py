"""Fluent construction API for netlists.

:class:`NetlistBuilder` wraps a :class:`~repro.netlist.netlist.Netlist`
with convenience constructors.  Boolean helpers perform light local
simplification (constant folding, unit laws, idempotence) so generated
workloads do not carry trivially redundant structure — the heavier
lifting is the COM engine's job (:mod:`repro.transform.redundancy`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .netlist import Netlist
from .types import GateType


class NetlistBuilder:
    """Builds gates on an underlying netlist with local simplification."""

    def __init__(self, name: str = "netlist") -> None:
        self.net = Netlist(name)
        self._const0 = self.net.const0()
        self._const1 = self.net.add_gate(
            GateType.NOT, (self._const0,), name="__const1"
        )

    # ------------------------------------------------------------------
    # Sources and state
    # ------------------------------------------------------------------
    @property
    def const0(self) -> int:
        """The constant-0 vertex."""
        return self._const0

    @property
    def const1(self) -> int:
        """The constant-1 vertex (NOT of constant 0)."""
        return self._const1

    def const(self, value: int) -> int:
        """Constant vertex for a 0/1 ``value``."""
        return self._const1 if value else self._const0

    def input(self, name: Optional[str] = None) -> int:
        """A fresh primary input (nondeterministic bit)."""
        return self.net.add_gate(GateType.INPUT, (), name)

    def register(
        self,
        next_vid: Optional[int] = None,
        init: Optional[int] = None,
        name: Optional[str] = None,
    ) -> int:
        """A register with next-state ``next_vid`` and initial value ``init``.

        ``init`` defaults to constant 0.  Pass ``next_vid=None`` to
        create a placeholder whose next-state is wired up later with
        :meth:`connect` (required for feedback loops).
        """
        if init is None:
            init = self._const0
        placeholder = next_vid if next_vid is not None else self._const0
        return self.net.add_gate(GateType.REGISTER, (placeholder, init), name)

    def connect(self, reg: int, next_vid: int) -> None:
        """Wire the next-state edge of a placeholder register."""
        gate = self.net.gate(reg)
        self.net.set_fanins(reg, (next_vid, gate.fanins[1]))

    def latch(self, data: int, clock: int, name: Optional[str] = None) -> int:
        """A level-sensitive latch, transparent while ``clock`` is 1."""
        return self.net.add_gate(GateType.LATCH, (data, clock), name)

    # ------------------------------------------------------------------
    # Combinational gates (with local simplification)
    # ------------------------------------------------------------------
    def not_(self, a: int) -> int:
        """Negation (double negations collapse)."""
        if a == self._const0:
            return self._const1
        if a == self._const1:
            return self._const0
        gate = self.net.gate(a)
        if gate.type is GateType.NOT:
            return gate.fanins[0]
        return self.net.add_gate(GateType.NOT, (a,))

    def buf(self, a: int, name: Optional[str] = None) -> int:
        """An explicit buffer (used to give internal signals names)."""
        return self.net.add_gate(GateType.BUF, (a,), name)

    def and_(self, *fanins: int) -> int:
        """Conjunction with unit/absorbing simplification."""
        fanins = self._flatten(fanins)
        if self._const0 in fanins:
            return self._const0
        fanins = tuple(f for f in fanins if f != self._const1)
        fanins = tuple(dict.fromkeys(fanins))
        if not fanins:
            return self._const1
        if len(fanins) == 1:
            return fanins[0]
        return self.net.add_gate(GateType.AND, fanins)

    def or_(self, *fanins: int) -> int:
        """Disjunction with unit/absorbing simplification."""
        fanins = self._flatten(fanins)
        if self._const1 in fanins:
            return self._const1
        fanins = tuple(f for f in fanins if f != self._const0)
        fanins = tuple(dict.fromkeys(fanins))
        if not fanins:
            return self._const0
        if len(fanins) == 1:
            return fanins[0]
        return self.net.add_gate(GateType.OR, fanins)

    def nand(self, *fanins: int) -> int:
        """Negated conjunction."""
        return self.not_(self.and_(*fanins))

    def nor(self, *fanins: int) -> int:
        """Negated disjunction."""
        return self.not_(self.or_(*fanins))

    def xor(self, a: int, b: int) -> int:
        """Exclusive or with constant folding."""
        if a == b:
            return self._const0
        if a == self._const0:
            return b
        if b == self._const0:
            return a
        if a == self._const1:
            return self.not_(b)
        if b == self._const1:
            return self.not_(a)
        return self.net.add_gate(GateType.XOR, (a, b))

    def xnor(self, a: int, b: int) -> int:
        """Negated exclusive or."""
        return self.not_(self.xor(a, b))

    def mux(self, sel: int, then: int, else_: int) -> int:
        """``sel ? then : else_``."""
        if sel == self._const1:
            return then
        if sel == self._const0:
            return else_
        if then == else_:
            return then
        return self.net.add_gate(GateType.MUX, (sel, then, else_))

    def implies(self, a: int, b: int) -> int:
        """``a -> b``."""
        return self.or_(self.not_(a), b)

    def _flatten(self, fanins: Sequence[int]) -> tuple:
        out: List[int] = []
        for f in fanins:
            if isinstance(f, (list, tuple)):
                out.extend(f)
            else:
                out.append(f)
        return tuple(out)

    # ------------------------------------------------------------------
    # Word-level helpers
    # ------------------------------------------------------------------
    def inputs(self, width: int, prefix: str = "i") -> List[int]:
        """A word of fresh primary inputs, LSB first."""
        return [self.input(f"{prefix}{k}") for k in range(width)]

    def registers(
        self,
        width: int,
        prefix: str = "r",
        init: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """A word of placeholder registers, LSB first."""
        out = []
        for k in range(width):
            ini = None if init is None else init[k]
            out.append(self.register(None, ini, name=f"{prefix}{k}"))
        return out

    def connect_word(self, regs: Sequence[int], nexts: Sequence[int]) -> None:
        """Wire next-state edges for a word of placeholder registers."""
        for reg, nxt in zip(regs, nexts):
            self.connect(reg, nxt)

    def word_eq(self, a: Sequence[int], b: Sequence[int]) -> int:
        """Bitwise equality of two equal-width words."""
        return self.and_(*[self.xnor(x, y) for x, y in zip(a, b)])

    def word_const(self, value: int, width: int) -> List[int]:
        """Constant word for ``value`` (LSB first)."""
        return [self.const((value >> k) & 1) for k in range(width)]

    def word_mux(
        self, sel: int, then: Sequence[int], else_: Sequence[int]
    ) -> List[int]:
        """Per-bit mux over two words."""
        return [self.mux(sel, t, e) for t, e in zip(then, else_)]

    def increment(self, word: Sequence[int]) -> List[int]:
        """``word + 1`` (same width, wrapping)."""
        out: List[int] = []
        carry = self.const1
        for bit in word:
            out.append(self.xor(bit, carry))
            carry = self.and_(bit, carry)
        return out

    def adder(
        self, a: Sequence[int], b: Sequence[int], carry_in: Optional[int] = None
    ) -> List[int]:
        """Ripple-carry adder, returns sum word (wrapping, LSB first)."""
        carry = carry_in if carry_in is not None else self.const0
        out: List[int] = []
        for x, y in zip(a, b):
            out.append(self.xor(self.xor(x, y), carry))
            carry = self.or_(self.and_(x, y), self.and_(carry, self.xor(x, y)))
        return out

    def onehot_decode(self, word: Sequence[int]) -> List[int]:
        """Decode a binary word into ``2**len(word)`` one-hot lines."""
        lines = [self.const1]
        for bit in word:
            lines = [self.and_(line, self.not_(bit)) for line in lines] + [
                self.and_(line, bit) for line in lines
            ]
        return lines


def all_outputs_as_targets(net: Netlist) -> None:
    """Adopt every primary output as a verification target.

    Mirrors the paper's Section 4 setup: *"using each primary output as
    a target for lack of any more meaningful available targets."*
    """
    net.targets = list(net.outputs)
