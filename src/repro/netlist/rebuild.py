"""Netlist reconstruction with hash-consing and local simplification.

:func:`rebuild` re-derives a netlist from its target/output cones while

* applying a vertex *substitution map* (the mechanism by which the COM
  redundancy-removal engine merges semantically-equivalent vertices —
  Section 3.1 of the paper),
* structurally hashing gates so isomorphic gates are shared,
* constant-folding and applying unit/idempotence laws, and
* dropping everything outside the cone of influence of the roots
  (the cone-of-influence reduction, which "preserves trace-equivalence
  of all vertices in the cone").

All transformations in :mod:`repro.transform` funnel through this
function, so their outputs are uniformly compacted.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .netlist import Netlist
from .types import Gate, GateType

_COMMUTATIVE = frozenset(
    {GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
     GateType.XOR, GateType.XNOR}
)


class _Rebuilder:
    def __init__(self, src: Netlist, subst: Dict[int, int], name: str) -> None:
        self.src = src
        self.subst = subst
        self.dst = Netlist(name)
        self.new_of_old: Dict[int, int] = {}
        self.hash_cons: Dict[Tuple, int] = {}
        self.const0 = self.dst.const0()
        self.const1 = self.dst.add_gate(GateType.NOT, (self.const0,))
        self.hash_cons[(GateType.CONST0, ())] = self.const0
        self.hash_cons[(GateType.NOT, (self.const0,))] = self.const1

    def resolve(self, vid: int) -> int:
        seen = set()
        while vid in self.subst and self.subst[vid] != vid:
            if vid in seen:
                break
            seen.add(vid)
            vid = self.subst[vid]
        return vid

    def map_vertex(self, old: int) -> int:
        """Translate ``old`` (a source vertex) into the new netlist."""
        stack = [old]
        while stack:
            vid = stack[-1]
            rep = self.resolve(vid)
            if vid in self.new_of_old:
                stack.pop()
                continue
            if rep != vid:
                if rep in self.new_of_old:
                    self.new_of_old[vid] = self.new_of_old[rep]
                    stack.pop()
                else:
                    stack.append(rep)
                continue
            gate = self.src.gate(vid)
            if gate.is_state:
                # Allocate the state element up front so feedback loops
                # terminate, then queue fanins; edges are patched later.
                placeholder = Gate(gate.type, (self.const0, self.const0),
                                   self._fresh_name(gate.name))
                self.new_of_old[vid] = self.dst.add(placeholder)
                stack.pop()
                continue
            missing = [f for f in map(self.resolve, gate.fanins)
                       if f not in self.new_of_old]
            if missing:
                stack.extend(missing)
                continue
            fanins = tuple(self.new_of_old[self.resolve(f)]
                           for f in gate.fanins)
            self.new_of_old[vid] = self._make(gate, fanins)
            stack.pop()
        return self.new_of_old[old]

    def _fresh_name(self, name: Optional[str]) -> Optional[str]:
        if name is None:
            return None
        try:
            self.dst.by_name(name)
        except KeyError:
            return name
        return None

    # Inverted gate types normalize to NOT of the base type.
    _INVERTED = {
        GateType.NAND: GateType.AND,
        GateType.NOR: GateType.OR,
        GateType.XNOR: GateType.XOR,
    }

    def _make(self, gate: Gate, fanins: Tuple[int, ...]) -> int:
        base = self._INVERTED.get(gate.type)
        if base is not None:
            inner = self._cons(base, fanins, gate.name)
            return self._negate(inner)
        if gate.type is GateType.INPUT:
            # Inputs are nondeterministic sources: never hash-consed.
            return self.dst.add(Gate(GateType.INPUT, (),
                                     self._fresh_name(gate.name)))
        vid = self._simplify(gate.type, fanins)
        if vid is not None:
            return vid
        key_fanins = tuple(sorted(fanins)) if gate.type in _COMMUTATIVE \
            else fanins
        key = (gate.type, key_fanins)
        if key in self.hash_cons:
            return self.hash_cons[key]
        vid = self.dst.add(Gate(gate.type, fanins,
                                self._fresh_name(gate.name)))
        self.hash_cons[key] = vid
        return vid

    # Local simplification: returns an existing vertex or None.
    def _simplify(self, gtype: GateType, fanins: Tuple[int, ...]):
        c0, c1 = self.const0, self.const1
        if gtype is GateType.BUF:
            return fanins[0]
        if gtype is GateType.NOT:
            (a,) = fanins
            if a == c0:
                return c1
            if a == c1:
                return c0
            inner = self.dst.gate(a)
            if inner.type is GateType.NOT:
                return inner.fanins[0]
            return None
        if gtype is GateType.AND:
            reduced = self._reduce(fanins, absorbing=c0, identity=c1)
            if isinstance(reduced, int):
                return reduced
            if len(reduced) == 1:
                return reduced[0]
            if len(reduced) != len(fanins):
                return self._cons(GateType.AND, tuple(reduced))
            return None
        if gtype is GateType.OR:
            reduced = self._reduce(fanins, absorbing=c1, identity=c0)
            if isinstance(reduced, int):
                return reduced
            if len(reduced) == 1:
                return reduced[0]
            if len(reduced) != len(fanins):
                return self._cons(GateType.OR, tuple(reduced))
            return None
        if gtype is GateType.XOR:
            if len(fanins) != 2:
                return None
            a, b = fanins
            if a == b:
                return c0
            if a == c0:
                return b
            if b == c0:
                return a
            if a == c1:
                return self._negate(b)
            if b == c1:
                return self._negate(a)
            return None
        if gtype is GateType.MUX:
            sel, then, else_ = fanins
            if sel == c1:
                return then
            if sel == c0:
                return else_
            if then == else_:
                return then
            if then == c1 and else_ == c0:
                return sel
            if then == c0 and else_ == c1:
                return self._negate(sel)
            return None
        return None

    def _reduce(self, fanins, absorbing, identity):
        if absorbing in fanins:
            return absorbing
        out: List[int] = []
        for f in fanins:
            if f != identity and f not in out:
                out.append(f)
        if not out:
            return identity
        return out

    def _negate(self, vid: int) -> int:
        return self._cons(GateType.NOT, (vid,))

    def _cons(self, gtype: GateType, fanins: Tuple[int, ...],
              name: Optional[str] = None) -> int:
        return self._make(Gate(gtype, fanins, name), fanins)

    def patch_state(self) -> None:
        """Second phase: wire the sequential edges of copied state gates."""
        for old, new in list(self.new_of_old.items()):
            gate = self.src.gate(old)
            if not gate.is_state or self.resolve(old) != old:
                continue
            fanins = tuple(self.map_vertex(self.resolve(f))
                           for f in gate.fanins)
            self.dst.set_fanins(new, fanins)


def rebuild(
    net: Netlist,
    roots: Optional[Iterable[int]] = None,
    substitution: Optional[Dict[int, int]] = None,
    name: Optional[str] = None,
) -> Tuple[Netlist, Dict[int, int]]:
    """Rebuild ``net`` from ``roots``, applying ``substitution``.

    Returns ``(new_netlist, mapping)`` where ``mapping`` translates old
    vertex ids (of every vertex in the retained cone) to new ids.  The
    roots default to the union of targets and outputs; targets/outputs
    are re-registered on the new netlist in order.
    """
    if roots is None:
        roots = list(dict.fromkeys(list(net.targets) + list(net.outputs)))
    else:
        roots = list(roots)
    rb = _Rebuilder(net, substitution or {}, name or net.name)
    for root in roots:
        rb.map_vertex(root)
    # Patching may pull more state into the cone; iterate to fixpoint.
    prev = -1
    while prev != len(rb.new_of_old):
        prev = len(rb.new_of_old)
        rb.patch_state()
    out = rb.dst
    # Substituted vertices map to wherever their representative went.
    for old in (substitution or {}):
        rep = rb.resolve(old)
        if rep in rb.new_of_old:
            rb.new_of_old.setdefault(old, rb.new_of_old[rep])
    for t in net.targets:
        if t in rb.new_of_old:
            out.add_target(rb.new_of_old[t])
    for o in net.outputs:
        if o in rb.new_of_old:
            out.add_output(rb.new_of_old[o])
    return out, dict(rb.new_of_old)
