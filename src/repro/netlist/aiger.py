"""AIGER (ASCII ``aag``) reader and writer.

AIGER is the standard interchange format of the hardware model-checking
community (HWMCC); supporting it makes the library's engines applicable
to real benchmark files.  The ASCII variant is implemented::

    aag M I L O A
    <I input literals>
    <L latch lines:  lit next [init]>
    <O output literals>
    <A and lines:    lhs rhs0 rhs1>
    [i<k> name / l<k> name / o<k> name]
    [c comment...]

Literals follow AIGER conventions (variable ``v`` has literals ``2v``
and ``2v+1``; literal 0/1 are the constants), matching the internal
:class:`~repro.netlist.aig.AIG` encoding directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .aig import AIG, FALSE, aig_node
from .types import NetlistError


def parse_aiger(text: str, name: str = "aiger") -> AIG:
    """Parse ASCII AIGER text into an :class:`AIG`."""
    lines = [ln.rstrip("\n") for ln in text.splitlines()]
    if not lines or not lines[0].startswith("aag"):
        raise NetlistError("not an ASCII AIGER file (missing 'aag' header)")
    header = lines[0].split()
    if len(header) != 6:
        raise NetlistError(f"malformed AIGER header: {lines[0]!r}")
    try:
        m, i, l, o, a = (int(x) for x in header[1:])
    except ValueError as exc:
        raise NetlistError(f"malformed AIGER header: {lines[0]!r}") from exc
    body = lines[1:]
    if len(body) < i + l + o + a:
        raise NetlistError("truncated AIGER body")

    input_lits = [int(body[k].split()[0]) for k in range(i)]
    latch_lines = [body[i + k].split() for k in range(l)]
    output_lits = [int(body[i + l + k].split()[0]) for k in range(o)]
    and_lines = [body[i + l + o + k].split() for k in range(a)]
    symbols = body[i + l + o + a:]

    aig = AIG(name)
    lit_map: Dict[int, int] = {0: FALSE}

    def map_lit(aiger_lit: int) -> int:
        base = lit_map[aiger_lit & ~1]
        return base ^ (aiger_lit & 1)

    for lit in input_lits:
        if lit & 1 or lit == 0:
            raise NetlistError(f"invalid input literal {lit}")
        lit_map[lit] = aig.add_input()
    latch_next: List[Tuple[int, int]] = []
    for parts in latch_lines:
        lit = int(parts[0])
        nxt = int(parts[1])
        init = int(parts[2]) if len(parts) > 2 else 0
        if init not in (0, 1):
            raise NetlistError(
                f"unsupported latch initial value {init} (only 0/1)")
        if lit & 1 or lit == 0:
            raise NetlistError(f"invalid latch literal {lit}")
        lit_map[lit] = aig.add_latch(init)
        latch_next.append((lit, nxt))

    # AND definitions may appear in any order in aag; resolve by
    # repeated passes (the dependency graph is acyclic by construction).
    pending = [(int(p[0]), int(p[1]), int(p[2])) for p in and_lines]
    for lhs, _, _ in pending:
        if lhs & 1 or lhs == 0:
            raise NetlistError(f"invalid AND lhs literal {lhs}")
    while pending:
        progressed = False
        deferred = []
        for lhs, rhs0, rhs1 in pending:
            if (rhs0 & ~1) in lit_map and (rhs1 & ~1) in lit_map:
                lit_map[lhs] = aig.add_and(map_lit(rhs0), map_lit(rhs1))
                progressed = True
            else:
                deferred.append((lhs, rhs0, rhs1))
        if not progressed:
            missing = sorted({r & ~1 for _, r0, r1 in deferred
                              for r in (r0, r1)} - set(lit_map))
            raise NetlistError(f"undefined AIGER literals: {missing}")
        pending = deferred

    for lit, nxt in latch_next:
        if (nxt & ~1) not in lit_map:
            raise NetlistError(f"latch next references unknown var {nxt}")
        aig.set_next(lit_map[lit], map_lit(nxt))
    for lit in output_lits:
        if (lit & ~1) not in lit_map:
            raise NetlistError(f"output references unknown var {lit}")
        aig.add_output(map_lit(lit))

    # Symbol table.
    ordered_inputs = [lit_map[lit] for lit in input_lits]
    ordered_latches = [lit_map[lit] for lit in (p[0] for p in latch_next)]
    for line in symbols:
        if not line or line[0] == "c":
            break
        kind, _, rest = line.partition(" ")
        if not rest or kind[0] not in "ilo" or not kind[1:].isdigit():
            continue
        idx = int(kind[1:])
        if kind[0] == "i" and idx < len(ordered_inputs):
            aig.names[aig_node(ordered_inputs[idx])] = rest
        elif kind[0] == "l" and idx < len(ordered_latches):
            aig.names[aig_node(ordered_latches[idx])] = rest
        elif kind[0] == "o" and idx < len(aig.outputs):
            aig.names.setdefault(aig_node(aig.outputs[idx]), rest)
    return aig


def write_aiger(aig: AIG, comment: Optional[str] = None) -> str:
    """Serialize an :class:`AIG` to ASCII AIGER text.

    Nodes are renumbered into AIGER's canonical order (inputs, then
    latches, then ANDs) so the output is maximally portable.
    """
    var_of: Dict[int, int] = {0: 0}
    next_var = 1
    for node in aig.inputs:
        var_of[node] = next_var
        next_var += 1
    for node in aig.latches:
        var_of[node] = next_var
        next_var += 1
    and_nodes = [n for n in range(1, len(aig)) if aig.kind(n) == "and"]
    for node in and_nodes:
        var_of[node] = next_var
        next_var += 1

    def out_lit(lit: int) -> int:
        return (var_of[aig_node(lit)] << 1) | (lit & 1)

    m = next_var - 1
    lines = [f"aag {m} {len(aig.inputs)} {len(aig.latches)} "
             f"{len(aig.outputs)} {len(and_nodes)}"]
    for node in aig.inputs:
        lines.append(str(var_of[node] << 1))
    for node in aig.latches:
        init = aig.init_of(node)
        suffix = f" {init}" if init else ""
        lines.append(f"{var_of[node] << 1} {out_lit(aig.next_of(node))}"
                     f"{suffix}")
    for lit in aig.outputs:
        lines.append(str(out_lit(lit)))
    for node in and_nodes:
        a, b = aig.fanins(node)
        la, lb = out_lit(a), out_lit(b)
        if la < lb:
            la, lb = lb, la
        lines.append(f"{var_of[node] << 1} {la} {lb}")
    for idx, node in enumerate(aig.inputs):
        if node in aig.names:
            lines.append(f"i{idx} {aig.names[node]}")
    for idx, node in enumerate(aig.latches):
        if node in aig.names:
            lines.append(f"l{idx} {aig.names[node]}")
    for idx, lit in enumerate(aig.outputs):
        if aig_node(lit) in aig.names:
            lines.append(f"o{idx} {aig.names[aig_node(lit)]}")
    if comment:
        lines.append("c")
        lines.append(comment)
    return "\n".join(lines) + "\n"
