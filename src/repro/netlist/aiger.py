"""AIGER reader (ASCII ``aag`` and binary ``aig``) and writer.

AIGER is the standard interchange format of the hardware model-checking
community (HWMCC); supporting it makes the library's engines applicable
to real benchmark files.  Both variants are implemented:

* **ASCII** (``aag``) — every AND is a ``lhs rhs0 rhs1`` text line::

      aag M I L O A [B]
      <I input literals>
      <L latch lines:  lit next [init]>
      <O output literals>
      <B bad-state literals>          (AIGER 1.9)
      <A and lines:    lhs rhs0 rhs1>
      [i<k>/l<k>/o<k>/b<k> name]
      [c comment...]

* **Binary** (``aig``) — the distribution format of the HWMCC sets.
  Variables are densely renumbered (inputs ``1..I``, latches
  ``I+1..I+L``, ANDs after), so input lines vanish and latch lines
  drop the latch literal; the A AND definitions follow the ASCII
  prologue as two delta-coded varints each (LEB128-style, 7 data bits
  per byte, high bit = continuation)::

      lhs  = 2 * (I + L + k + 1)      (k-th AND, implicit)
      rhs0 = lhs  - delta0
      rhs1 = rhs0 - delta1

AIGER 1.9 ``B`` (bad-state) counts are accepted in both variants and
become the verification targets (:attr:`repro.netlist.aig.AIG.bad`);
the 1.9 invariant-constraint/justice/fairness sections (``C``/``J``/
``F``) are rejected explicitly when non-zero.  Literals follow AIGER
conventions (variable ``v`` has literals ``2v`` and ``2v+1``; literal
0/1 are the constants), matching the internal
:class:`~repro.netlist.aig.AIG` encoding directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .aig import AIG, FALSE, aig_node
from .types import NetlistError

#: Index of each optional AIGER 1.9 header field after M I L O A.
_EXTRA_FIELDS = ("B", "C", "J", "F")


def parse_aiger(data: Union[str, bytes], name: str = "aiger") -> AIG:
    """Parse AIGER (ASCII ``aag`` or binary ``aig``) into an :class:`AIG`.

    Accepts text or raw bytes; the header decides the variant, so
    HWMCC-style binary files load unmodified (pass bytes — binary
    files are not valid UTF-8 in general).
    """
    if isinstance(data, str):
        if data.startswith("aig ") or data.startswith("aig\n"):
            # Binary payload that travelled through a text API.
            return _parse_binary(data.encode("latin-1"), name)
        return _parse_ascii(data, name)
    blob = bytes(data)
    if blob.startswith(b"aig ") or blob.startswith(b"aig\n"):
        return _parse_binary(blob, name)
    try:
        return _parse_ascii(blob.decode("utf-8"), name)
    except UnicodeDecodeError as exc:
        raise NetlistError(
            "not an AIGER file (expected an 'aag' (ASCII) or 'aig' "
            "(binary) header)") from exc


def _parse_header(line: str) -> Tuple[int, ...]:
    """Parse ``aag/aig M I L O A [B [C [J [F]]]]`` into 9 counts.

    Missing 1.9 fields default to 0; non-zero C/J/F (constraints,
    justice, fairness) are rejected — they change the verification
    semantics and are not supported.
    """
    header = line.split()
    if not 6 <= len(header) <= 10:
        raise NetlistError(f"malformed AIGER header: {line!r}")
    try:
        counts = [int(x) for x in header[1:]]
    except ValueError as exc:
        raise NetlistError(f"malformed AIGER header: {line!r}") from exc
    if any(c < 0 for c in counts):
        raise NetlistError(f"malformed AIGER header: {line!r}")
    counts += [0] * (9 - len(counts))
    for field, count in zip(_EXTRA_FIELDS[1:], counts[6:]):
        if count:
            raise NetlistError(
                f"AIGER 1.9 '{field}' section is not supported "
                f"(header {line!r})")
    return tuple(counts)


def _parse_ascii(text: str, name: str) -> AIG:
    """Parse ASCII AIGER text into an :class:`AIG`."""
    lines = [ln.rstrip("\n") for ln in text.splitlines()]
    if not lines or not lines[0].startswith("aag"):
        raise NetlistError(
            "not an AIGER file (expected an 'aag' (ASCII) or 'aig' "
            "(binary) header)")
    m, i, l, o, a, b, _, _, _ = _parse_header(lines[0])
    body = lines[1:]
    if len(body) < i + l + o + b + a:
        raise NetlistError("truncated AIGER body")

    input_lits = [int(body[k].split()[0]) for k in range(i)]
    latch_lines = [body[i + k].split() for k in range(l)]
    output_lits = [int(body[i + l + k].split()[0]) for k in range(o)]
    bad_lits = [int(body[i + l + o + k].split()[0]) for k in range(b)]
    and_lines = [body[i + l + o + b + k].split() for k in range(a)]
    symbols = body[i + l + o + b + a:]

    aig = AIG(name)
    lit_map: Dict[int, int] = {0: FALSE}

    def map_lit(aiger_lit: int) -> int:
        base = lit_map[aiger_lit & ~1]
        return base ^ (aiger_lit & 1)

    for lit in input_lits:
        if lit & 1 or lit == 0:
            raise NetlistError(f"invalid input literal {lit}")
        lit_map[lit] = aig.add_input()
    latch_next: List[Tuple[int, int]] = []
    for parts in latch_lines:
        lit = int(parts[0])
        nxt = int(parts[1])
        init = int(parts[2]) if len(parts) > 2 else 0
        if init not in (0, 1):
            raise NetlistError(
                f"unsupported latch initial value {init} (only 0/1)")
        if lit & 1 or lit == 0:
            raise NetlistError(f"invalid latch literal {lit}")
        lit_map[lit] = aig.add_latch(init)
        latch_next.append((lit, nxt))

    # AND definitions may appear in any order in aag; resolve by
    # repeated passes (the dependency graph is acyclic by construction).
    pending = [(int(p[0]), int(p[1]), int(p[2])) for p in and_lines]
    for lhs, _, _ in pending:
        if lhs & 1 or lhs == 0:
            raise NetlistError(f"invalid AND lhs literal {lhs}")
    while pending:
        progressed = False
        deferred = []
        for lhs, rhs0, rhs1 in pending:
            if (rhs0 & ~1) in lit_map and (rhs1 & ~1) in lit_map:
                lit_map[lhs] = aig.add_and(map_lit(rhs0), map_lit(rhs1))
                progressed = True
            else:
                deferred.append((lhs, rhs0, rhs1))
        if not progressed:
            missing = sorted({r & ~1 for _, r0, r1 in deferred
                              for r in (r0, r1)} - set(lit_map))
            raise NetlistError(f"undefined AIGER literals: {missing}")
        pending = deferred
    for lit, nxt in latch_next:
        if (nxt & ~1) not in lit_map:
            raise NetlistError(f"latch next references unknown var {nxt}")
        aig.set_next(lit_map[lit], map_lit(nxt))
    for lit in output_lits:
        if (lit & ~1) not in lit_map:
            raise NetlistError(f"output references unknown var {lit}")
        aig.add_output(map_lit(lit))
    for lit in bad_lits:
        if (lit & ~1) not in lit_map:
            raise NetlistError(
                f"bad-state property references unknown var {lit}")
        aig.add_bad(map_lit(lit))

    ordered_inputs = [lit_map[lit] for lit in input_lits]
    ordered_latches = [lit_map[lit] for lit in (p[0] for p in latch_next)]
    _apply_symbols(aig, symbols, ordered_inputs, ordered_latches)
    return aig


def _parse_binary(data: bytes, name: str) -> AIG:
    """Parse binary AIGER bytes into an :class:`AIG`."""
    end = data.find(b"\n")
    if end < 0:
        raise NetlistError("truncated binary AIGER header")
    m, i, l, o, a, b, _, _, _ = \
        _parse_header(data[:end].decode("ascii", "replace"))
    if m != i + l + a:
        raise NetlistError(
            f"malformed binary AIGER header: M ({m}) must equal "
            f"I + L + A ({i + l + a})")
    pos = end + 1

    def next_line() -> str:
        nonlocal pos
        nl = data.find(b"\n", pos)
        if nl < 0:
            raise NetlistError("truncated AIGER body")
        line = data[pos:nl].decode("ascii", "replace")
        pos = nl + 1
        return line

    aig = AIG(name)
    # Binary AIGER numbers variables densely: inputs 1..I, latches
    # I+1..I+L, ANDs above; inputs are implicit (no lines at all) and
    # latch lines drop the latch literal.
    lit_of: List[int] = [FALSE] * (m + 1)
    for var in range(1, i + 1):
        lit_of[var] = aig.add_input()
    latch_next: List[int] = []
    for k in range(l):
        parts = next_line().split()
        if not parts:
            raise NetlistError("malformed binary AIGER latch line")
        init = int(parts[1]) if len(parts) > 1 else 0
        if init not in (0, 1):
            raise NetlistError(
                f"unsupported latch initial value {init} (only 0/1)")
        lit_of[i + k + 1] = aig.add_latch(init)
        latch_next.append(int(parts[0]))
    output_lits = [int(next_line()) for _ in range(o)]
    bad_lits = [int(next_line()) for _ in range(b)]

    def read_delta() -> int:
        nonlocal pos
        value = 0
        shift = 0
        while True:
            if pos >= len(data):
                raise NetlistError(
                    "truncated binary AIGER AND section")
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def map_lit(aiger_lit: int) -> int:
        var = aiger_lit >> 1
        if var > m:
            raise NetlistError(
                f"literal {aiger_lit} exceeds maximum variable {m}")
        return lit_of[var] ^ (aiger_lit & 1)

    for k in range(a):
        lhs = 2 * (i + l + k + 1)
        delta0 = read_delta()
        delta1 = read_delta()
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        if delta0 == 0 or rhs1 < 0:
            raise NetlistError(
                f"invalid delta encoding for AND {lhs}: "
                f"rhs0={rhs0} rhs1={rhs1}")
        lit_of[lhs >> 1] = aig.add_and(map_lit(rhs0), map_lit(rhs1))
    # Latch next-state literals may reference AND variables, so they
    # resolve only after the AND section.
    for k, nxt in enumerate(latch_next):
        aig.set_next(lit_of[i + k + 1], map_lit(nxt))
    for lit in output_lits:
        aig.add_output(map_lit(lit))
    for lit in bad_lits:
        aig.add_bad(map_lit(lit))

    symbols = data[pos:].decode("ascii", "replace").splitlines()
    ordered_inputs = [lit_of[var] for var in range(1, i + 1)]
    ordered_latches = [lit_of[i + k + 1] for k in range(l)]
    _apply_symbols(aig, symbols, ordered_inputs, ordered_latches)
    return aig


def _apply_symbols(aig: AIG, symbols: List[str],
                   ordered_inputs: List[int],
                   ordered_latches: List[int]) -> None:
    """Apply ``i<k>/l<k>/o<k>/b<k> name`` symbol lines to ``aig``."""
    for line in symbols:
        if not line or line[0] == "c":
            break
        kind, _, rest = line.partition(" ")
        if not rest or kind[0] not in "ilob" or not kind[1:].isdigit():
            continue
        idx = int(kind[1:])
        if kind[0] == "i" and idx < len(ordered_inputs):
            aig.names[aig_node(ordered_inputs[idx])] = rest
        elif kind[0] == "l" and idx < len(ordered_latches):
            aig.names[aig_node(ordered_latches[idx])] = rest
        elif kind[0] == "o" and idx < len(aig.outputs):
            aig.names.setdefault(aig_node(aig.outputs[idx]), rest)
        elif kind[0] == "b" and idx < len(aig.bad):
            aig.names.setdefault(aig_node(aig.bad[idx]), rest)


def write_aiger(aig: AIG, comment: Optional[str] = None) -> str:
    """Serialize an :class:`AIG` to ASCII AIGER text.

    Nodes are renumbered into AIGER's canonical order (inputs, then
    latches, then ANDs) so the output is maximally portable.  Bad-state
    properties, when present, are written as an AIGER 1.9 ``B`` section
    (files without them keep the plain five-count header).
    """
    var_of: Dict[int, int] = {0: 0}
    next_var = 1
    for node in aig.inputs:
        var_of[node] = next_var
        next_var += 1
    for node in aig.latches:
        var_of[node] = next_var
        next_var += 1
    and_nodes = [n for n in range(1, len(aig)) if aig.kind(n) == "and"]
    for node in and_nodes:
        var_of[node] = next_var
        next_var += 1

    def out_lit(lit: int) -> int:
        return (var_of[aig_node(lit)] << 1) | (lit & 1)

    m = next_var - 1
    header = (f"aag {m} {len(aig.inputs)} {len(aig.latches)} "
              f"{len(aig.outputs)} {len(and_nodes)}")
    if aig.bad:
        header += f" {len(aig.bad)}"
    lines = [header]
    for node in aig.inputs:
        lines.append(str(var_of[node] << 1))
    for node in aig.latches:
        init = aig.init_of(node)
        suffix = f" {init}" if init else ""
        lines.append(f"{var_of[node] << 1} {out_lit(aig.next_of(node))}"
                     f"{suffix}")
    for lit in aig.outputs:
        lines.append(str(out_lit(lit)))
    for lit in aig.bad:
        lines.append(str(out_lit(lit)))
    for node in and_nodes:
        a, b = aig.fanins(node)
        la, lb = out_lit(a), out_lit(b)
        if la < lb:
            la, lb = lb, la
        lines.append(f"{var_of[node] << 1} {la} {lb}")
    for idx, node in enumerate(aig.inputs):
        if node in aig.names:
            lines.append(f"i{idx} {aig.names[node]}")
    for idx, node in enumerate(aig.latches):
        if node in aig.names:
            lines.append(f"l{idx} {aig.names[node]}")
    for idx, lit in enumerate(aig.outputs):
        if aig_node(lit) in aig.names:
            lines.append(f"o{idx} {aig.names[aig_node(lit)]}")
    for idx, lit in enumerate(aig.bad):
        if aig_node(lit) in aig.names:
            lines.append(f"b{idx} {aig.names[aig_node(lit)]}")
    if comment:
        lines.append("c")
        lines.append(comment)
    return "\n".join(lines) + "\n"
