"""Core vertex/gate types for the netlist model (Definition 1 of the paper).

A netlist is a directed graph whose vertices are typed gates.  The gate
types here follow Definition 1: constants, primary inputs
(nondeterministic bits), registers, level-sensitive latches (needed for
phase abstraction, Section 3.3), and combinational gates with various
functions.
"""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass
from typing import Optional, Tuple

# Gates are by far the highest-population objects in the process (one
# per vertex per netlist, duplicated across transform pipelines), so
# they carry __slots__ where the dataclass machinery supports it
# (slots=True needs 3.10; on 3.9 they quietly stay dict-backed).
_DATACLASS_KW = {"slots": True} if sys.version_info >= (3, 10) else {}


class NetlistError(Exception):
    """Raised for structural violations (bad fanin counts, cycles, ...)."""


class GateType(enum.Enum):
    """Semantic gate types, mapping ``G: V -> types`` of Definition 1."""

    CONST0 = "const0"
    INPUT = "input"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"  # fanins (sel, then, else): sel ? then : else
    REGISTER = "register"  # fanins (next, init)
    LATCH = "latch"  # fanins (data, clock); transparent while clock == 1


# Number of fanins each gate type requires; ``None`` means "one or more".
_ARITY = {
    GateType.CONST0: 0,
    GateType.INPUT: 0,
    GateType.BUF: 1,
    GateType.NOT: 1,
    GateType.AND: None,
    GateType.OR: None,
    GateType.NAND: None,
    GateType.NOR: None,
    GateType.XOR: None,
    GateType.XNOR: None,
    GateType.MUX: 3,
    GateType.REGISTER: 2,
    GateType.LATCH: 2,
}

#: Gate types holding sequential state.
STATE_TYPES = frozenset({GateType.REGISTER, GateType.LATCH})

#: Purely combinational gate types (excludes sources and state).
COMBINATIONAL_TYPES = frozenset(
    {
        GateType.BUF,
        GateType.NOT,
        GateType.AND,
        GateType.OR,
        GateType.NAND,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
        GateType.MUX,
    }
)

#: Gate types with no fanins.
SOURCE_TYPES = frozenset({GateType.CONST0, GateType.INPUT})


@dataclass(frozen=True, **_DATACLASS_KW)
class Gate:
    """A single netlist vertex: its type, ordered fanins, optional name.

    ``fanins`` are vertex ids of the owning :class:`~repro.netlist.netlist.
    Netlist`.  For a ``REGISTER`` the fanins are ``(next, init)`` — the
    next-state function and the initial-value driver (which may itself be
    a primary input, giving a nondeterministic initial state as used in
    the paper's ``r1``/``r2`` example after Definition 3).  For a
    ``LATCH`` the fanins are ``(data, clock)``.
    """

    type: GateType
    fanins: Tuple[int, ...] = ()
    name: Optional[str] = None

    def __post_init__(self) -> None:
        arity = _ARITY[self.type]
        if arity is None:
            if len(self.fanins) < 1:
                raise NetlistError(
                    f"{self.type.value} gate requires at least one fanin"
                )
        elif len(self.fanins) != arity:
            raise NetlistError(
                f"{self.type.value} gate requires {arity} fanins, "
                f"got {len(self.fanins)}"
            )

    @property
    def is_state(self) -> bool:
        """True for registers and latches."""
        return self.type in STATE_TYPES

    @property
    def is_combinational(self) -> bool:
        """True for gates computing a combinational function of fanins."""
        return self.type in COMBINATIONAL_TYPES

    @property
    def is_source(self) -> bool:
        """True for fanin-free gates (constants and primary inputs)."""
        return self.type in SOURCE_TYPES

    def with_fanins(self, fanins: Tuple[int, ...]) -> "Gate":
        """Return a copy of this gate with different fanins."""
        return Gate(self.type, tuple(fanins), self.name)
