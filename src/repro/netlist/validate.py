"""Netlist well-formedness checking (linting).

:func:`validate` inspects a netlist for structural problems and
returns a list of :class:`Issue` records — errors (which make other
engines misbehave or raise) and warnings (legal but suspicious
constructs).  The CLI tools run it after loading files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .netlist import Netlist
from .traversal import topological_order
from .types import GateType, NetlistError

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Issue:
    """One finding: severity, an identifying code, and a message."""

    severity: str
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.severity}[{self.code}]: {self.message}"


def validate(net: Netlist) -> List[Issue]:
    """Check ``net``; returns issues sorted errors-first."""
    issues: List[Issue] = []

    # Combinational cycles break every traversal-based engine.
    try:
        topological_order(net)
    except NetlistError as exc:
        issues.append(Issue(ERROR, "comb-cycle", str(exc)))

    fanouts = net.fanout_map()
    observed = set(net.targets) | set(net.outputs)
    n_const = 0
    for vid, gate in net.gates():
        if gate.type is GateType.CONST0:
            n_const += 1
        if gate.type is GateType.REGISTER:
            nxt, init = gate.fanins
            if nxt == vid and init == vid:
                issues.append(Issue(
                    WARNING, "self-init",
                    f"register {vid} uses itself as initial value"))
        # Dangling logic: no fanout and not observed.  The shared
        # constant-1 (NOT of constant 0) scaffolding is exempt.
        is_const1 = (gate.type is GateType.NOT and
                     net.gate(gate.fanins[0]).type is GateType.CONST0)
        if not fanouts[vid] and vid not in observed \
                and gate.is_combinational and not is_const1:
            issues.append(Issue(
                WARNING, "dangling",
                f"gate {vid} ({gate.type.value}) drives nothing"))
    if n_const > 1:
        issues.append(Issue(
            WARNING, "multi-const",
            f"{n_const} constant-0 vertices (expected one shared)"))

    for t in net.targets:
        gate = net.gate(t)
        if gate.type is GateType.CONST0:
            issues.append(Issue(
                WARNING, "trivial-target",
                f"target {t} is constant 0 (trivially unreachable)"))

    # Latch clocks that are constants never (or always) sample.
    for vid in net.latches:
        clock = net.gate(vid).fanins[1]
        cgate = net.gate(clock)
        if cgate.type is GateType.CONST0:
            issues.append(Issue(
                WARNING, "dead-clock",
                f"latch {vid} has a constant-0 clock (never samples)"))

    # Duplicate targets are legal but inflate table counts.
    if len(set(net.targets)) != len(net.targets):
        issues.append(Issue(
            WARNING, "dup-targets",
            "duplicate entries in the target list"))

    issues.sort(key=lambda issue: (issue.severity != ERROR, issue.code))
    return issues


def assert_valid(net: Netlist) -> None:
    """Raise :class:`NetlistError` when ``net`` has any error issue."""
    errors = [i for i in validate(net) if i.severity == ERROR]
    if errors:
        raise NetlistError("; ".join(i.message for i in errors))
