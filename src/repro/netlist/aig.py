"""And-inverter graphs (AIGs) with complemented edges.

The COM engine the paper uses ([27], "Circuit-based Boolean
reasoning") operates on a two-input AND / inverter representation with
structural hashing and local two-level rewriting.  This module provides
that representation: an :class:`AIG` holds AND nodes, latches
(registers) and inputs; *literals* carry the inversion bit
(``2*node + complement``), so inverters are free and structurally
hashed away.  Conversions to and from the general gate netlist are
provided — the AIG is also the natural form for AIGER I/O
(:mod:`repro.netlist.aiger`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .netlist import Netlist
from .types import GateType, NetlistError

#: The constant-false literal (node 0 uncomplemented).
FALSE = 0
#: The constant-true literal (node 0 complemented).
TRUE = 1


def aig_not(lit: int) -> int:
    """Complement a literal."""
    return lit ^ 1

def aig_node(lit: int) -> int:
    """Node index of a literal."""
    return lit >> 1


def aig_complemented(lit: int) -> bool:
    """True iff the literal carries an inversion."""
    return bool(lit & 1)


class AIG:
    """An and-inverter graph with hash-consed AND nodes.

    Node 0 is the constant false; nodes are densely numbered.  Each
    node is one of ``const``, ``input``, ``latch`` or ``and``.  Latches
    carry a ``next`` literal and a binary initial value (AIGER
    semantics: initial values are constants; nondeterministic initial
    values must be modeled by the caller with an input feeding a mux,
    as AIGER does).
    """

    def __init__(self, name: str = "aig") -> None:
        self.name = name
        # Parallel arrays describing nodes; index 0 is the constant.
        self._kind: List[str] = ["const"]
        self._fanin0: List[int] = [0]
        self._fanin1: List[int] = [0]
        self._init: List[int] = [0]
        self._strash: Dict[Tuple[int, int], int] = {}
        self.inputs: List[int] = []
        self.latches: List[int] = []
        self.outputs: List[int] = []  # literals
        #: AIGER 1.9 bad-state properties (literals); when non-empty
        #: they — not the outputs — define the verification targets.
        self.bad: List[int] = []
        self.names: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: Optional[str] = None) -> int:
        """Add a primary input; returns its (positive) literal."""
        node = self._new_node("input")
        self.inputs.append(node)
        if name:
            self.names[node] = name
        return node << 1

    def add_latch(self, init: int = 0, name: Optional[str] = None) -> int:
        """Add a latch (register) with constant ``init``; returns its
        literal.  Wire its next-state with :meth:`set_next`."""
        if init not in (0, 1):
            raise NetlistError("AIG latch initial values are binary")
        node = self._new_node("latch")
        self._init[node] = init
        self.latches.append(node)
        if name:
            self.names[node] = name
        return node << 1

    def set_next(self, latch_lit: int, next_lit: int) -> None:
        """Set the next-state literal of a latch."""
        node = aig_node(latch_lit)
        if self._kind[node] != "latch":
            raise NetlistError(f"node {node} is not a latch")
        self._check_lit(next_lit)
        self._fanin0[node] = next_lit

    def add_and(self, a: int, b: int) -> int:
        """The literal of ``a AND b`` (hash-consed, locally simplified)."""
        self._check_lit(a)
        self._check_lit(b)
        if a > b:
            a, b = b, a
        if a == FALSE or b == FALSE or a == aig_not(b):
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE or a == b:
            return a if a != TRUE else b
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = self._new_node("and")
            self._fanin0[node] = a
            self._fanin1[node] = b
            self._strash[key] = node
        return node << 1

    def add_or(self, a: int, b: int) -> int:
        """The literal of ``a OR b`` (De Morgan over AND)."""
        return aig_not(self.add_and(aig_not(a), aig_not(b)))

    def add_xor(self, a: int, b: int) -> int:
        """The literal of ``a XOR b`` (three ANDs)."""
        return self.add_or(self.add_and(a, aig_not(b)),
                           self.add_and(aig_not(a), b))

    def add_mux(self, sel: int, then: int, else_: int) -> int:
        """The literal of ``sel ? then : else_``."""
        return self.add_or(self.add_and(sel, then),
                           self.add_and(aig_not(sel), else_))

    def add_output(self, lit: int, name: Optional[str] = None) -> None:
        """Register ``lit`` as a primary output."""
        self._check_lit(lit)
        self.outputs.append(lit)
        if name:
            self.names.setdefault(aig_node(lit), name)

    def add_bad(self, lit: int, name: Optional[str] = None) -> None:
        """Register ``lit`` as an AIGER 1.9 bad-state property."""
        self._check_lit(lit)
        self.bad.append(lit)
        if name:
            self.names.setdefault(aig_node(lit), name)

    def _new_node(self, kind: str) -> int:
        node = len(self._kind)
        self._kind.append(kind)
        self._fanin0.append(0)
        self._fanin1.append(0)
        self._init.append(0)
        return node

    def _check_lit(self, lit: int) -> None:
        if not 0 <= aig_node(lit) < len(self._kind):
            raise NetlistError(f"literal {lit} references unknown node")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._kind)

    def kind(self, node: int) -> str:
        """The node's kind: const/input/latch/and."""
        return self._kind[node]

    def fanins(self, node: int) -> Tuple[int, int]:
        """The two fanin literals of an AND node."""
        if self._kind[node] != "and":
            raise NetlistError(f"node {node} is not an AND")
        return self._fanin0[node], self._fanin1[node]

    def next_of(self, node: int) -> int:
        """The next-state literal of a latch node."""
        if self._kind[node] != "latch":
            raise NetlistError(f"node {node} is not a latch")
        return self._fanin0[node]

    def init_of(self, node: int) -> int:
        """The binary initial value of a latch node."""
        return self._init[node]

    def num_ands(self) -> int:
        """Number of AND nodes."""
        return sum(1 for k in self._kind if k == "and")

    def evaluate(self, inputs: Dict[int, int],
                 state: Optional[Dict[int, int]] = None
                 ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Evaluate one cycle: returns (node values, next state).

        ``inputs`` maps input nodes to 0/1; ``state`` maps latch nodes
        to 0/1 (default: initial values).
        """
        if state is None:
            state = {n: self._init[n] for n in self.latches}
        values: Dict[int, int] = {0: 0}
        for node in range(1, len(self._kind)):
            kind = self._kind[node]
            if kind == "input":
                values[node] = inputs.get(node, 0) & 1
            elif kind == "latch":
                values[node] = state.get(node, self._init[node]) & 1
            else:
                a, b = self._fanin0[node], self._fanin1[node]
                va = values[aig_node(a)] ^ (a & 1)
                vb = values[aig_node(b)] ^ (b & 1)
                values[node] = va & vb
        nxt = {}
        for node in self.latches:
            lit = self._fanin0[node]
            nxt[node] = values[aig_node(lit)] ^ (lit & 1)
        return values, nxt

    def lit_value(self, values: Dict[int, int], lit: int) -> int:
        """Resolve a literal against a node-value map."""
        return values[aig_node(lit)] ^ (lit & 1)


# ----------------------------------------------------------------------
# Conversions
# ----------------------------------------------------------------------
def netlist_to_aig(net: Netlist) -> Tuple[AIG, Dict[int, int]]:
    """Convert a gate netlist to an AIG.

    Returns ``(aig, literal_of_vertex)``.  Latch-free except for
    registers; level-sensitive latches are rejected (phase-abstract
    first).  Nondeterministic register initial values are modeled the
    AIGER way: the register initializes to 0 and a fresh input muxed at
    time 0 — here approximated by rejecting non-constant init cones
    that cannot be evaluated to a constant.
    """
    from .traversal import topological_order
    from ..sim.ternary import X, ternary_initial_state

    if net.latches:
        raise NetlistError("convert latches via phase abstraction first")
    aig = AIG(net.name)
    lit_of: Dict[int, int] = {}
    init_state = ternary_initial_state(net)
    # Registers first (feedback).
    for vid in net.registers:
        init = init_state.get(vid, X)
        if init is X:
            raise NetlistError(
                f"register {vid} has a nondeterministic initial value; "
                f"AIG conversion requires constant initial values")
        lit_of[vid] = aig.add_latch(init, net.gate(vid).name)
    for vid in topological_order(net):
        gate = net.gate(vid)
        if vid in lit_of:
            continue
        t = gate.type
        if t is GateType.CONST0:
            lit_of[vid] = FALSE
        elif t is GateType.INPUT:
            lit_of[vid] = aig.add_input(gate.name)
        elif t is GateType.BUF:
            lit_of[vid] = lit_of[gate.fanins[0]]
        elif t is GateType.NOT:
            lit_of[vid] = aig_not(lit_of[gate.fanins[0]])
        elif t in (GateType.AND, GateType.NAND):
            out = TRUE
            for f in gate.fanins:
                out = aig.add_and(out, lit_of[f])
            lit_of[vid] = aig_not(out) if t is GateType.NAND else out
        elif t in (GateType.OR, GateType.NOR):
            out = FALSE
            for f in gate.fanins:
                out = aig.add_or(out, lit_of[f])
            lit_of[vid] = aig_not(out) if t is GateType.NOR else out
        elif t in (GateType.XOR, GateType.XNOR):
            out = FALSE
            for f in gate.fanins:
                out = aig.add_xor(out, lit_of[f])
            lit_of[vid] = aig_not(out) if t is GateType.XNOR else out
        elif t is GateType.MUX:
            s, a, b = (lit_of[f] for f in gate.fanins)
            lit_of[vid] = aig.add_mux(s, a, b)
        else:  # pragma: no cover
            raise NetlistError(f"cannot convert gate type {t}")
    for vid in net.registers:
        aig.set_next(lit_of[vid], lit_of[net.gate(vid).fanins[0]])
    for out in net.outputs:
        aig.add_output(lit_of[out], net.gate(out).name)
    return aig, lit_of


def aig_to_netlist(aig: AIG) -> Tuple[Netlist, Dict[int, int]]:
    """Convert an AIG back to a gate netlist.

    Returns ``(netlist, vertex_of_node)``.  When the AIG carries
    AIGER 1.9 bad-state properties, those become the verification
    targets and the outputs stay plain outputs; otherwise the outputs
    double as targets (the Section 4 convention for pre-1.9 files,
    where the property is the output).
    """
    net = Netlist(aig.name)
    const0 = net.const0()
    const1 = net.add_gate(GateType.NOT, (const0,))
    vertex_of: Dict[int, int] = {0: const0}
    not_cache: Dict[int, int] = {const0: const1, const1: const0}

    def lit_vertex(lit: int) -> int:
        base = vertex_of[aig_node(lit)]
        if not aig_complemented(lit):
            return base
        if base not in not_cache:
            not_cache[base] = net.add_gate(GateType.NOT, (base,))
        return not_cache[base]

    for node in range(1, len(aig)):
        kind = aig.kind(node)
        if kind == "input":
            vertex_of[node] = net.add_gate(GateType.INPUT, (),
                                           aig.names.get(node))
        elif kind == "latch":
            init = const1 if aig.init_of(node) else const0
            vertex_of[node] = net.add_gate(
                GateType.REGISTER, (const0, init), aig.names.get(node))
        else:
            a, b = aig.fanins(node)
            vertex_of[node] = net.add_gate(
                GateType.AND, (lit_vertex(a), lit_vertex(b)))
    for node in aig.latches:
        gate = net.gate(vertex_of[node])
        net.set_fanins(vertex_of[node],
                       (lit_vertex(aig.next_of(node)), gate.fanins[1]))
    for lit in aig.outputs:
        vid = lit_vertex(lit)
        net.add_output(vid)
        if not aig.bad:
            net.add_target(vid)
    for lit in aig.bad:
        net.add_target(lit_vertex(lit))
    return net, vertex_of
