"""BLIF (Berkeley Logic Interchange Format) reader and writer.

Supports the combinational/sequential core of BLIF: ``.model``,
``.inputs``/``.outputs``, ``.names`` single-output cover tables and
``.latch`` (with initial values 0, 1, 2 = don't-care and 3 = unknown —
both of the latter map to a nondeterministic input-driven initial
value, which the netlist model supports natively).  Covers are
synthesized as OR-of-AND cubes; writing emits one ``.names`` per gate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .netlist import Netlist
from .types import Gate, GateType, NetlistError


def _tokenize(text: str) -> List[List[str]]:
    """Logical BLIF lines (backslash continuations joined, comments
    stripped), tokenized."""
    lines: List[List[str]] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        line = pending + line
        pending = ""
        if line.strip():
            lines.append(line.split())
    if pending.strip():
        lines.append(pending.split())
    return lines


def parse_blif(text: str, name: Optional[str] = None) -> Netlist:
    """Parse BLIF ``text`` into a netlist.

    Outputs are registered as both outputs and verification targets
    (the Section 4 convention).  Only single-model files are
    supported; ``.subckt`` hierarchies are not.
    """
    lines = _tokenize(text)
    model = name or "blif"
    inputs: List[str] = []
    outputs: List[str] = []
    latches: List[Tuple[str, str, int]] = []  # (output, input, init)
    covers: List[Tuple[List[str], str, List[Tuple[str, str]]]] = []

    i = 0
    while i < len(lines):
        tokens = lines[i]
        head = tokens[0]
        if head == ".model":
            if len(tokens) > 1 and name is None:
                model = tokens[1]
            i += 1
        elif head == ".inputs":
            inputs.extend(tokens[1:])
            i += 1
        elif head == ".outputs":
            outputs.extend(tokens[1:])
            i += 1
        elif head == ".latch":
            if len(tokens) < 3:
                raise NetlistError(f"malformed .latch: {' '.join(tokens)}")
            lin, lout = tokens[1], tokens[2]
            init = 3
            # Optional: [type control] [init]; the last token is the
            # init value when it is a digit.
            if tokens[-1].isdigit() and len(tokens) > 3:
                init = int(tokens[-1])
            if init not in (0, 1, 2, 3):
                raise NetlistError(f"invalid latch init {init}")
            latches.append((lout, lin, init))
            i += 1
        elif head == ".names":
            signals = tokens[1:]
            if not signals:
                raise NetlistError(".names requires at least an output")
            out = signals[-1]
            ins = signals[:-1]
            rows: List[Tuple[str, str]] = []
            i += 1
            while i < len(lines) and not lines[i][0].startswith("."):
                row = lines[i]
                if len(ins) == 0:
                    rows.append(("", row[0]))
                elif len(row) != 2:
                    raise NetlistError(
                        f"malformed cover row: {' '.join(row)}")
                else:
                    rows.append((row[0], row[1]))
                i += 1
            covers.append((ins, out, rows))
        elif head == ".end":
            i += 1
        else:
            raise NetlistError(f"unsupported BLIF construct {head!r}")

    net = Netlist(model)
    vid: Dict[str, int] = {}
    const0 = net.const0()
    const1 = net.add_gate(GateType.NOT, (const0,))
    for sig in inputs:
        vid[sig] = net.add_gate(GateType.INPUT, (), name=sig)
    for lout, _lin, init in latches:
        if init in (0, 1):
            init_vid = const1 if init else const0
        else:  # don't-care / unknown: nondeterministic initial value
            init_vid = net.add_gate(GateType.INPUT, (),
                                    name=f"__init_{lout}")
        vid[lout] = net.add_gate(GateType.REGISTER, (const0, init_vid),
                                 name=lout)

    def build_cover(ins: List[str], rows) -> int:
        if not ins:
            # Constant: output 1 iff some row outputs '1'.
            value = any(out_val == "1" for _, out_val in rows)
            return const1 if value else const0
        on_rows = [(cube, out_val) for cube, out_val in rows]
        polarity = {out_val for _, out_val in on_rows}
        if polarity - {"0", "1"}:
            raise NetlistError("cover outputs must be 0/1")
        if len(polarity) > 1:
            raise NetlistError(
                "cover mixes on-set and off-set rows")
        # BLIF covers list either the on-set or the off-set.
        target_is_on = "1" in polarity
        cubes = []
        for cube, out_val in on_rows:
            if len(cube) != len(ins):
                raise NetlistError(
                    f"cube width {len(cube)} != {len(ins)} inputs")
            literals = []
            for bit, sig in zip(cube, ins):
                if bit == "-":
                    continue
                lit = vid[sig]
                if bit == "0":
                    lit = net.add_gate(GateType.NOT, (lit,))
                elif bit != "1":
                    raise NetlistError(f"invalid cube character {bit!r}")
                literals.append(lit)
            if not literals:
                cubes.append(const1)
            elif len(literals) == 1:
                cubes.append(literals[0])
            else:
                cubes.append(net.add_gate(GateType.AND, tuple(literals)))
        if not cubes:
            fn = const0
        elif len(cubes) == 1:
            fn = cubes[0]
        else:
            fn = net.add_gate(GateType.OR, tuple(cubes))
        if not target_is_on:
            fn = net.add_gate(GateType.NOT, (fn,))
        return fn

    # Resolve covers in dependency order.
    pending = list(covers)
    while pending:
        progressed = False
        deferred = []
        for ins, out, rows in pending:
            if all(sig in vid for sig in ins):
                fn = build_cover(ins, rows)
                if out in vid:
                    raise NetlistError(f"signal {out!r} defined twice")
                # Name the signal: rename fresh anonymous gates in
                # place; aliased vertices (inputs, constants, shared
                # cones) get a named buffer instead.
                gate = net.gate(fn)
                if gate.name is None and gate.is_combinational:
                    try:
                        net.replace_gate(fn, Gate(gate.type, gate.fanins,
                                                  out))
                    except NetlistError:
                        fn = net.add_gate(GateType.BUF, (fn,))
                else:
                    try:
                        fn = net.add_gate(GateType.BUF, (fn,), name=out)
                    except NetlistError:
                        fn = net.add_gate(GateType.BUF, (fn,))
                vid[out] = fn
                progressed = True
            else:
                deferred.append((ins, out, rows))
        if not progressed:
            missing = sorted({s for ins, _, _ in deferred
                              for s in ins} - set(vid))
            raise NetlistError(f"undefined BLIF signals: {missing}")
        pending = deferred

    for lout, lin, _init in latches:
        if lin not in vid:
            raise NetlistError(f"latch input {lin!r} undefined")
        reg = vid[lout]
        net.set_fanins(reg, (vid[lin], net.gate(reg).fanins[1]))
    for sig in outputs:
        if sig not in vid:
            raise NetlistError(f"output {sig!r} undefined")
        net.add_output(vid[sig])
        net.add_target(vid[sig])
    return net


def write_blif(net: Netlist) -> str:
    """Serialize ``net`` to BLIF text.

    Requires a register-based netlist; nondeterministic initial values
    become init 2 (don't-care) with the init-driving cone dropped when
    it is a plain input, and are rejected otherwise.
    """

    def label(vid: int) -> str:
        gate = net.gate(vid)
        return gate.name if gate.name else f"n{vid}"

    if net.latches:
        raise NetlistError("BLIF writer requires a register-based netlist")
    lines = [f".model {net.name}"]
    input_names = [label(v) for v in net.inputs]
    if input_names:
        lines.append(".inputs " + " ".join(input_names))
    out_names = [label(v) for v in net.outputs]
    if out_names:
        lines.append(".outputs " + " ".join(out_names))
    body: List[str] = []
    for vid, gate in net.gates():
        t = gate.type
        if t in (GateType.INPUT,):
            continue
        if t is GateType.CONST0:
            body.append(f".names {label(vid)}")
            continue
        if t is GateType.REGISTER:
            nxt, init = gate.fanins
            igate = net.gate(init)
            if igate.type is GateType.CONST0:
                init_code = 0
            elif igate.type is GateType.NOT and net.gate(
                    igate.fanins[0]).type is GateType.CONST0:
                init_code = 1
            elif igate.type is GateType.INPUT:
                init_code = 2
            else:
                raise NetlistError(
                    f"register {vid} has a non-trivial initial-value "
                    f"cone; not expressible in BLIF")
            body.append(f".latch {label(nxt)} {label(vid)} {init_code}")
            continue
        ins = [label(f) for f in gate.fanins]
        header = f".names {' '.join(ins)} {label(vid)}"
        if t is GateType.BUF:
            rows = ["1 1"]
        elif t is GateType.NOT:
            rows = ["0 1"]
        elif t is GateType.AND:
            rows = ["1" * len(ins) + " 1"]
        elif t is GateType.NAND:
            rows = ["1" * len(ins) + " 0"]
        elif t is GateType.OR:
            rows = ["0" * len(ins) + " 0"]
        elif t is GateType.NOR:
            rows = ["0" * len(ins) + " 1"]
        elif t in (GateType.XOR, GateType.XNOR):
            rows = []
            for bits in range(1 << len(ins)):
                pattern = "".join("1" if (bits >> k) & 1 else "0"
                                  for k in range(len(ins)))
                parity = bin(bits).count("1") & 1
                value = parity if t is GateType.XOR else 1 - parity
                if value:
                    rows.append(f"{pattern} 1")
        elif t is GateType.MUX:
            rows = ["11- 1", "0-1 1"]
        else:  # pragma: no cover - exhaustive
            raise NetlistError(f"cannot write gate type {t}")
        body.append(header)
        body.extend(rows)
    lines.extend(body)
    lines.append(".end")
    return "\n".join(lines) + "\n"
