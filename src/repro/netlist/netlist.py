"""The mutable netlist container (Definition 1).

A :class:`Netlist` owns a set of integer-identified :class:`~repro.
netlist.types.Gate` vertices, a distinguished constant-zero vertex, a
list of verification *targets* (``AG !t`` properties) and a list of
primary outputs (kept for benchmark-format round-trips; by convention
the experiments of Section 4 use every primary output as a target).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .types import Gate, GateType, NetlistError


class Netlist:
    """A gate-level netlist with registers, latches and targets."""

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self._gates: Dict[int, Gate] = {}
        self._next_id = 0
        self._names: Dict[str, int] = {}
        self.targets: List[int] = []
        self.outputs: List[int] = []
        # The single shared constant-0 vertex, created lazily.
        self._const0: Optional[int] = None
        # Memoized structural signature; None until computed, reset by
        # every gate mutation (add / set_fanins / replace_gate).
        self._sig: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, gate: Gate) -> int:
        """Add ``gate`` and return its fresh vertex id.

        Fanins must already exist in this netlist.
        """
        for f in gate.fanins:
            if f not in self._gates:
                raise NetlistError(f"fanin {f} does not exist")
        vid = self._next_id
        self._next_id += 1
        self._gates[vid] = gate
        self._sig = None
        if gate.name is not None:
            if gate.name in self._names:
                raise NetlistError(f"duplicate gate name {gate.name!r}")
            self._names[gate.name] = vid
        return vid

    def add_gate(
        self,
        gtype: GateType,
        fanins: Iterable[int] = (),
        name: Optional[str] = None,
    ) -> int:
        """Convenience wrapper building a :class:`Gate` and adding it."""
        return self.add(Gate(gtype, tuple(fanins), name))

    def const0(self) -> int:
        """Return the shared constant-0 vertex, creating it on first use."""
        if self._const0 is None:
            self._const0 = self.add_gate(GateType.CONST0)
        return self._const0

    def set_fanins(self, vid: int, fanins: Tuple[int, ...]) -> None:
        """Redirect the fanins of vertex ``vid`` (used by transformations)."""
        for f in fanins:
            if f not in self._gates:
                raise NetlistError(f"fanin {f} does not exist")
        self._gates[vid] = self._gates[vid].with_fanins(fanins)
        self._sig = None

    def replace_gate(self, vid: int, gate: Gate) -> None:
        """Replace the gate at ``vid`` wholesale (type change allowed)."""
        for f in gate.fanins:
            if f not in self._gates:
                raise NetlistError(f"fanin {f} does not exist")
        old = self._gates[vid]
        if old.name is not None:
            del self._names[old.name]
        self._gates[vid] = gate
        self._sig = None
        if gate.name is not None:
            if gate.name in self._names and self._names[gate.name] != vid:
                raise NetlistError(f"duplicate gate name {gate.name!r}")
            self._names[gate.name] = vid

    def add_target(self, vid: int) -> None:
        """Mark vertex ``vid`` as a verification target (``AG !t``)."""
        if vid not in self._gates:
            raise NetlistError(f"target {vid} does not exist")
        self.targets.append(vid)

    def add_output(self, vid: int) -> None:
        """Mark vertex ``vid`` as a primary output."""
        if vid not in self._gates:
            raise NetlistError(f"output {vid} does not exist")
        self.outputs.append(vid)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __contains__(self, vid: int) -> bool:
        return vid in self._gates

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[int]:
        return iter(self._gates)

    def gate(self, vid: int) -> Gate:
        """Return the gate at vertex ``vid``."""
        return self._gates[vid]

    def gates(self) -> Iterator[Tuple[int, Gate]]:
        """Iterate over ``(vid, gate)`` pairs in insertion order."""
        return iter(self._gates.items())

    def by_name(self, name: str) -> int:
        """Look a vertex up by its name."""
        return self._names[name]

    def vertices_of_type(self, gtype: GateType) -> List[int]:
        """All vertex ids with the given gate type, in insertion order."""
        return [v for v, g in self._gates.items() if g.type is gtype]

    @property
    def inputs(self) -> List[int]:
        """All primary-input vertices."""
        return self.vertices_of_type(GateType.INPUT)

    @property
    def registers(self) -> List[int]:
        """All register vertices (``R`` in the paper)."""
        return self.vertices_of_type(GateType.REGISTER)

    @property
    def latches(self) -> List[int]:
        """All level-sensitive latch vertices."""
        return self.vertices_of_type(GateType.LATCH)

    @property
    def state_elements(self) -> List[int]:
        """Registers and latches together."""
        return [v for v, g in self._gates.items() if g.is_state]

    def num_registers(self) -> int:
        """``|R|`` — number of registers."""
        return sum(1 for _, g in self._gates.items() if g.type is GateType.REGISTER)

    def fanout_map(self) -> Dict[int, List[int]]:
        """Map each vertex to the list of vertices reading it (all edges)."""
        fanouts: Dict[int, List[int]] = {v: [] for v in self._gates}
        for vid, gate in self._gates.items():
            for f in gate.fanins:
                fanouts[f].append(vid)
        return fanouts

    def signature(self) -> str:
        """Hex digest of the gate structure, memoized.

        Covers exactly what a compiled frame template
        (:mod:`repro.sat.template`) depends on: vertex ids, gate types
        and fanin tuples, in insertion order.  Targets, outputs and
        names are deliberately *excluded* — frame encoding never reads
        them, and transformations reassign them freely (``strash``
        rebuilds target lists in place), so including them would only
        defeat cache sharing.  The digest is computed once and
        invalidated by every gate mutation; :meth:`copy` shares it.
        """
        if self._sig is None:
            h = hashlib.sha256()
            update = h.update
            for vid, gate in self._gates.items():
                update(f"{vid}:{gate.type.value}:"
                       f"{','.join(map(str, gate.fanins))};".encode())
            self._sig = h.hexdigest()
        return self._sig

    def stats(self) -> Dict[str, int]:
        """Summary counts used by reports and examples."""
        counts: Dict[str, int] = {}
        for _, gate in self._gates.items():
            counts[gate.type.value] = counts.get(gate.type.value, 0) + 1
        counts["vertices"] = len(self._gates)
        counts["targets"] = len(self.targets)
        return counts

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Deep-copy this netlist (gates are immutable, so ids are kept)."""
        other = Netlist(name or self.name)
        other._gates = dict(self._gates)
        other._next_id = self._next_id
        other._names = dict(self._names)
        other.targets = list(self.targets)
        other.outputs = list(self.outputs)
        other._const0 = self._const0
        other._sig = self._sig  # same gate structure, same signature
        return other

    def __repr__(self) -> str:
        return (
            f"<Netlist {self.name!r}: {len(self._gates)} vertices, "
            f"{len(self.inputs)} inputs, {self.num_registers()} registers, "
            f"{len(self.targets)} targets>"
        )
