"""Parameterized structural building blocks for synthetic workloads.

Each block deliberately instantiates one of the structural classes of
the CAV'02 diameter bound (CC / AC / MC / QC / GC), so the generated
designs exercise exactly the features the paper's experiments measure.
Blocks return the signals a target may observe.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..netlist import NetlistBuilder


def add_pipeline(b: NetlistBuilder, source: Sequence[int], depth: int,
                 prefix: str) -> List[int]:
    """AC block: a ``depth``-stage pipeline over the ``source`` word.

    Contributes ``depth * len(source)`` acyclic registers; retiming can
    absorb all of them into target lags.
    """
    word = list(source)
    for stage in range(depth):
        regs = b.registers(len(word), prefix=f"{prefix}_s{stage}_")
        b.connect_word(regs, word)
        word = regs
    return word


def add_redundant_pipeline(b: NetlistBuilder, source: Sequence[int],
                           depth: int, prefix: str) -> List[int]:
    """Two structurally distinct but equivalent pipelines, XNOR-merged.

    COM fodder: the duplicate halves merge, halving the AC count.
    """
    a = add_pipeline(b, source, depth, prefix + "a")
    c = add_pipeline(b, source, depth, prefix + "b")
    return [b.and_(x, b.xnor(x, y)) for x, y in zip(a, c)]


def add_constant_registers(b: NetlistBuilder, count: int,
                           prefix: str) -> List[int]:
    """CC block: self-holding registers stuck at their initial values."""
    out = []
    for k in range(count):
        init = b.const1 if k % 2 else b.const0
        r = b.register(None, init=init, name=f"{prefix}_c{k}")
        b.connect(r, r)
        out.append(r)
    return out


def add_memory(b: NetlistBuilder, rows: int, width: int, prefix: str,
               data: Optional[Sequence[int]] = None) -> List[int]:
    """MC block: a ``rows x width`` one-row-per-cycle memory.

    Rows are selected by a one-hot decode of fresh address inputs, so
    the structural analysis can prove the row selects mutually
    exclusive and cluster the cells into a single memory component.
    """
    addr_bits = max(1, (rows - 1).bit_length())
    addr = b.inputs(addr_bits, prefix=f"{prefix}_a")
    we = b.input(f"{prefix}_we")
    if data is None:
        data = b.inputs(width, prefix=f"{prefix}_d")
    sels = b.onehot_decode(addr)[:rows]
    outputs = []
    for r in range(rows):
        sel = b.and_(we, sels[r])
        for w in range(width):
            cell = b.register(name=f"{prefix}_m{r}_{w}")
            b.connect(cell, b.mux(sel, data[w % len(data)], cell))
            outputs.append(cell)
    return outputs


def add_queue(b: NetlistBuilder, stages: int, width: int, prefix: str,
              data: Optional[Sequence[int]] = None) -> List[int]:
    """QC block: an enable-gated shift queue of ``stages`` rows."""
    en = b.input(f"{prefix}_en")
    if data is None:
        data = b.inputs(width, prefix=f"{prefix}_d")
    word = list(data)
    tails = []
    for s in range(stages):
        regs = []
        for w in range(width):
            cell = b.register(name=f"{prefix}_q{s}_{w}")
            b.connect(cell, b.mux(en, word[w], cell))
            regs.append(cell)
        word = regs
        tails.extend(regs)
    return tails


def add_fsm(b: NetlistBuilder, bits: int, prefix: str,
            rng: Optional[random.Random] = None,
            inputs: Optional[Sequence[int]] = None,
            redundant: int = 0) -> List[int]:
    """GC block: a ``bits``-register strongly-connected controller.

    The next-state functions mix the state ring with external inputs,
    guaranteeing a single SCC.  ``redundant`` extra registers duplicate
    existing ones (sequentially equivalent — COM fodder that shrinks
    the GC, exponentially tightening its bound).
    """
    rng = rng or random.Random(bits)
    if inputs is None:
        inputs = [b.input(f"{prefix}_i0")]
    regs = b.registers(bits, prefix=f"{prefix}_f")
    for k, reg in enumerate(regs):
        ring = regs[(k + 1) % bits]
        # Never pick the ring register itself: xor(ring, ring) would
        # fold to constant 0 and sever the ring edge.
        candidates = [r for r in regs if r != ring]
        other = rng.choice(candidates) if candidates else ring
        stim = inputs[k % len(inputs)]
        # Every next-state function lets the stimulus inject activity
        # even from the all-zero state (else the component would be
        # provably stuck at its initial value — a CC, not a GC), and
        # the forms alternate linear/non-linear so the ring carries no
        # accidental parity invariants that sequential sweeping could
        # (correctly) exploit to shrink the component.
        if k % 2 == 0:
            nxt = b.mux(stim, b.not_(other), ring)
        else:
            nxt = b.xor(ring, b.and_(stim, b.not_(other)))
        b.connect(reg, nxt)
    outputs = list(regs)
    for k in range(redundant):
        twin_src = regs[k % bits]
        gate = b.net.gate(twin_src)
        twin = b.register(gate.fanins[0], name=f"{prefix}_dup{k}")
        outputs.append(twin)
    return outputs


def add_toggle_ring(b: NetlistBuilder, length: int, prefix: str
                    ) -> List[int]:
    """GC block with known small diameter: an inverting token ring."""
    regs = [b.register(name=f"{prefix}_r{k}") for k in range(length)]
    for k in range(length - 1):
        b.connect(regs[k + 1], regs[k])
    b.connect(regs[0], b.not_(regs[-1]))
    return regs
