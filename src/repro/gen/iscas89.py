"""Table 1 profiles: the ISCAS89 benchmark suite.

Each entry transcribes one row of the paper's Table 1 ("Diameter
bounding experiments for ISCAS89 benchmarks"): the original-netlist
register classification ``(CC, AC, MC+QC, GC)``, the target count
``|T|``, the useful-target counts ``|T'|`` under the three
transformation pipelines (Original / COM / COM,RET,COM), and the
reported average bounds.  :func:`generate` synthesizes a netlist per
profile via :mod:`repro.gen.profiles` (see the substitution notes in
``DESIGN.md``); the real ``s27`` netlist is available separately via
:func:`repro.netlist.s27`.
"""

from __future__ import annotations

from typing import List, Optional

from ..netlist import Netlist
from .profiles import DesignProfile, synthesize

#: name: (cc, ac, mc+qc, gc, |T|, (T'_orig, T'_com, T'_crc),
#:        (avg_orig, avg_com, avg_crc))
_TABLE1 = {
    "PROLOG": (0, 107, 1, 28, 73, (14, 16, 24), (8.9, 11.9, 21.0)),
    "S1196": (0, 18, 0, 0, 14, (14, 14, 14), (3.3, 3.3, 4.3)),
    "S1238": (0, 18, 0, 0, 14, (14, 14, 14), (3.3, 3.3, 4.3)),
    "S1269": (0, 9, 17, 11, 10, (2, 2, 2), (10.0, 10.0, 10.0)),
    "S13207_1": (0, 314, 128, 196, 152, (49, 49, 79), (2.0, 2.1, 6.4)),
    "S1423": (0, 3, 16, 55, 5, (1, 1, 1), (1.0, 1.0, 2.0)),
    "S1488": (0, 0, 0, 6, 19, (19, 19, 19), (33.0, 33.0, 33.0)),
    "S1494": (0, 0, 0, 6, 19, (19, 19, 19), (33.0, 33.0, 33.0)),
    "S1512": (0, 0, 1, 56, 21, (0, 0, 0), (0.0, 0.0, 0.0)),
    "S15850_1": (0, 99, 124, 311, 150, (115, 115, 115), (2.7, 2.7, 4.7)),
    "S208_1": (0, 0, 0, 8, 1, (0, 0, 0), (0.0, 0.0, 0.0)),
    "S27": (0, 1, 2, 0, 1, (1, 1, 1), (4.0, 4.0, 4.0)),
    "S298": (0, 0, 1, 13, 6, (0, 0, 0), (0.0, 0.0, 0.0)),
    "S3271": (0, 6, 0, 110, 14, (1, 1, 1), (7.0, 7.0, 7.0)),
    "S3330": (0, 103, 1, 28, 73, (16, 16, 33), (11.9, 11.9, 25.3)),
    "S3384": (0, 111, 0, 72, 26, (6, 6, 6), (16.5, 16.5, 16.5)),
    "S344": (0, 0, 4, 11, 11, (3, 3, 3), (5.0, 5.0, 5.0)),
    "S349": (0, 0, 4, 11, 11, (3, 3, 3), (5.0, 5.0, 5.0)),
    "S35932": (0, 0, 0, 1728, 320, (0, 0, 0), (0.0, 0.0, 0.0)),
    "S382": (0, 6, 0, 15, 6, (0, 0, 0), (0.0, 0.0, 0.0)),
    "S38584_1": (0, 47, 4, 1375, 304, (56, 133, 110), (1.0, 14.9, 16.7)),
    "S386": (0, 0, 0, 6, 7, (7, 7, 7), (33.0, 33.0, 33.0)),
    "S400": (0, 6, 0, 15, 6, (0, 0, 0), (0.0, 0.0, 0.0)),
    "S420_1": (0, 0, 0, 16, 1, (0, 0, 0), (0.0, 0.0, 0.0)),
    "S444": (0, 6, 0, 15, 6, (0, 0, 0), (0.0, 0.0, 0.0)),
    "S4863": (0, 62, 0, 42, 16, (0, 0, 0), (0.0, 0.0, 0.0)),
    "S499": (0, 0, 0, 22, 22, (0, 0, 0), (0.0, 0.0, 0.0)),
    "S510": (0, 0, 0, 6, 7, (7, 7, 7), (33.0, 33.0, 33.0)),
    "S526N": (0, 0, 1, 20, 6, (0, 0, 0), (0.0, 0.0, 0.0)),
    "S5378": (0, 115, 0, 64, 49, (4, 4, 7), (1.5, 1.5, 3.9)),
    "S635": (0, 0, 0, 32, 1, (0, 0, 0), (0.0, 0.0, 0.0)),
    "S641": (0, 7, 0, 12, 24, (3, 3, 7), (1.0, 1.0, 2.0)),
    "S6669": (0, 181, 0, 58, 55, (37, 37, 37), (3.4, 3.4, 4.0)),
    "S713": (0, 7, 0, 12, 23, (3, 3, 7), (1.0, 1.0, 2.3)),
    "S820": (0, 0, 0, 5, 19, (19, 19, 19), (17.0, 17.0, 17.0)),
    "S832": (0, 0, 0, 5, 19, (19, 19, 19), (17.0, 17.0, 17.0)),
    "S838_1": (0, 0, 0, 32, 1, (0, 0, 0), (0.0, 0.0, 0.0)),
    "S9234_1": (0, 45, 9, 157, 39, (22, 22, 22), (1.2, 1.2, 2.0)),
    "S938": (0, 0, 0, 32, 1, (0, 0, 0), (0.0, 0.0, 0.0)),
    "S953": (0, 23, 0, 6, 23, (3, 3, 23), (2.0, 2.0, 29.8)),
    "S967": (0, 23, 0, 6, 23, (3, 3, 23), (2.0, 2.0, 29.8)),
    "S991": (0, 0, 0, 19, 17, (17, 17, 17), (8.8, 8.8, 8.8)),
}

#: Paper Table 1 cumulative row (registers per class; |T'| / |T|).
TABLE1_SIGMA = {
    "original": {"profile": (0, 1317, 313, 4622), "useful": 477,
                 "targets": 1615},
    "com": {"profile": (1, 1503, 653, 4086), "useful": 556,
            "targets": 1615},
    "crc": {"profile": (0, 509, 583, 3992), "useful": 639,
            "targets": 1615},
}


def profiles() -> List[DesignProfile]:
    """All Table 1 design profiles, in the paper's (sorted) order."""
    out = []
    for name, row in _TABLE1.items():
        cc, ac, mcqc, gc, targets, trio, avgs = row
        out.append(DesignProfile(name, cc, ac, mcqc, gc, targets,
                                 trio, avgs))
    return out


def profile(name: str) -> DesignProfile:
    """Look a Table 1 profile up by design name."""
    cc, ac, mcqc, gc, targets, trio, avgs = _TABLE1[name.upper()]
    return DesignProfile(name.upper(), cc, ac, mcqc, gc, targets, trio,
                         avgs)


def generate(name: str, seed: Optional[int] = None,
             scale: float = 1.0) -> Netlist:
    """Synthesize the ISCAS89-profile netlist for ``name``."""
    return synthesize(profile(name), seed=seed, scale=scale)


def design_names() -> List[str]:
    """All Table 1 design names."""
    return list(_TABLE1)
