"""Table 2 profiles: IBM Gigahertz Processor (GP) netlists.

The paper's Table 2 runs on *phase-abstracted* GP netlists — latch-
based gigahertz designs already folded to registers by the phase
abstraction engine of [10].  The proprietary netlists are substituted
(see ``DESIGN.md``) by profile-driven synthesis at their reported
register classifications; as in the paper the profiles are heavily
pipeline-dominated (57% AC vs 21% for ISCAS89) with large memory
arrays.

:func:`generate_latched` additionally wraps a (smaller) profile in a
two-phase latch construction, providing workloads for the PHASE engine
itself — the paper applies phase abstraction before Table 2's flow.
"""

from __future__ import annotations

from typing import List, Optional

from ..netlist import GateType, Netlist, NetlistBuilder
from .profiles import DesignProfile, synthesize

#: name: (cc, ac, mc+qc, gc, |T|, (T'_orig, T'_com, T'_crc),
#:        (avg_orig, avg_com, avg_crc))
_TABLE2 = {
    "CP_RAS": (0, 279, 66, 315, 2, (0, 0, 0), (0.0, 0.0, 0.0)),
    "CLB_CNTL": (0, 29, 2, 19, 2, (0, 0, 0), (0.0, 0.0, 0.0)),
    "CR_RAS": (0, 96, 6, 329, 1, (0, 0, 0), (0.0, 0.0, 0.0)),
    "D_DASA": (0, 16, 81, 18, 2, (1, 2, 2), (35.0, 27.0, 28.0)),
    "D_DCLA": (0, 382, 1, 754, 2, (0, 0, 0), (0.0, 0.0, 0.0)),
    "D_DUDD": (0, 30, 28, 71, 22, (4, 4, 7), (9.2, 10.8, 11.0)),
    "I_IBBQN": (0, 623, 1488, 0, 15, (15, 15, 15), (4.7, 4.7, 4.7)),
    "I_IFAR": (0, 303, 11, 99, 2, (0, 0, 0), (0.0, 0.0, 0.0)),
    "I_IFPF": (11, 893, 44, 598, 1, (0, 0, 0), (0.0, 0.0, 0.0)),
    "L3_SNP1": (25, 529, 39, 82, 5, (0, 0, 1), (0.0, 0.0, 1.0)),
    "L_EMQN": (5, 146, 6, 66, 1, (0, 1, 1), (0.0, 1.0, 1.0)),
    "L_EXEC": (12, 421, 0, 102, 2, (0, 0, 0), (0.0, 0.0, 0.0)),
    "L_FLUSHN": (6, 198, 0, 4, 7, (7, 7, 7), (3.7, 3.7, 4.0)),
    "L_INTRO": (14, 143, 12, 5, 30, (30, 30, 30), (3.8, 3.8, 3.6)),
    "L_LMQ0": (28, 690, 4, 133, 16, (0, 0, 0), (0.0, 0.0, 0.0)),
    "L_LRU": (0, 142, 20, 75, 12, (0, 12, 12), (0.0, 15.0, 15.0)),
    "L_PFQ0": (14, 1936, 17, 84, 67, (1, 1, 1), (1.0, 1.0, 1.0)),
    "L_PNTRN": (3, 228, 10, 11, 31, (23, 23, 23), (2.0, 2.0, 4.0)),
    "L_PRQN": (34, 366, 106, 265, 10, (10, 10, 10), (15.2, 15.2, 8.0)),
    "L_SLB": (3, 135, 6, 27, 3, (2, 2, 2), (1.0, 1.0, 1.0)),
    "L_TBWKN": (0, 202, 117, 14, 21, (0, 1, 1), (0.0, 1.0, 1.0)),
    "M_CIU": (0, 343, 10, 424, 6, (0, 0, 6), (0.0, 0.0, 1.0)),
    "SIDECAR4": (3, 109, 32, 455, 1, (0, 0, 0), (0.0, 0.0, 0.0)),
    "S_SCU1": (1, 232, 4, 136, 3, (0, 0, 2), (0.0, 0.0, 2.0)),
    "V_CACH": (5, 94, 15, 59, 1, (0, 0, 1), (0.0, 0.0, 1.0)),
    "V_DIR": (6, 91, 13, 68, 2, (0, 0, 2), (0.0, 0.0, 8.0)),
    "V_SNPM": (65, 846, 134, 376, 2, (1, 2, 2), (2.0, 1.5, 1.5)),
    "W_GAR": (0, 159, 0, 83, 7, (1, 1, 1), (1.0, 1.0, 1.0)),
    "W_SFA": (0, 22, 0, 42, 8, (0, 0, 0), (0.0, 0.0, 0.0)),
}

#: Paper Table 2 cumulative row.
TABLE2_SIGMA = {
    "original": {"profile": (235, 9683, 2272, 4714), "useful": 95,
                 "targets": 284},
    "com": {"profile": (77, 9291, 2367, 4397), "useful": 111,
            "targets": 284},
    "crc": {"profile": (68, 1241, 2228, 3007), "useful": 126,
            "targets": 284},
}


def profiles() -> List[DesignProfile]:
    """All Table 2 design profiles."""
    out = []
    for name, row in _TABLE2.items():
        cc, ac, mcqc, gc, targets, trio, avgs = row
        out.append(DesignProfile(name, cc, ac, mcqc, gc, targets,
                                 trio, avgs))
    return out


def profile(name: str) -> DesignProfile:
    """Look a Table 2 profile up by design name."""
    cc, ac, mcqc, gc, targets, trio, avgs = _TABLE2[name.upper()]
    return DesignProfile(name.upper(), cc, ac, mcqc, gc, targets, trio,
                         avgs)


def generate(name: str, seed: Optional[int] = None,
             scale: float = 1.0) -> Netlist:
    """Synthesize the (already phase-abstracted) GP-profile netlist."""
    return synthesize(profile(name), seed=seed, scale=scale)


def design_names() -> List[str]:
    """All Table 2 design names."""
    return list(_TABLE2)


def generate_latched(name: str, seed: Optional[int] = None,
                     scale: float = 0.1) -> Netlist:
    """A two-phase *latch-based* variant of a GP profile.

    Synthesizes the register-based profile, then re-expresses every
    register as a master/slave pair of level-sensitive latches on
    two global phase clocks — the pre-phase-abstraction form of a
    gigahertz design.  ``phase_abstract`` folds it back (factor 2).
    """
    net = synthesize(profile(name), seed=seed, scale=scale)
    b = NetlistBuilder(f"{name}-latched")
    clk1 = b.input("clk1")
    clk2 = b.input("clk2")
    mapping = {}
    # First pass: allocate inputs and latch pairs for registers.
    for vid, gate in net.gates():
        if gate.type is GateType.INPUT:
            mapping[vid] = b.input(gate.name)
        elif gate.type is GateType.REGISTER:
            master = b.latch(b.const0, clk1,
                             name=f"{gate.name or vid}_m")
            slave = b.latch(master, clk2, name=f"{gate.name or vid}_s")
            mapping[vid] = slave
    # Second pass: combinational logic in topological order.
    from ..netlist import topological_order

    for vid in topological_order(net):
        gate = net.gate(vid)
        if vid in mapping or gate.is_state:
            continue
        if gate.type is GateType.CONST0:
            mapping[vid] = b.const0
            continue
        fanins = tuple(mapping[f] for f in gate.fanins)
        mapping[vid] = b.net.add_gate(gate.type, fanins)
    # Third pass: wire master latch data edges to next-state cones.
    for vid, gate in net.gates():
        if gate.type is GateType.REGISTER:
            slave = mapping[vid]
            master = b.net.gate(slave).fanins[0]
            nxt = mapping[gate.fanins[0]]
            b.net.set_fanins(master, (nxt, clk1))
    for t in net.targets:
        b.net.add_target(mapping[t])
    for o in net.outputs:
        b.net.add_output(mapping[o])
    return b.net
