"""Profile-driven synthesis of benchmark-like netlists.

The paper's workloads (ISCAS89 and IBM GP netlists) are not available
offline, so — per the substitution documented in ``DESIGN.md`` — each
design is re-synthesized from its Table 1/2 row:

* the **register profile** ``(CC, AC, MC+QC, GC)`` of the original
  netlist column fixes how many state elements of each structural
  class the generated design contains, and
* the **target trio** ``(|T'| original, after COM, after COM,RET,COM)``
  fixes how many targets are wired to each of four *motifs* whose
  bounds respond to the transformations the way the paper reports:

  - ``always``   — plain pipeline / memory / queue / tiny FSM cones
                   whose bound is below the threshold untransformed;
  - ``com_gain`` — FSMs carrying sequentially-redundant twin registers:
                   oversized (unbounded) until COM merges the twins;
  - ``crc_gain`` — input pipelines feeding small FSMs: the pipeline
                   depth multiplies through the FSM bound until
                   retiming absorbs it into the target lag;
  - ``never``    — large FSMs whose exponential bound survives
                   every transformation.

The synthesized netlist therefore matches the paper's *causes* (the
structural register population) and lets the reproduction *measure*
whether our COM/RET engines and structural bounder produce the
reported *effects*.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from math import ceil
from typing import List, Optional, Tuple

from ..netlist import Netlist, NetlistBuilder
from . import blocks

#: Bound threshold used throughout Section 4.
USEFUL_THRESHOLD = 50


@dataclass(frozen=True)
class DesignProfile:
    """One row of Table 1 or Table 2 (original-netlist columns)."""

    name: str
    cc: int
    ac: int
    mcqc: int
    gc: int
    targets: int
    #: |T'| under (original, COM, COM-RET-COM) — drives motif wiring.
    useful_trio: Tuple[int, int, int] = (0, 0, 0)
    #: Paper-reported average bounds for EXPERIMENTS.md comparison.
    avg_trio: Tuple[float, float, float] = (0.0, 0.0, 0.0)

    @property
    def registers(self) -> int:
        """Total profiled register count."""
        return self.cc + self.ac + self.mcqc + self.gc

    def scaled(self, scale: float) -> "DesignProfile":
        """Shrink register/target counts for fast benchmark runs."""
        if scale >= 1.0:
            return self

        def s(x: int) -> int:
            return ceil(x * scale) if x else 0

        trio = tuple(min(s(self.targets), s(u)) if u else 0
                     for u in self.useful_trio)
        # Keep the trio monotone (it is in the paper).
        trio = (trio[0], max(trio[0], trio[1]), max(trio[1], trio[2]))
        return DesignProfile(self.name, s(self.cc), s(self.ac),
                             s(self.mcqc), s(self.gc),
                             max(1, s(self.targets)), trio, self.avg_trio)


class _Budget:
    """Mutable per-class register budget with availability checks."""

    def __init__(self, profile: DesignProfile) -> None:
        self.cc = profile.cc
        self.ac = profile.ac
        self.mcqc = profile.mcqc
        self.gc = profile.gc

    def take(self, kind: str, amount: int) -> int:
        """Consume up to ``amount`` from the class budget."""
        have = getattr(self, kind)
        used = min(have, amount)
        setattr(self, kind, have - used)
        return used


def synthesize(profile: DesignProfile, seed: Optional[int] = None,
               scale: float = 1.0) -> Netlist:
    """Generate a netlist realizing ``profile`` (see module docstring)."""
    profile = profile.scaled(scale)
    # zlib.crc32 is stable across processes (str hash is salted).
    rng = random.Random(seed if seed is not None
                        else zlib.crc32(profile.name.encode()))
    b = NetlistBuilder(profile.name)
    budget = _Budget(profile)

    t_orig, t_com, t_crc = profile.useful_trio
    n_always = min(t_orig, profile.targets)
    n_com = max(0, min(t_com - t_orig, profile.targets - n_always))
    n_crc = max(0, min(t_crc - t_com,
                       profile.targets - n_always - n_com))
    n_never = profile.targets - n_always - n_com - n_crc

    targets: List[int] = []
    filler_sinks: List[int] = []

    targets += _make_always(b, budget, rng, n_always)
    targets += _make_com_gain(b, budget, rng, n_com)
    targets += _make_crc_gain(b, budget, rng, n_crc)
    targets += _make_never(b, budget, rng, n_never, filler_sinks)
    _spend_leftovers(b, budget, rng, filler_sinks)

    for t in targets:
        b.net.add_target(t)
        b.net.add_output(t)
    for k, sink in enumerate(filler_sinks):
        b.net.add_output(b.buf(sink, name=f"__obs{k}"))
    return b.net


# ----------------------------------------------------------------------
# Motifs
# ----------------------------------------------------------------------
def _tap(b: NetlistBuilder, rng: random.Random,
         signals: List[int]) -> int:
    """A small combinational observation of ``signals``."""
    picks = rng.sample(signals, min(len(signals), rng.randint(1, 3)))
    if len(picks) == 1:
        return picks[0]
    return b.or_(*picks) if rng.random() < 0.5 else b.and_(*picks)


def _make_always(b: NetlistBuilder, budget: _Budget, rng: random.Random,
                 count: int) -> List[int]:
    """Targets bounded below the threshold without any transformation."""
    targets: List[int] = []
    shared: List[List[int]] = []
    for k in range(count):
        if shared and rng.random() < 0.5:
            targets.append(_tap(b, rng, rng.choice(shared)))
            continue
        kind_order = ["ac", "mcqc", "gc", "cc"]
        rng.shuffle(kind_order)
        signals: List[int] = []
        for kind in kind_order:
            if kind == "ac" and budget.ac >= 2:
                depth = min(budget.take("ac", rng.randint(2, 5)), 8)
                signals = blocks.add_pipeline(
                    b, [b.input(f"alw{k}_in")], depth, f"alw{k}")
                break
            if kind == "mcqc" and budget.mcqc >= 2:
                rows = rng.randint(2, 6)
                width = rng.randint(1, 3)
                amount = budget.take("mcqc", rows * width)
                rows = max(1, amount // max(1, width))
                if rng.random() < 0.3:
                    signals = blocks.add_queue(b, rows, width, f"alwq{k}")
                else:
                    signals = blocks.add_memory(b, rows, width, f"alwm{k}")
                break
            if kind == "gc" and budget.gc >= 2:
                bits = budget.take("gc", rng.randint(2, 4))
                signals = blocks.add_fsm(b, bits, f"alwf{k}", rng)
                break
            if kind == "cc" and budget.cc >= 1:
                n = budget.take("cc", rng.randint(1, 4))
                consts = blocks.add_constant_registers(b, n, f"alwc{k}")
                signals = [b.or_(c, b.input(f"alwc{k}_x{j}"))
                           for j, c in enumerate(consts)]
                break
        if not signals:  # budget exhausted: purely combinational target
            signals = [b.and_(b.input(f"alwx{k}a"), b.input(f"alwx{k}b"))]
        shared.append(signals)
        targets.append(_tap(b, rng, signals))
    return targets


def _make_com_gain(b: NetlistBuilder, budget: _Budget, rng: random.Random,
                   count: int) -> List[int]:
    """Targets that become bounded once COM merges twin registers.

    A ring FSM of ``2k`` registers where every other register is a
    sequential duplicate: the original GC bound is ``2**(2k)`` (over
    the threshold); after COM the SCC shrinks to ``k`` registers and
    the bound drops to ``2**k``.
    """
    targets: List[int] = []
    shared: List[int] = []
    for k in range(count):
        if shared and (budget.gc < 6 or rng.random() < 0.6):
            targets.append(_tap(b, rng, shared))
            continue
        half = min(5, max(3, budget.take("gc", rng.choice([6, 8])) // 2))
        signals = _redundant_ring(b, half, f"comf{k}", rng)
        shared = signals
        targets.append(_tap(b, rng, signals))
    return targets


def _redundant_ring(b: NetlistBuilder, half: int, prefix: str,
                    rng: random.Random) -> List[int]:
    """A 2*half-register SCC where every position has a sequential twin.

    Each stage's next-state function reads the previous stage through
    ``AND(t, XNOR(t, r))`` — semantically just ``t`` (the XNOR of two
    equivalent registers is constant 1), but structurally dependent on
    *both* registers, so the original netlist has a single
    ``2*half``-register GC.  COM proves the XNOR constant and merges
    each twin pair, halving the component.
    """
    stim = b.input(f"{prefix}_i")
    originals = [b.register(name=f"{prefix}_r{k}") for k in range(half)]
    twins = [b.register(name=f"{prefix}_t{k}") for k in range(half)]
    for k in range(half):
        pt = twins[(k - 1) % half]
        pr = originals[(k - 1) % half]
        prev = b.and_(pt, b.xnor(pt, pr))
        if k % 2 == 0:
            nxt = b.xor(prev, stim)  # injects from the zero state
        else:
            nxt = b.mux(stim, b.not_(prev), prev)
        b.connect(originals[k], nxt)
        # Twin shares the original's exact next-state vertex.
        b.connect(twins[k], nxt)
    return originals + twins


def _make_crc_gain(b: NetlistBuilder, budget: _Budget, rng: random.Random,
                   count: int) -> List[int]:
    """Targets bounded only after retiming removes input pipelines.

    Pipeline (depth d) -> small FSM (m bits): the original bound is
    ``(d + 1) * 2**m`` (over the threshold); after COM,RET,COM the
    pipeline folds into the target lag, leaving ``2**m + d``.
    """
    targets: List[int] = []
    shared: List[int] = []
    shared_depth = 0
    for k in range(count):
        if shared and (budget.gc < 3 or budget.ac < 2
                       or rng.random() < 0.6):
            targets.append(_tap(b, rng, shared))
            continue
        bits = min(5, max(3, budget.take("gc", rng.choice([4, 5]))))
        # (d + 1) * 2**m must exceed the threshold; 2**m + d must not.
        need = (USEFUL_THRESHOLD // (1 << bits)) + 1
        depth = budget.take("ac", max(need, rng.randint(need, need + 3)))
        depth = min(depth, USEFUL_THRESHOLD - (1 << bits) - 1)
        if depth < need:
            # Not enough AC budget for the motif: degrade to always.
            signals = blocks.add_fsm(b, bits, f"crcf{k}", rng)
            targets.append(_tap(b, rng, signals))
            continue
        feed = blocks.add_pipeline(
            b, [b.input(f"crc{k}_in")], depth, f"crcp{k}")
        signals = blocks.add_fsm(b, bits, f"crcf{k}", rng, inputs=feed)
        shared, shared_depth = signals, depth
        targets.append(_tap(b, rng, signals))
    return targets


def _make_never(b: NetlistBuilder, budget: _Budget, rng: random.Random,
                count: int, filler_sinks: List[int]) -> List[int]:
    """Targets whose exponential GC bound survives all transformations."""
    targets: List[int] = []
    shared: List[int] = []
    for k in range(count):
        if shared and (budget.gc < 7 or rng.random() < 0.7):
            targets.append(_tap(b, rng, shared))
            continue
        bits = budget.take("gc", rng.randint(7, 12))
        if bits < 6:
            bits += budget.take("gc", 6 - bits)
        signals = blocks.add_fsm(b, max(bits, 6), f"nevf{k}", rng)
        shared = signals
        targets.append(_tap(b, rng, signals))
    return targets


def _spend_leftovers(b: NetlistBuilder, budget: _Budget,
                     rng: random.Random,
                     filler_sinks: List[int]) -> None:
    """Realize remaining register budget as observed filler blocks."""
    idx = 0
    while budget.ac > 0:
        depth = budget.take("ac", min(budget.ac, rng.randint(3, 12)))
        word = blocks.add_pipeline(b, [b.input(f"fil{idx}_in")], depth,
                                   f"filp{idx}")
        filler_sinks.append(word[-1])
        idx += 1
    while budget.mcqc > 0:
        width = rng.randint(1, 4)
        rows = max(1, min(budget.mcqc // width, rng.randint(2, 8)))
        amount = budget.take("mcqc", rows * width)
        if amount < rows * width:
            rows, width = max(1, amount), 1
            budget.mcqc = 0
        cells = blocks.add_memory(b, rows, width, f"film{idx}")
        filler_sinks.append(b.or_(*cells))
        idx += 1
    while budget.gc > 0:
        bits = budget.take("gc", min(budget.gc, rng.randint(4, 16)))
        regs = blocks.add_fsm(b, max(2, bits), f"filf{idx}", rng) \
            if bits >= 2 else blocks.add_toggle_ring(b, 1, f"filf{idx}")
        filler_sinks.append(b.or_(*regs))
        idx += 1
    if budget.cc > 0:
        consts = blocks.add_constant_registers(
            b, budget.take("cc", budget.cc), f"filc{idx}")
        filler_sinks.append(b.or_(*consts))
