"""Synthetic workload generators (profile-driven ISCAS89/GP substitutes)."""

from . import blocks, gp, iscas89, protocols
from .profiles import USEFUL_THRESHOLD, DesignProfile, synthesize

__all__ = [
    "DesignProfile",
    "USEFUL_THRESHOLD",
    "blocks",
    "protocols",
    "gp",
    "iscas89",
    "synthesize",
]
