"""Protocol-flavored workloads with *real* safety properties.

The ISCAS89/GP substitutes use primary outputs as targets ("for lack
of any more meaningful available targets", Section 4).  These designs
carry genuine invariants instead — the kind of properties industrial
BMC completion actually discharges — and serve the examples,
integration tests and benchmarks as realistic end-to-end workloads:

* :func:`round_robin_arbiter` — N requesters, one-hot grant rotation;
  property: never two grants at once.
* :func:`fifo_with_flags` — a shift-register FIFO with occupancy
  counter; property: the empty and full flags are never both asserted.
* :func:`credit_channel` — a credit-based flow-control endpoint pair;
  property: the sender never sends without credit.

Each constructor returns ``(netlist, property_target)`` with the
property encoded as an ``AG(!t)`` target (``t`` = violation).
"""

from __future__ import annotations

from typing import List, Tuple

from ..netlist import Netlist, NetlistBuilder


def round_robin_arbiter(requesters: int = 3) -> Tuple[Netlist, int]:
    """A one-hot rotating-priority arbiter.

    A one-hot token ring marks the highest-priority requester; the
    grant goes to the first requesting client at or after the token
    (wrapping), and the token advances past a granted client.  The
    violation target asserts two simultaneous grants — unreachable
    because grants are derived from a one-hot scan chain.
    """
    b = NetlistBuilder(f"arbiter{requesters}")
    reqs = [b.input(f"req{k}") for k in range(requesters)]
    token = [b.register(None,
                        init=b.const1 if k == 0 else b.const0,
                        name=f"tok{k}")
             for k in range(requesters)]
    # Scan from the token position: carry = "no grant issued yet".
    grants: List[int] = [b.const0] * requesters
    # Unrolled priority scan: position k may grant if it requests and
    # no earlier-in-rotation position already granted.
    for start in range(requesters):
        carry = token[start]
        for off in range(requesters):
            k = (start + off) % requesters
            this_grant = b.and_(carry, reqs[k])
            grants[k] = b.or_(grants[k], this_grant)
            carry = b.and_(carry, b.not_(reqs[k]))
    grants = [b.buf(g, name=f"gnt{k}") for k, g in enumerate(grants)]
    # Token advances to just past the granted client, else holds.
    any_grant = b.or_(*grants)
    for k in range(requesters):
        advanced = grants[(k - 1) % requesters]
        b.connect(token[k], b.mux(any_grant, advanced, token[k]))
    violations = []
    for i in range(requesters):
        for j in range(i + 1, requesters):
            violations.append(b.and_(grants[i], grants[j]))
    violation = b.buf(b.or_(*violations), name="double_grant")
    b.net.add_target(violation)
    for g in grants:
        b.net.add_output(g)
    return b.net, violation


def fifo_with_flags(depth: int = 3, width: int = 2
                    ) -> Tuple[Netlist, int]:
    """A shift-register FIFO with an occupancy counter and flags.

    ``push`` inserts at the head when not full; ``pop`` drops the tail
    when not empty.  The occupancy counter tracks both.  The violation
    target asserts ``empty AND full`` — impossible while the counter
    stays within ``0 .. depth`` (which takes an inductive argument:
    the counter's invariant range).
    """
    b = NetlistBuilder(f"fifo{depth}x{width}")
    push = b.input("push")
    pop = b.input("pop")
    data = b.inputs(width, prefix="d")
    count_bits = max(1, depth.bit_length())
    count = b.registers(count_bits, prefix="cnt")
    empty = b.buf(b.word_eq(count, b.word_const(0, count_bits)),
                  name="empty")
    full = b.buf(b.word_eq(count, b.word_const(depth, count_bits)),
                 name="full")
    do_push = b.and_(push, b.not_(full))
    do_pop = b.and_(pop, b.not_(empty))
    inc = b.increment(count)
    dec = b.adder(count, b.word_const((1 << count_bits) - 1, count_bits))
    moved = b.word_mux(b.and_(do_push, b.not_(do_pop)), inc,
                       b.word_mux(b.and_(do_pop, b.not_(do_push)), dec,
                                  count))
    b.connect_word(count, moved)
    # The storage: a shift chain (contents are irrelevant to the flag
    # property, but make the design realistic).
    stage = data
    for s in range(depth):
        regs = b.registers(width, prefix=f"q{s}_")
        b.connect_word(regs,
                       b.word_mux(do_push, stage, regs))
        stage = regs
    for sig in stage:
        b.net.add_output(sig)
    violation = b.buf(b.and_(empty, full), name="empty_and_full")
    b.net.add_target(violation)
    return b.net, violation


def credit_channel(credits: int = 2) -> Tuple[Netlist, int]:
    """A credit-based flow-control sender/receiver pair.

    The sender holds a credit counter (initially ``credits``); sending
    decrements it and a returned credit increments it.  The receiver
    returns one credit per accepted item after one cycle of
    processing.  The violation target asserts a send with zero
    credits — unreachable because the counter is conserved.
    """
    b = NetlistBuilder(f"credit{credits}")
    want_send = b.input("want_send")
    count_bits = max(1, (2 * credits).bit_length())
    counter = b.registers(count_bits, prefix="cr")
    # Initial value: `credits`.
    init_word = b.word_const(credits, count_bits)
    for reg, init_bit in zip(counter, init_word):
        gate = b.net.gate(reg)
        b.net.set_fanins(reg, (gate.fanins[0], init_bit))
    has_credit = b.not_(b.word_eq(counter, b.word_const(0, count_bits)))
    send = b.buf(b.and_(want_send, has_credit), name="send")
    # Receiver: one-cycle pipeline returning the credit.
    in_flight = b.register(send, name="in_flight")
    credit_back = b.buf(in_flight, name="credit_back")
    inc = b.increment(counter)
    dec = b.adder(counter,
                  b.word_const((1 << count_bits) - 1, count_bits))
    nxt = b.word_mux(b.and_(send, b.not_(credit_back)), dec,
                     b.word_mux(b.and_(credit_back, b.not_(send)), inc,
                                counter))
    b.connect_word(counter, nxt)
    # Conservation property: the credit counter can never exceed its
    # initial budget.  Because the counter moves by at most one per
    # cycle, overshooting must pass through ``credits + 1`` — so that
    # single valuation is the violation target (an inductive-invariant
    # property, not a combinational tautology).
    violation = b.buf(
        b.word_eq(counter, b.word_const(credits + 1, count_bits)),
        name="credit_overflow")
    b.net.add_target(violation)
    b.net.add_output(send)
    b.net.add_output(credit_back)
    return b.net, violation
