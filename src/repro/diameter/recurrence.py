"""SAT-based recurrence diameter computation.

"The recurrence diameter [2] of a design is its maximum-length
irredundant state sequence, and may be calculated by a series of
propositional satisfiability problems."  We search for the smallest
``k`` such that no simple path (all states pairwise distinct) with
``k`` transitions exists; a BMC window of ``k`` time-steps
(``0 .. k - 1`` states visited plus the arrival state) is then
complete.  Per Kroening/Strichman [6], restricting the path to start
in an initial state yields a tighter (still sound for BMC-
completeness) variant; both are provided.

The recurrence diameter may be exponentially larger than the true
diameter (a free-running n-bit counter has recurrence diameter 2**n
but small functional diameters for many observables), which is exactly
the weakness the paper's structural transformations address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import obs
from ..obs import metrics as _metrics
from ..netlist import Netlist
from ..resilience import Budget, Cancelled
from ..sat import UNKNOWN, UNSAT
from ..unroll import Unrolling, add_state_difference


@dataclass
class RecurrenceResult:
    """Outcome of a recurrence-diameter computation.

    ``bound`` is the completeness bound (number of BMC time-steps that
    suffice), i.e. one greater than the longest simple path found;
    ``exact`` is False when the search stopped on ``max_k`` or a
    resource limit, in which case ``bound`` is only a lower bound of
    the true recurrence bound and *must not* be used for completeness.
    ``exhaustion_reason`` carries the structured cause of an inexact
    stop driven by a resource budget (None for a plain ``max_k``
    exit).
    """

    bound: int
    exact: bool
    longest_path: int
    exhaustion_reason: Optional[str] = None


def recurrence_diameter(
    net: Netlist,
    from_init: bool = False,
    max_k: int = 64,
    conflict_budget: Optional[int] = None,
    budget: Optional[Budget] = None,
    use_template: Optional[bool] = None,
) -> RecurrenceResult:
    """Compute the recurrence diameter by a series of SAT problems.

    ``from_init=True`` anchors the path in the initial states (the
    Kroening/Strichman refinement); otherwise paths start anywhere.
    ``budget`` is checked per step; exhaustion yields an inexact
    result with a structured ``exhaustion_reason``.  ``use_template``
    forwards to the unrolling (None = the global template toggle).
    """
    unroll = Unrolling(net, constrain_init=from_init,
                       use_template=use_template)
    k = 1
    longest = 0
    reg = obs.get_registry()
    with reg.span("diameter.recurrence"):
        while k <= max_k:
            if budget is not None:
                if budget.cancelled:
                    raise Cancelled(budget_name=budget.name)
                reason = budget.exhausted()
                if reason is not None:
                    return RecurrenceResult(bound=k, exact=False,
                                            longest_path=longest,
                                            exhaustion_reason=reason)
            unroll.frame(k - 1)  # ensure frames 0..k-1 and state k exist
            # Add distinctness between the newest state and all others.
            for i in range(k):
                add_state_difference(unroll.sink, unroll.state_lits[i],
                                     unroll.state_lits[k])
            with _metrics.query_context("recurrence", k=k), \
                    reg.span("step") as step_span:
                result = unroll.solver.solve(
                    conflict_budget=conflict_budget, budget=budget)
            _metrics.observe("recurrence.step_seconds",
                             step_span.seconds)
            reg.event("recurrence.step", k=k, result=result,
                      seconds=step_span.seconds)
            obs.progress("recurrence", k=k, of=max_k, result=result,
                         bound_so_far=longest + 1,
                         seconds=round(step_span.seconds, 6))
            if result == UNSAT:
                return RecurrenceResult(bound=k, exact=True,
                                        longest_path=k - 1)
            if result == UNKNOWN:
                return RecurrenceResult(
                    bound=k, exact=False, longest_path=longest,
                    exhaustion_reason=unroll.solver.last_exhaustion)
            longest = k
            k += 1
    return RecurrenceResult(bound=max_k + 1, exact=False, longest_path=longest)


def recurrence_diameter_for_target(
    net: Netlist,
    target: int,
    from_init: bool = True,
    max_k: int = 64,
    conflict_budget: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> RecurrenceResult:
    """Recurrence bound restricted to the target's cone of influence.

    The bounded cone-of-influence refinement of Kroening/Strichman [6]
    cited in Section 1: state elements outside ``coi(target)`` cannot
    affect the target, so the simple-path constraint may ignore them —
    often exponentially tightening the bound (any free-running counter
    elsewhere in the design otherwise pumps the path length).
    Implemented by reducing to the cone (trace-equivalence preserving,
    Theorem 1 keeps the bound valid for the original target).
    """
    from ..transform.coi import coi_reduction

    reduced = coi_reduction(net, roots=[target])
    return recurrence_diameter(reduced.netlist, from_init=from_init,
                               max_k=max_k,
                               conflict_budget=conflict_budget,
                               budget=budget)
