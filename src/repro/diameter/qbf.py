"""QBF-based exact initial-diameter computation.

Implements the quantified formulation the paper attributes to [2]: the
design's (initial-state) diameter is at most ``k + 1`` iff

    forall (k+1)-step path from Z  exists (<= k)-step path from Z
        reaching the same end state,

a 2QBF query discharged by the CEGAR engine of :mod:`repro.sat.qbf`.
Unlike the recurrence diameter this is *exact* — and exactly as
PSPACE-hard as the paper warns, so it is practical only for small
netlists; its role here is (a) ground truth beyond the explicit
oracle's input-enumeration limits, and (b) the substrate for the
paper's future-work direction ("apply this theory for speeding up
quantified-Boolean-formulae-based diameter calculation"): the
transformation theorems apply to QBF-derived bounds unchanged, and the
benchmarks show the query shrinking on transformed netlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import obs
from ..obs import metrics as _metrics
from ..netlist import GateType, Netlist
from ..resilience import Budget, Cancelled
from ..sat import CnfSink, encode_frame, encode_mux, encode_xor2, \
    lit_not, pos
from ..sat.qbf import QBFResult, solve_forall_exists
from ..sat.template import get_template, templates_enabled


def _unroll_over_lits(net: Netlist, sink: CnfSink,
                      block: List[int], frames: int
                      ) -> List[Dict[int, int]]:
    """Unroll ``frames`` transitions over a flat literal ``block``.

    The block supplies, in order, the init-cone input literals followed
    by one group of input literals per frame; returns the state-literal
    maps for boundaries ``0 .. frames``.

    When templates are enabled, the init cone is stamped from the
    ``"init"`` template and each frame from the ``"io"`` template
    (inputs are slots here, unlike :class:`~repro.unroll.Unrolling`):
    the CEGAR abstraction re-invokes this encode on every refinement
    iteration, so one compilation amortizes over the whole loop.
    """
    inputs = net.inputs
    width = len(inputs)
    init_lits = dict(zip(inputs, block[:width]))
    reg = obs.get_registry()
    use_tmpl = templates_enabled()
    # Initial state from the init cones over the init-input literals.
    # (Templates are fetched outside the ``encode`` spans so the
    # one-off ``encode.compile`` time is not counted twice in the
    # bench tool's encode/solve split.)
    init_edges = [net.gate(r).fanins[1] for r in net.registers]
    init_tmpl = get_template(net, "init") \
        if use_tmpl and init_edges else None
    io_tmpl = get_template(net, "io") if use_tmpl else None
    with reg.span("encode"):
        if not init_edges:
            cone: Dict[int, int] = {}
        elif init_tmpl is not None:
            cone, _ = init_tmpl.stamp(sink, init_lits)
        else:
            cone = encode_frame(net, sink, dict(init_lits),
                                roots=init_edges)
    state: Dict[int, int] = {}
    for vid in net.state_elements:
        gate = net.gate(vid)
        if gate.type is GateType.REGISTER:
            state[vid] = cone[gate.fanins[1]]
        else:
            state[vid] = sink.false_lit  # latches start at 0
    states = [state]
    for frame in range(frames):
        offset = width * (frame + 1)
        leaves = dict(state)
        leaves.update(zip(inputs, block[offset:offset + width]))
        with reg.span("encode"):
            if io_tmpl is not None:
                lits, nxt = io_tmpl.stamp(sink, leaves)
                assert nxt is not None
            else:
                lits = encode_frame(net, sink, leaves)
                nxt = {}
                for vid in net.state_elements:
                    gate = net.gate(vid)
                    if gate.type is GateType.REGISTER:
                        nxt[vid] = lits[gate.fanins[0]]
                    else:
                        data, clock = gate.fanins
                        out = pos(sink.new_var())
                        encode_mux(sink, out, lits[clock], lits[data],
                                   lits[vid])
                        nxt[vid] = out
        state = nxt
        states.append(state)
    return states


def _states_equal(sink: CnfSink, a: Dict[int, int],
                  b: Dict[int, int]) -> int:
    """Literal asserting two state-literal maps agree everywhere."""
    if not a:
        return sink.true_lit
    eq_bits = []
    for vid, la in a.items():
        x = pos(sink.new_var())
        encode_xor2(sink, x, la, b[vid])
        eq_bits.append(lit_not(x))
    out = pos(sink.new_var())
    for bit in eq_bits:
        sink.add_clause([lit_not(out), bit])
    sink.add_clause([out] + [lit_not(bit) for bit in eq_bits])
    return out


@dataclass
class QBFDiameterResult:
    """Outcome of the QBF initial-diameter computation.

    ``bound`` is the completeness bound (= exact ``initial_depth``
    when ``exact``); ``checks`` records the per-k 2QBF outcomes;
    ``exhaustion_reason`` carries the structured cause of an inexact
    stop driven by a resource budget (None otherwise).
    """

    bound: int
    exact: bool
    checks: List[QBFResult]
    exhaustion_reason: Optional[str] = None


def qbf_initial_diameter_check(net: Netlist, k: int,
                               max_iterations: int = 10000,
                               conflict_budget: Optional[int] = None,
                               budget: Optional[Budget] = None
                               ) -> QBFResult:
    """The 2QBF query "every (k+1)-step-reachable state is
    (<= k)-step-reachable"."""
    width = len(net.inputs)
    num_x = width * (k + 2)  # init inputs + k+1 frames
    num_y = width * (k + 1)  # init inputs + k frames

    def encode(sink: CnfSink, xs: List[int], ys: List[int]) -> int:
        long_states = _unroll_over_lits(net, sink, xs, k + 1)
        short_states = _unroll_over_lits(net, sink, ys, k)
        goal = long_states[-1]
        options = [_states_equal(sink, s, goal) for s in short_states]
        out = pos(sink.new_var())
        sink.add_clause([lit_not(out)] + options)
        for opt in options:
            sink.add_clause([out, lit_not(opt)])
        return out

    return solve_forall_exists(num_x, num_y, encode,
                               max_iterations=max_iterations,
                               conflict_budget=conflict_budget,
                               budget=budget)


def qbf_initial_diameter(net: Netlist, max_k: int = 32,
                         max_iterations: int = 10000,
                         conflict_budget: Optional[int] = None,
                         budget: Optional[Budget] = None
                         ) -> QBFDiameterResult:
    """Exact initial-state completeness bound via a series of 2QBFs.

    Returns the smallest ``k + 1`` such that the check holds at ``k``
    (every reachable state is then reachable within ``k`` steps, by
    induction on path length) — i.e. exactly ``initial_depth``.
    ``budget`` is checked per k (and cooperatively inside the CEGAR
    loop); exhaustion yields an inexact result with a structured
    ``exhaustion_reason``, cancellation raises :class:`Cancelled`.
    """
    checks: List[QBFResult] = []
    reg = obs.get_registry()
    with reg.span("diameter.qbf"):
        for k in range(max_k + 1):
            if budget is not None:
                if budget.cancelled:
                    raise Cancelled(budget_name=budget.name)
                reason = budget.exhausted()
                if reason is not None:
                    return QBFDiameterResult(bound=k + 1, exact=False,
                                             checks=checks,
                                             exhaustion_reason=reason)
            with _metrics.query_context("qbf", k=k), \
                    reg.span("check") as check_span:
                result = qbf_initial_diameter_check(
                    net, k, max_iterations=max_iterations,
                    conflict_budget=conflict_budget, budget=budget)
            _metrics.observe("qbf.check_seconds", check_span.seconds)
            reg.event("qbf.check", k=k, valid=result.valid,
                      exact=result.exact, seconds=check_span.seconds)
            obs.progress("qbf", k=k, of=max_k, valid=result.valid,
                         exact=result.exact,
                         seconds=round(check_span.seconds, 6))
            checks.append(result)
            if not result.exact:
                return QBFDiameterResult(
                    bound=k + 1, exact=False, checks=checks,
                    exhaustion_reason=result.exhaustion_reason)
            if result.valid:
                return QBFDiameterResult(bound=k + 1, exact=True,
                                         checks=checks)
    return QBFDiameterResult(bound=max_k + 2, exact=False, checks=checks)
