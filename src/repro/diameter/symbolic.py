"""Symbolic (BDD-based) reachability and depth computation.

Complements the explicit-state oracle of :mod:`repro.diameter.exact`
for designs beyond explicit enumeration: breadth-first image
computation over ROBDDs yields the exact reachable set, the exact
initial-state eccentricity (the "maximum distance from any initial
state" quantity of Section 1 [6]), and exact first-hit times — all
usable as ground truth against the structural overapproximation.

This is the classic symbolic reachability the paper contrasts with
("general unbounded approaches, such as symbolic reachability
analysis, are PSPACE-complete"): exact but liable to blow up, which is
precisely why diameter bounds that let *bounded* checking conclude are
valuable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..bdd import BDDNode, SymbolicNetlist
from ..netlist import Netlist


@dataclass
class ReachabilityResult:
    """Outcome of a symbolic forward traversal.

    ``depth`` is the number of image steps to the fixpoint;
    ``onion_rings[k]`` holds the states first reached at step ``k``
    (ring 0 = the initial states), so ``depth + 1`` equals the
    completeness bound ``initial_depth`` of the exact oracle.
    """

    sym: SymbolicNetlist
    reachable: BDDNode
    onion_rings: List[BDDNode]

    @property
    def depth(self) -> int:
        """Image steps to the fixpoint (initial_depth - 1)."""
        return len(self.onion_rings) - 1

    def count_states(self) -> int:
        """Number of reachable states (over the state variables)."""
        bdd = self.sym.bdd
        n = len(self.sym.state_vars)
        # State variables sit at even levels 0..2n-2; next-state and
        # input variables are not in the reachable set's support.
        total = bdd.sat_count(self.reachable,
                              2 * n + len(self.sym.input_vars))
        return total >> (n + len(self.sym.input_vars))


def transition_image(sym: SymbolicNetlist, states: BDDNode) -> BDDNode:
    """``img(S) = exists s, i . S(s) AND T(s, i, s')`` renamed to ``s``.

    The relation is built per state element with early quantification
    kept simple (conjunction then one existential sweep) — adequate for
    the validation-scale designs this module targets.
    """
    bdd = sym.bdd
    relation = states
    for vid in sym.net.state_elements:
        nxt = bdd.var(sym.next_vars[vid])
        relation = bdd.and_(relation,
                            bdd.equiv(nxt, sym.next_state_function(vid)))
        if relation is bdd.zero:
            return bdd.zero
    quantify = list(sym.state_vars.values()) + list(sym.input_vars.values())
    image_next = bdd.exists(quantify, relation)
    rename = {sym.next_vars[vid]: sym.state_vars[vid]
              for vid in sym.net.state_elements}
    # next levels are odd (2i + 1) and current levels even (2i):
    # the rename is order-reversing pairwise, which our rename helper
    # rejects; substitute one variable at a time via compose instead.
    out = image_next
    for vid in sym.net.state_elements:
        out = bdd.compose(out, sym.next_vars[vid],
                          bdd.var(sym.state_vars[vid]))
    return out


def symbolic_reachability(net: Netlist,
                          max_steps: Optional[int] = None
                          ) -> ReachabilityResult:
    """Forward BFS to the reachable-set fixpoint with onion rings."""
    sym = SymbolicNetlist(net)
    bdd = sym.bdd
    frontier = sym.initial_states()
    frontier = bdd.exists(list(sym.input_vars.values()), frontier)
    reachable = frontier
    rings = [frontier]
    steps = 0
    limit = max_steps if max_steps is not None else 1 << 30
    while frontier is not bdd.zero and steps < limit:
        image = transition_image(sym, frontier)
        fresh = bdd.and_(image, bdd.not_(reachable))
        if fresh is bdd.zero:
            break
        rings.append(fresh)
        reachable = bdd.or_(reachable, fresh)
        frontier = fresh
        steps += 1
    return ReachabilityResult(sym=sym, reachable=reachable,
                              onion_rings=rings)


def symbolic_initial_depth(net: Netlist) -> int:
    """Exact ``initial_depth``: one plus the eccentricity of ``Z``."""
    return symbolic_reachability(net).depth + 1


def symbolic_first_hit(net: Netlist, target: int,
                       max_steps: Optional[int] = None) -> Optional[int]:
    """Exact earliest hit time of ``target``, or None if unreachable."""
    sym = SymbolicNetlist(net)
    bdd = sym.bdd
    hit_states = sym.states_satisfying(target)
    frontier = bdd.exists(list(sym.input_vars.values()),
                          sym.initial_states())
    reachable = frontier
    depth = 0
    limit = max_steps if max_steps is not None else 1 << 30
    while frontier is not bdd.zero:
        if bdd.and_(frontier, hit_states) is not bdd.zero:
            return depth
        if depth >= limit:
            return None
        image = transition_image(sym, frontier)
        fresh = bdd.and_(image, bdd.not_(reachable))
        if fresh is bdd.zero:
            return None
        reachable = bdd.or_(reachable, fresh)
        frontier = fresh
        depth += 1
    return None
