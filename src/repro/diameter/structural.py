"""Structural compositional diameter overapproximation.

Reproduces the fast structural technique of Baumgartner, Kuehlmann and
Abraham (CAV 2002) as summarized in Section 4 of the paper: the netlist
is partitioned into an acyclic sequence of components over the register
dependency graph, and an overapproximate diameter bound is derived
compositionally.  Four component classes are distinguished:

* **CC** — constant components: all state elements provably hold their
  initial constants (ternary fixpoint).  They do not increase diameter.
* **AC** — acyclic components: a one-stage pipeline of arbitrary width.
  They increment the diameter by one regardless of width.
* **MC/QC** — memory/queue components: hold-mux cells clustered into
  atomically-updated rows.  They multiply the diameter by the number of
  rows plus one, regardless of row bit-width.
* **GC** — general components (the catch-all for other SCCs).  Their
  diameter may be exponential in the register count; as in the paper's
  experiments, "rather than using more expensive diameter bounding
  techniques ... we assume an exponential diameter increase".

Composition along the component DAG (documented design choice — the
exact CAV'02 composition rule is not published in closed form; this
variant is validated against the exact oracle in the test-suite)::

    d_in(C) = max(1, compose(predecessor components of C))
    CC:     d(C) = d_in(C)
    AC:     d(C) = d_in(C) + 1
    MC/QC:  d(C) = d_in(C) * (rows + 1)
    GC:     d(C) = d_in(C) * 2**k              (k = state elements)

where ``compose`` is the sibling composition described below: a group
of purely memoryless (AC/CC-cone) siblings combines with ``max``,
while stateful siblings multiply and the deepest memoryless window
adds on top.  The *same* rule applies at every merge point — a
target's combinational cone and a component's inputs alike — because
the phase-correlation argument does not care whether the joint
valuation is observed at a target or latched into a downstream
component.

The GC rule uses the full state count ``2**k``: anything smaller is
refuted by the exact oracle (a k-bit counter first hits its terminal
value at time ``2**k - 1``, so a completeness bound below ``2**k`` is
unsound).  The paper's engine reports slightly tighter GC numbers
(e.g. 33 for a 6-register component), suggesting a per-component
reachability refinement; we keep the provably sound variant and note
the difference in EXPERIMENTS.md.

and the bound of a target combines the components feeding its
combinational cone (1 for purely combinational targets, matching
"the diameter of a combinational netlist is 1").  Memoryless sibling
components (pure AC/CC cones, whose outputs are a function of a
bounded input window) combine with ``max``; *stateful* siblings
cannot — their trajectories phase-correlate through shared inputs or
plain time (two autonomous mod-``p``/mod-``q`` counters reach a joint
state only at time ``~p*q``), so their bounds multiply, and a
memoryless sibling then adds its pipeline depth on top (the joint
state is reachable within ``depth`` steps of replaying the stateful
part's witness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .. import obs
from ..netlist import (
    GateType,
    Netlist,
    condensation_order,
    cone_of_influence,
    register_graph,
    state_support,
)
from ..resilience import Budget, Cancelled
from ..sim import constant_state_elements

#: Component kind tags.
CC, AC, MC, QC, GC = "CC", "AC", "MC", "QC", "GC"


@dataclass(frozen=True)
class Component:
    """A classified component of the register dependency graph."""

    kind: str
    members: FrozenSet[int]
    rows: int = 0

    @property
    def size(self) -> int:
        """Number of state elements in the component."""
        return len(self.members)


@dataclass
class CellPattern:
    """A hold-mux register cell: ``next = sel ? data : self``."""

    sel: int
    data: int


def _skip_buffers(net: Netlist, vid: int) -> int:
    while net.gate(vid).type is GateType.BUF:
        vid = net.gate(vid).fanins[0]
    return vid


def detect_cell(net: Netlist, reg: int) -> Optional[CellPattern]:
    """Detect the memory-cell pattern on a register's next function.

    Recognizes ``MUX(sel, data, reg)`` and ``MUX(sel, reg, data)``
    (modulo buffers), plus the AND/OR decomposition
    ``OR(AND(sel, data), AND(NOT sel, reg))``.  Latches are cells by
    construction (``clock ? data : held``).
    """
    gate = net.gate(reg)
    if gate.type is GateType.LATCH:
        data, clock = gate.fanins
        return CellPattern(sel=clock, data=data)
    nxt = _skip_buffers(net, gate.fanins[0])
    ngate = net.gate(nxt)
    if ngate.type is GateType.MUX:
        sel, then, else_ = (
            _skip_buffers(net, f) for f in ngate.fanins)
        if else_ == reg and then != reg:
            return CellPattern(sel=sel, data=then)
        if then == reg and else_ != reg:
            return CellPattern(sel=sel, data=else_)
        return None
    if ngate.type is GateType.OR and len(ngate.fanins) == 2:
        sides = []
        for f in ngate.fanins:
            g = net.gate(_skip_buffers(net, f))
            if g.type is GateType.AND and len(g.fanins) == 2:
                sides.append(tuple(_skip_buffers(net, x) for x in g.fanins))
            else:
                return None
        for hold_side, load_side in (sides, reversed(sides)):
            if reg in hold_side:
                guard = hold_side[0] if hold_side[1] == reg else hold_side[1]
                ggate = net.gate(guard)
                if ggate.type is GateType.NOT:
                    sel = _skip_buffers(net, ggate.fanins[0])
                    if sel in load_side:
                        data = (load_side[0] if load_side[1] == sel
                                else load_side[1])
                        if data != reg:
                            return CellPattern(sel=sel, data=data)
    return None


def _extract_cube(net: Netlist, vid: int) -> Optional[Dict[int, bool]]:
    """Interpret ``vid`` as a conjunction of leaf literals, if possible.

    Returns ``{leaf: polarity}`` for an AND-tree over (possibly negated)
    inputs/state elements, or None when the cone is not a plain cube.
    Used to prove one-hot row selects mutually exclusive.
    """
    cube: Dict[int, bool] = {}
    stack: List[Tuple[int, bool]] = [(vid, True)]
    while stack:
        v, polarity = stack.pop()
        v = _skip_buffers(net, v)
        gate = net.gate(v)
        if gate.type is GateType.NOT:
            stack.append((gate.fanins[0], not polarity))
        elif gate.type is GateType.AND and polarity:
            stack.extend((f, True) for f in gate.fanins)
        elif gate.type is GateType.INPUT or gate.is_state:
            if cube.get(v, polarity) != polarity:
                return None  # contradictory literal: not a clean cube
            cube[v] = polarity
        else:
            return None
    return cube


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[int, int] = {}

    def add(self, x: int) -> None:
        self.parent.setdefault(x, x)

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


class StructuralAnalysis:
    """Component decomposition, classification and diameter bounds.

    ``refine_gc_limit`` enables the reachable-state refinement for
    small general components: a GC with at most that many registers is
    extracted (its non-component fanins freed — an overapproximation,
    so still sound), its reachable state count ``N`` is computed
    symbolically, and the GC rule becomes ``d_in * N`` instead of
    ``d_in * 2**k``.  The paper's per-component numbers (e.g. 33 for a
    6-register component) indicate its engine used exactly this kind
    of refinement.

    This engine is the designated degradation fallback of the whole
    stack (it always terminates), so a ``budget`` never aborts the
    analysis: cancellation raises at construction, and exhaustion only
    disables the *optional* GC refinement — the component falls back
    to the sound ``2**k`` rule and a ``structural.refinement_skips``
    counter records the skip.
    """

    def __init__(self, net: Netlist, refine_gc_limit: int = 0,
                 budget: Optional[Budget] = None) -> None:
        if budget is not None and budget.cancelled:
            raise Cancelled(budget_name=budget.name)
        self.net = net
        self.refine_gc_limit = refine_gc_limit
        self.budget = budget
        self.graph = register_graph(net)
        self.constants = constant_state_elements(net)
        self.components: List[Component] = []
        self.component_of: Dict[int, Component] = {}
        self._preds: Dict[Component, Set[Component]] = {}
        self._bound_cache: Dict[Component, int] = {}
        self._support_cache: Dict[int, FrozenSet[int]] = {}
        self._gc_states_cache: Dict[Component, int] = {}
        self._cone_cache: Dict[Component, FrozenSet[Component]] = {}
        with obs.span("diameter.structural") as analysis_span:
            self._decompose()
        reg = obs.get_registry()
        for kind, count in self.register_profile().items():
            if count:
                reg.counter(f"structural.registers.{kind}", count)
        reg.counter("structural.components", len(self.components))
        obs.progress("structural", components=len(self.components),
                     registers=len(net.state_elements),
                     seconds=round(analysis_span.seconds, 6))

    # ------------------------------------------------------------------
    # Decomposition and classification
    # ------------------------------------------------------------------
    def _decompose(self) -> None:
        net = self.net
        sccs, scc_preds = condensation_order(self.graph)
        kinds: Dict[FrozenSet[int], str] = {}
        cells: Dict[int, CellPattern] = {}
        for scc in sccs:
            members = set(scc)
            if members <= set(self.constants):
                kinds[scc] = CC
                continue
            if len(members) == 1:
                (reg,) = members
                self_loop = reg in self.graph[reg]
                if not self_loop:
                    kinds[scc] = AC
                    continue
                cell = detect_cell(net, reg)
                if cell is not None and reg not in state_support(
                        net, cell.sel) and reg not in state_support(
                        net, cell.data):
                    cells[reg] = cell
                    kinds[scc] = MC  # provisional; clustered below
                    continue
                kinds[scc] = GC
                continue
            kinds[scc] = GC

        clusters = self._cluster_cells(cells)
        components: List[Component] = []
        comp_of: Dict[int, Component] = {}
        clustered_cells: Set[int] = set()
        for cluster in clusters:
            clustered_cells.update(cluster.members)
            components.append(cluster)
            for m in cluster.members:
                comp_of[m] = cluster
        for scc in sccs:
            if next(iter(scc)) in clustered_cells:
                continue
            kind = kinds[scc]
            if kind is MC:  # unclustered single cell: one-row memory
                comp = Component(MC, scc, rows=1)
            elif kind is GC:
                comp = Component(GC, scc)
            else:
                comp = Component(kind, scc)
            components.append(comp)
            for m in scc:
                comp_of[m] = comp

        # Build the component digraph and collapse any cycles that
        # clustering may have introduced into GC components.
        components, comp_of = self._ensure_acyclic(components, comp_of)
        self.components = components
        self.component_of = comp_of
        self._preds = self._component_preds(components, comp_of)

    def _cluster_cells(self, cells: Dict[int, CellPattern]
                       ) -> List[Component]:
        """Group hold-mux cells into memory (MC) / queue (QC) components.

        Rules (each validated for soundness against the exact oracle):
        same select vertex -> same row; a cell whose data reads another
        cell joins its cluster (queues); cells whose selects are
        provably mutually-exclusive cubes over the same leaves join one
        memory (one row written per cycle).
        """
        net = self.net
        uf = _UnionFind()
        for reg in cells:
            uf.add(reg)
        by_sel: Dict[int, List[int]] = {}
        for reg, cell in cells.items():
            by_sel.setdefault(cell.sel, []).append(reg)
        for group in by_sel.values():
            for other in group[1:]:
                uf.union(group[0], other)
        for reg, cell in cells.items():
            for dep in state_support(net, cell.data):
                if dep in cells and dep != reg:
                    uf.union(reg, dep)
        # One-hot rows: selects that are cubes over identical leaves and
        # pairwise-distinct are mutually exclusive.
        cube_groups: Dict[FrozenSet[int], List[Tuple[int, Tuple]]] = {}
        for sel in by_sel:
            cube = _extract_cube(net, sel)
            if cube is not None and cube:
                key = frozenset(cube)
                cube_groups.setdefault(key, []).append(
                    (sel, tuple(sorted(cube.items()))))
        for group in cube_groups.values():
            distinct = {cube for _, cube in group}
            if len(distinct) == len(group) and len(group) > 1:
                first = by_sel[group[0][0]][0]
                for sel, _ in group[1:]:
                    uf.union(first, by_sel[sel][0])

        clusters: Dict[int, List[int]] = {}
        for reg in cells:
            clusters.setdefault(uf.find(reg), []).append(reg)
        out: List[Component] = []
        for members in clusters.values():
            if len(members) == 1 and not any(
                    dep in cells for dep in state_support(
                        net, cells[members[0]].data) if dep != members[0]):
                continue  # left for the per-SCC path (single-cell MC)
            # Rows: update groups keyed by (select, internal data deps).
            rows = set()
            is_queue = False
            for reg in members:
                cell = cells[reg]
                internal = frozenset(
                    dep for dep in state_support(net, cell.data)
                    if dep in cells and uf.find(dep) == uf.find(reg))
                if internal:
                    is_queue = True
                rows.add((cell.sel, internal))
            kind = QC if is_queue else MC
            out.append(Component(kind, frozenset(members), rows=len(rows)))
        return out

    def _ensure_acyclic(self, components: List[Component],
                        comp_of: Dict[int, Component]
                        ) -> Tuple[List[Component], Dict[int, Component]]:
        index = {id(c): i for i, c in enumerate(components)}
        digraph: Dict[int, Set[int]] = {i: set() for i in range(
            len(components))}
        for reg, succs in self.graph.items():
            for succ in succs:
                a = index[id(comp_of[reg])]
                b = index[id(comp_of[succ])]
                if a != b:
                    digraph[a].add(b)
        from ..netlist import strongly_connected_components
        merged: List[Component] = []
        for scc in strongly_connected_components(digraph):
            if len(scc) == 1:
                merged.append(components[next(iter(scc))])
                continue
            members: Set[int] = set()
            for i in scc:
                members |= components[i].members
            merged.append(Component(GC, frozenset(members)))
        out_of: Dict[int, Component] = {}
        for comp in merged:
            for m in comp.members:
                out_of[m] = comp
        return merged, out_of

    def _component_preds(self, components: List[Component],
                         comp_of: Dict[int, Component]
                         ) -> Dict[Component, Set[Component]]:
        preds: Dict[Component, Set[Component]] = {
            c: set() for c in components}
        for reg, succs in self.graph.items():
            for succ in succs:
                a, b = comp_of[reg], comp_of[succ]
                if a is not b:
                    preds[b].add(a)
        return preds

    # ------------------------------------------------------------------
    # Profiles and bounds
    # ------------------------------------------------------------------
    def register_profile(self) -> Dict[str, int]:
        """State-element counts per component kind (table columns)."""
        profile = {CC: 0, AC: 0, MC: 0, QC: 0, GC: 0}
        for comp in self.components:
            profile[comp.kind] += comp.size
        return profile

    def component_bound(self, comp: Component) -> int:
        """Compositional diameter bound of ``comp``'s outputs."""
        if comp in self._bound_cache:
            return self._bound_cache[comp]
        # Iterative DAG evaluation (components may chain deeply).
        stack = [comp]
        while stack:
            c = stack[-1]
            if c in self._bound_cache:
                stack.pop()
                continue
            missing = [p for p in self._preds[c]
                       if p not in self._bound_cache]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            # The predecessors jointly feed this component's inputs:
            # that is a merge point exactly like a target's cone, so
            # the same stateful-multiply / memoryless-add composition
            # applies (a plain max would under-approximate the first
            # joint input valuation of two stateful feeders).
            d_in = max(1, self._composed_bound(list(self._preds[c])))
            if c.kind is CC:
                d = d_in
            elif c.kind is AC:
                d = d_in + 1
            elif c.kind in (MC, QC):
                d = d_in * (c.rows + 1)
            else:  # GC
                d = d_in * self._gc_state_bound(c)
            self._bound_cache[c] = d
        return self._bound_cache[comp]

    def _gc_state_bound(self, comp: Component) -> int:
        """State-count bound for a GC: reachable count when small
        enough to refine, ``2**k`` otherwise.  An exhausted budget
        also falls back to ``2**k`` — skipping the refinement loses
        tightness, never soundness."""
        if comp.size > self.refine_gc_limit:
            return 1 << comp.size
        if comp in self._gc_states_cache:
            return self._gc_states_cache[comp]
        if self.budget is not None and self.budget.exhausted() is not None:
            obs.counter("structural.refinement_skips")
            return 1 << comp.size
        with obs.span("diameter.structural/gc_refine"):
            count = self._reachable_component_states(comp)
        obs.counter("structural.gc_refinements")
        self._gc_states_cache[comp] = count
        return count

    def _reachable_component_states(self, comp: Component) -> int:
        """Reachable-state count of the component with its external
        fanins freed (an overapproximation of the real environment,
        hence sound: the real reachable set is a subset of the counted
        one, and any diameter is below the state count)."""
        from ..diameter.symbolic import symbolic_reachability
        from ..netlist import Gate, GateType, rebuild

        work = self.net.copy()
        for vid in self.net.state_elements:
            if vid not in comp.members:
                work.replace_gate(vid, Gate(GateType.INPUT, (),
                                            work.gate(vid).name))
        cone, remap = rebuild(work, roots=sorted(comp.members))
        result = symbolic_reachability(cone)
        count = result.count_states()
        return max(1, min(count, 1 << comp.size))

    def _cone_components(self, comp: Component) -> FrozenSet[Component]:
        """Components in ``comp``'s cone of influence (``comp`` plus
        every transitive ancestor, through next *and* init edges)."""
        if comp not in self._cone_cache:
            coi = cone_of_influence(self.net, sorted(comp.members))
            self._cone_cache[comp] = frozenset(
                self.component_of[v] for v in coi
                if v in self.component_of)
        return self._cone_cache[comp]

    def _cone_has_history(self, comp: Component) -> bool:
        """True when the component's cone holds multi-step state (a
        GC/MC/QC anywhere upstream); pure AC/CC cones are memoryless
        functions of a bounded window of past inputs."""
        return any(c.kind in (GC, MC, QC)
                   for c in self._cone_components(comp))

    def _composed_bound(self, comps: List[Component]) -> int:
        """Soundly compose the bounds of sibling components that
        jointly feed one merge point (a target's combinational cone,
        or a downstream component's inputs).

        Siblings cannot simply take the ``max`` of their bounds: even
        input-disjoint stateful siblings phase-correlate through time
        (a free-running toggler is ``1`` only at even cycles, so a
        joint valuation with a sibling can first occur well after both
        components' individual bounds).  Stateful sibling bounds
        therefore *multiply* — the joint trajectory lives in the
        product state space, and the orbit/CRT argument bounds the
        first joint occurrence below the product — while memoryless
        (pure AC/CC cone) siblings add their window depth on top:
        replay the stateful witness, then append the ``depth`` inputs
        that fill the deepest window.  A group that is memoryless
        throughout keeps the ``max`` rule: its joint output is a
        function of the last ``depth`` inputs, all free.

        A sibling already inside another sibling's cone is accounted
        for by that sibling's d_in chain (which now uses this same
        composition at every interior merge point); only the maximal
        components contribute, so chains do not self-multiply.
        An empty group composes to 1 (purely combinational inputs).
        """
        if not comps:
            return 1
        maximal = [c for c in comps
                   if not any(other is not c
                              and c in self._cone_components(other)
                              for other in comps)]
        stateful = [c for c in maximal if self._cone_has_history(c)]
        memoryless = [c for c in maximal if c not in stateful]
        if not stateful:
            return max(self.component_bound(c) for c in memoryless)
        bound = 1
        for comp in stateful:
            bound *= self.component_bound(comp)
        depth = max((self.component_bound(c) - 1 for c in memoryless),
                    default=0)
        return bound + depth

    def bound(self, target: int) -> int:
        """Diameter bound ``d̂(t)`` of a target vertex: the sound
        sibling composition (:meth:`_composed_bound`) of the
        components feeding its combinational cone; 1 for a purely
        combinational target."""
        support = state_support(self.net, target)
        if not support:
            return 1
        comps: List[Component] = []
        for s in sorted(support):
            comp = self.component_of[s]
            if comp not in comps:
                comps.append(comp)
        return self._composed_bound(comps)

    def bounds(self, targets: Optional[List[int]] = None) -> Dict[int, int]:
        """Bounds for all (or the given) targets."""
        if targets is None:
            targets = list(self.net.targets)
        return {t: self.bound(t) for t in targets}


def structural_diameter_bound(net: Netlist, target: int) -> int:
    """One-shot convenience wrapper around :class:`StructuralAnalysis`."""
    return StructuralAnalysis(net).bound(target)
