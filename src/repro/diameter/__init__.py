"""Diameter bounding engines: structural, recurrence, exact."""

from .exact import (
    ExplicitStateSpace,
    MAX_EXPLICIT_BITS,
    first_hit_time,
    initial_depth,
    state_diameter,
)
from .estimate import DiameterEstimate, estimate_diameter
from .recurrence import (
    RecurrenceResult,
    recurrence_diameter,
    recurrence_diameter_for_target,
)
from .symbolic import (
    ReachabilityResult,
    symbolic_first_hit,
    symbolic_initial_depth,
    symbolic_reachability,
    transition_image,
)
from .qbf import (
    QBFDiameterResult,
    qbf_initial_diameter,
    qbf_initial_diameter_check,
)
from .structural import (
    AC,
    CC,
    GC,
    MC,
    QC,
    Component,
    StructuralAnalysis,
    detect_cell,
    structural_diameter_bound,
)

__all__ = [
    "AC",
    "CC",
    "Component",
    "DiameterEstimate",
    "ExplicitStateSpace",
    "GC",
    "MAX_EXPLICIT_BITS",
    "MC",
    "QC",
    "QBFDiameterResult",
    "ReachabilityResult",
    "RecurrenceResult",
    "StructuralAnalysis",
    "detect_cell",
    "estimate_diameter",
    "first_hit_time",
    "initial_depth",
    "recurrence_diameter",
    "recurrence_diameter_for_target",
    "state_diameter",
    "qbf_initial_diameter",
    "qbf_initial_diameter_check",
    "structural_diameter_bound",
    "symbolic_first_hit",
    "symbolic_initial_depth",
    "symbolic_reachability",
    "transition_image",
]
