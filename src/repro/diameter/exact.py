"""Exact explicit-state diameter computation for small netlists.

These brute-force oracles exist to *validate* the overapproximate
engines and the back-translation theorems on small designs: every
bound produced elsewhere must dominate the exact quantities computed
here.  All routines enumerate the full input alphabet per step, so they
are exponential in ``|inputs| + |registers|`` and guarded by a size
check.

Three quantities are provided, in decreasing order of magnitude:

``state_diameter``
    One plus the classic graph diameter of the *reachable* state
    transition graph (max over reachable ``s_i`` of the eccentricity of
    ``s_i`` within its reachable set).  Matches the paper's Definition 3
    convention of being "one greater than the standard definition".

``initial_depth``
    One plus the maximum, over reachable states, of the shortest
    distance from the initial state set ``Z`` — the tighter quantity
    noted in Section 1 ("a BMC application for the maximum distance
    from any initial state ... suffices for property checking").

``first_hit_time``
    The earliest time a target can be hit, or ``None`` — the ground
    truth against which completeness claims are tested: any sound
    diameter bound ``d`` for a hittable target must satisfy
    ``first_hit_time < d``.
"""

from __future__ import annotations

from collections import deque
from itertools import product
from typing import Dict, List, Optional, Set, Tuple

from ..netlist import Netlist
from ..sim import BitParallelSimulator

#: Refuse explicit enumeration beyond this many state/input bits.
MAX_EXPLICIT_BITS = 22


class ExplicitStateSpace:
    """Enumerated transition relation of a small netlist."""

    def __init__(self, net: Netlist) -> None:
        self.net = net
        self.state_vids = net.state_elements
        self.input_vids = net.inputs
        bits = len(self.state_vids) + len(self.input_vids)
        if bits > MAX_EXPLICIT_BITS:
            raise ValueError(
                f"netlist too large for explicit enumeration ({bits} bits)"
            )
        self._sim = BitParallelSimulator(net)
        self._succ_cache: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}

    # ------------------------------------------------------------------
    def initial_states(self) -> Set[Tuple[int, ...]]:
        """All initial states (enumerating init-cone inputs)."""
        out: Set[Tuple[int, ...]] = set()
        for bits in product([0, 1], repeat=len(self.input_vids)):
            init_inputs = dict(zip(self.input_vids, bits))
            state = self._sim.initial_state(init_inputs)
            out.add(tuple(state[v] for v in self.state_vids))
        return out

    def successors(self, state: Tuple[int, ...]) -> List[Tuple[int, ...]]:
        """All successor states under every input valuation."""
        cached = self._succ_cache.get(state)
        if cached is not None:
            return cached
        state_map = dict(zip(self.state_vids, state))
        succs: Set[Tuple[int, ...]] = set()
        values_of: Dict[Tuple[int, ...], Dict[int, int]] = {}
        for bits in product([0, 1], repeat=len(self.input_vids)):
            inputs = dict(zip(self.input_vids, bits))
            values, nxt = self._sim.step(state_map, inputs)
            succs.add(tuple(nxt[v] for v in self.state_vids))
        result = sorted(succs)
        self._succ_cache[state] = result
        return result

    def target_hit_now(self, state: Tuple[int, ...], target: int) -> bool:
        """True if some input valuation asserts ``target`` in ``state``."""
        state_map = dict(zip(self.state_vids, state))
        for bits in product([0, 1], repeat=len(self.input_vids)):
            inputs = dict(zip(self.input_vids, bits))
            values = self._sim.evaluate(state_map, inputs)
            if values[target] & 1:
                return True
        return False

    def reachable_states(self) -> Set[Tuple[int, ...]]:
        """BFS closure of the initial states."""
        frontier = deque(self.initial_states())
        seen = set(frontier)
        while frontier:
            state = frontier.popleft()
            for nxt in self.successors(state):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen


def _bfs_distances(space: ExplicitStateSpace,
                   sources: Set[Tuple[int, ...]]) -> Dict[Tuple[int, ...],
                                                          int]:
    dist: Dict[Tuple[int, ...], int] = {s: 0 for s in sources}
    frontier = deque(sources)
    while frontier:
        state = frontier.popleft()
        d = dist[state]
        for nxt in space.successors(state):
            if nxt not in dist:
                dist[nxt] = d + 1
                frontier.append(nxt)
    return dist


def state_diameter(net: Netlist) -> int:
    """One plus the graph diameter of the reachable state graph."""
    space = ExplicitStateSpace(net)
    reachable = space.reachable_states()
    best = 0
    for state in reachable:
        dist = _bfs_distances(space, {state})
        best = max(best, max(dist.values()))
    return best + 1


def initial_depth(net: Netlist) -> int:
    """One plus the eccentricity of the initial state set."""
    space = ExplicitStateSpace(net)
    dist = _bfs_distances(space, space.initial_states())
    return max(dist.values()) + 1


def first_hit_time(net: Netlist, target: int,
                   max_depth: Optional[int] = None) -> Optional[int]:
    """Earliest time ``target`` can be hit, or None if unreachable."""
    space = ExplicitStateSpace(net)
    frontier: Set[Tuple[int, ...]] = space.initial_states()
    seen: Set[Tuple[int, ...]] = set(frontier)
    depth = 0
    limit = max_depth if max_depth is not None else 1 << len(space.state_vids)
    while frontier and depth <= limit:
        for state in frontier:
            if space.target_hit_now(state, target):
                return depth
        nxt: Set[Tuple[int, ...]] = set()
        for state in frontier:
            for succ in space.successors(state):
                if succ not in seen:
                    seen.add(succ)
                    nxt.add(succ)
        frontier = nxt
        depth += 1
    return None
