"""Simulation-based diameter *estimation* (cf. [8] — no upper bound!).

Section 1: "Other approaches, such as [8], have proposed the use of
incomplete algorithms to estimate diameter, though are not guaranteed
to yield an upper-bound."  This module implements such an estimator —
random walks from the initial states tracking the largest BFS layer at
which a previously-unseen state is discovered — primarily so the
test-suite can demonstrate *why* the paper insists on sound
overapproximations: the estimate lower-bounds the true depth and using
it as a BMC completeness bound would be unsound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from ..netlist import Netlist
from ..sim import BitParallelSimulator


@dataclass
class DiameterEstimate:
    """An *unsound* diameter estimate.

    ``estimate`` is the largest simulation step at which a fresh state
    was observed, plus one — a lower bound on ``initial_depth``, never
    safe as a BMC completeness bound (the ``is_upper_bound`` flag
    exists so downstream code can refuse it mechanically).
    """

    estimate: int
    states_seen: int
    walks: int

    @property
    def is_upper_bound(self) -> bool:
        """Always False: estimates are unsound as completeness bounds."""
        return False


def estimate_diameter(
    net: Netlist,
    walks: int = 32,
    steps: int = 256,
    seed: int = 2004,
) -> DiameterEstimate:
    """Estimate ``initial_depth`` by random walks.

    Each walk starts from a (randomly initialized) initial state and
    applies ``steps`` random input vectors; a state never seen by any
    walk at an earlier time raises the estimate to its discovery time
    plus one.
    """
    rng = random.Random(seed)
    sim = BitParallelSimulator(net)
    state_vids = net.state_elements
    earliest: Dict[Tuple[int, ...], int] = {}
    deepest = 0
    for _ in range(walks):
        init_inputs = {v: rng.getrandbits(1) for v in net.inputs}
        state = sim.initial_state(init_inputs)
        key = tuple(state[v] for v in state_vids)
        earliest.setdefault(key, 0)
        for step in range(1, steps + 1):
            inputs = {v: rng.getrandbits(1) for v in net.inputs}
            _, state = sim.step(state, inputs)
            key = tuple(state[v] for v in state_vids)
            seen_at = earliest.get(key)
            if seen_at is None or step < seen_at:
                earliest[key] = step
                if seen_at is None:
                    deepest = max(deepest, step)
    return DiameterEstimate(estimate=deepest + 1,
                            states_seen=len(earliest), walks=walks)
