"""Resource governance: budgets, cancellation, typed failures, faults.

Layer 0.6 of the stack (between :mod:`repro.obs` and the engines):
PR 1 made every engine *observable*; this package makes them
*governable*.  Exact diameter computation is PSPACE-complete and every
solver-backed engine can blow up on an adversarial design, so every
solve in the library answers to a :class:`Budget` — a hierarchical,
cooperative bound on wall-clock (monotonic deadline), SAT conflicts,
and query count — and every failure surfaces through a typed taxonomy
(:class:`ResourceExhausted` / :class:`EngineFailure` /
:class:`Cancelled`) instead of ad-hoc strings.

Typical use::

    from repro.resilience import Budget

    budget = Budget(wall_seconds=30.0, conflicts=200_000)
    result = prove(net, budget=budget)       # never runs away
    if result.degraded:                      # an engine fell over;
        print(result.exhaustion_reason)      # the bound is still the
                                             # sound structural one

Degradation policy (the part that keeps the answers *sound*): when an
engine exhausts its slice or fails, callers fall back to the
always-terminating structural bounder of [7] — never to the
approximation engines, whose diameter bounds Sections 3.5/3.6 prove
unsound.  The experiment runner completes its table with per-design
error cells rather than dying on the first bad design.

:mod:`repro.resilience.faults` closes the loop: a deterministic
fault-injection harness scripts timeouts, spurious UNKNOWNs, and
crashes at exact solver-call indices so the test-suite can prove every
degradation path is actually exercised.

Stdlib-only and import-cycle-free: nothing here imports the rest of
``repro``, so even ``repro.sat`` can participate.
"""

from .budget import Budget
from .errors import (
    Cancelled,
    CertificationFailure,
    EngineFailure,
    EXHAUSTED_CONFLICTS,
    EXHAUSTED_DEADLINE,
    EXHAUSTED_QUERIES,
    EXHAUSTION_REASONS,
    ResilienceError,
    ResourceExhausted,
)
from .faults import (
    FAULT_ACTIONS,
    FAULT_CORRUPT_MODEL,
    FAULT_CRASH,
    FAULT_TIMEOUT,
    FAULT_UNKNOWN,
    FaultPlan,
    active_plan,
    inject,
    on_solve,
)

__all__ = [
    "Budget",
    "Cancelled",
    "CertificationFailure",
    "EngineFailure",
    "EXHAUSTED_CONFLICTS",
    "EXHAUSTED_DEADLINE",
    "EXHAUSTED_QUERIES",
    "EXHAUSTION_REASONS",
    "FAULT_ACTIONS",
    "FAULT_CORRUPT_MODEL",
    "FAULT_CRASH",
    "FAULT_TIMEOUT",
    "FAULT_UNKNOWN",
    "FaultPlan",
    "ResilienceError",
    "ResourceExhausted",
    "active_plan",
    "inject",
    "on_solve",
]
