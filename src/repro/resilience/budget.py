"""Hierarchical cooperative resource budgets.

A :class:`Budget` bounds three resources at once — wall-clock time
(a monotonic :func:`time.perf_counter` deadline), SAT conflicts, and
solver queries — and is threaded *cooperatively* through every hot
path: the SAT solver checks it per conflict, BMC per frame, the
diameter engines per step/check, the portfolio per strategy, and the
experiment runner per design.  Nothing is preemptive; a budget only
works if the code under it keeps calling :meth:`Budget.check` /
:meth:`Budget.exhausted` at its call boundaries, which is exactly the
set of boundaries :mod:`repro.obs` already instruments.

Hierarchy
---------

``parent.subbudget(...)`` / ``parent.slice(...)`` create children:

* the child's *deadline* is capped by every ancestor's (a child can
  tighten but never extend its parent's wall clock);
* *conflict* and *query* charges propagate up the chain, so siblings
  share their parent's pool while each can carry a smaller cap of its
  own — ``prove()`` slices its phase budgets this way;
* :meth:`cancel` flows *down*: cancelling a parent cancels every
  descendant (the flag is discovered by walking the parent chain).

Exhaustion is reported as a structured reason string (see
:mod:`repro.resilience.errors`); :meth:`check` raises the typed
errors, :meth:`exhausted` merely reports — engines that prefer to
return a weaker-but-sound answer (``UNKNOWN``, ``ABORTED``) use the
latter, layer boundaries that must unwind use the former.
"""

from __future__ import annotations

import time
from typing import Iterator, Optional

from .errors import (
    Cancelled,
    EXHAUSTED_CONFLICTS,
    EXHAUSTED_DEADLINE,
    EXHAUSTED_QUERIES,
    ResourceExhausted,
)

__all__ = ["Budget"]


class Budget:
    """A cooperative budget over wall-clock / conflicts / queries.

    All limits are optional (``None`` = unlimited); a fully unlimited
    budget is legal and costs almost nothing to check.  Limits must be
    non-negative; the deadline is fixed at construction (monotonic
    clock), the conflict/query pools are mutable and shared upward.
    """

    __slots__ = ("name", "parent", "_deadline", "_conflicts_left",
                 "_queries_left", "_cancelled")

    def __init__(self, wall_seconds: Optional[float] = None,
                 conflicts: Optional[int] = None,
                 queries: Optional[int] = None, *,
                 parent: Optional["Budget"] = None,
                 name: str = "budget") -> None:
        for label, value in (("wall_seconds", wall_seconds),
                             ("conflicts", conflicts),
                             ("queries", queries)):
            if value is not None and value < 0:
                raise ValueError(f"{label} must be non-negative, "
                                 f"got {value!r}")
        self.name = name
        self.parent = parent
        deadline = None if wall_seconds is None \
            else time.perf_counter() + wall_seconds
        if parent is not None and parent._deadline is not None:
            deadline = parent._deadline if deadline is None \
                else min(deadline, parent._deadline)
        self._deadline = deadline
        self._conflicts_left = conflicts
        self._queries_left = queries
        self._cancelled = False

    # ------------------------------------------------------------------
    # Hierarchy
    # ------------------------------------------------------------------
    def _chain(self) -> Iterator["Budget"]:
        node: Optional[Budget] = self
        while node is not None:
            yield node
            node = node.parent

    def subbudget(self, wall_seconds: Optional[float] = None,
                  conflicts: Optional[int] = None,
                  queries: Optional[int] = None, *,
                  name: Optional[str] = None) -> "Budget":
        """A child budget; charges propagate up, cancellation down."""
        return Budget(wall_seconds, conflicts, queries, parent=self,
                      name=name or f"{self.name}/sub")

    def slice(self, fraction: float, *,
              name: Optional[str] = None) -> "Budget":
        """A child holding ``fraction`` of the *remaining* resources.

        The natural phase splitter: ``budget.slice(0.4)`` hands a
        phase 40% of whatever wall-clock and conflicts are left right
        now, while cancellation and the parent's own deadline still
        apply.  Unlimited dimensions stay unlimited.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], "
                             f"got {fraction!r}")
        seconds = self.remaining_seconds()
        conflicts = self.remaining_conflicts()
        queries = self.remaining_queries()
        return Budget(
            None if seconds is None else seconds * fraction,
            None if conflicts is None else max(0, int(conflicts
                                                      * fraction)),
            None if queries is None else max(0, int(queries * fraction)),
            parent=self, name=name or f"{self.name}/slice")

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Request cooperative cancellation of this budget (and, by
        the parent-chain walk, every budget derived from it)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """True when this budget or any ancestor was cancelled."""
        return any(node._cancelled for node in self._chain())

    # ------------------------------------------------------------------
    # Remaining resources
    # ------------------------------------------------------------------
    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the effective deadline (None if unlimited)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.perf_counter())

    def remaining_conflicts(self) -> Optional[int]:
        """The tightest conflict pool along the chain (None if all
        unlimited); never negative."""
        tightest: Optional[int] = None
        for node in self._chain():
            if node._conflicts_left is None:
                continue
            value = max(0, node._conflicts_left)
            tightest = value if tightest is None else min(tightest, value)
        return tightest

    def remaining_queries(self) -> Optional[int]:
        """The tightest query pool along the chain (None if all
        unlimited); never negative."""
        tightest: Optional[int] = None
        for node in self._chain():
            if node._queries_left is None:
                continue
            value = max(0, node._queries_left)
            tightest = value if tightest is None else min(tightest, value)
        return tightest

    def conflict_slice(self, default: Optional[int] = None
                       ) -> Optional[int]:
        """The per-call conflict budget to hand one ``Solver.solve``:
        the minimum of ``default`` and the remaining pool (None when
        both are unlimited)."""
        remaining = self.remaining_conflicts()
        if remaining is None:
            return default
        if default is None:
            return remaining
        return min(default, remaining)

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def charge_conflicts(self, n: int = 1) -> None:
        """Deduct ``n`` conflicts from every pool along the chain."""
        for node in self._chain():
            if node._conflicts_left is not None:
                node._conflicts_left -= n

    def charge_query(self, n: int = 1) -> None:
        """Deduct ``n`` solver queries from every pool along the
        chain."""
        for node in self._chain():
            if node._queries_left is not None:
                node._queries_left -= n

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def exhausted(self) -> Optional[str]:
        """The exhaustion reason, or None while resources remain.

        Checks the deadline first (the hardest limit), then conflicts,
        then queries.  Does *not* report cancellation — that is a
        distinct condition queried via :attr:`cancelled` and raised by
        :meth:`check`.
        """
        if self._deadline is not None and \
                time.perf_counter() >= self._deadline:
            return EXHAUSTED_DEADLINE
        conflicts = self.remaining_conflicts()
        if conflicts is not None and conflicts <= 0:
            return EXHAUSTED_CONFLICTS
        queries = self.remaining_queries()
        if queries is not None and queries <= 0:
            return EXHAUSTED_QUERIES
        return None

    def check(self) -> None:
        """Raise :class:`Cancelled` / :class:`ResourceExhausted` when
        the budget can no longer be spent; no-op otherwise."""
        if self.cancelled:
            raise Cancelled(budget_name=self.name)
        reason = self.exhausted()
        if reason is not None:
            raise ResourceExhausted(reason, budget_name=self.name)

    def __repr__(self) -> str:
        parts = [f"name={self.name!r}"]
        seconds = self.remaining_seconds()
        if seconds is not None:
            parts.append(f"seconds={seconds:.3f}")
        conflicts = self.remaining_conflicts()
        if conflicts is not None:
            parts.append(f"conflicts={conflicts}")
        queries = self.remaining_queries()
        if queries is not None:
            parts.append(f"queries={queries}")
        if self.cancelled:
            parts.append("cancelled")
        return f"Budget({', '.join(parts)})"
