"""Deterministic fault injection for the solver-backed engines.

Failures in this stack are rare and timing-dependent — a SAT query
that blows its deadline on one machine finishes on another — so the
degradation paths they trigger would go untested without a way to
*script* them.  This module provides that: a :class:`FaultPlan` names
solver-call indices (every ``Solver.solve`` increments one shared
counter while a plan is active) and the fault to inject at each:

* ``"timeout"`` — the solver behaves exactly as if its wall-clock
  deadline expired: returns ``unknown`` with
  ``last_exhaustion == "deadline"``;
* ``"unknown"`` — a spurious inconclusive answer (``unknown`` with no
  exhaustion reason), the shape a flaky external solver produces;
* ``"crash"`` — raises :class:`~repro.resilience.EngineFailure`, the
  shape of a hard engine failure mid-pipeline.

Plans are installed for a dynamic extent with :func:`inject` and are
deterministic by construction (indices, not probabilities), so a test
can assert a degradation path at *every* call index reproducibly::

    plan = FaultPlan(at={3: FAULT_TIMEOUT})
    with inject(plan):
        result = prove(net)          # call #3 times out
    assert plan.calls > 3 and plan.injected == [(3, "timeout")]

The hook is consulted by ``Solver.solve`` only; higher layers see
faults through the same budget/error machinery real failures use, so
an exercised path is exercised for real.  Not thread-safe (the active
plan is process-global), matching the rest of the library.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .errors import EngineFailure

__all__ = [
    "FAULT_ACTIONS",
    "FAULT_CORRUPT_MODEL",
    "FAULT_CRASH",
    "FAULT_TIMEOUT",
    "FAULT_UNKNOWN",
    "FaultPlan",
    "active_plan",
    "inject",
    "on_solve",
]

#: Injectable fault kinds.
FAULT_TIMEOUT = "timeout"
FAULT_UNKNOWN = "unknown"
FAULT_CRASH = "crash"
#: A *soundness* fault: the scripted solve call runs to completion but
#: a SAT model comes back with one variable flipped — the shape of a
#: decode/transport bug that only witness replay (:mod:`repro.cert`)
#: can catch, since the search itself was untouched.
FAULT_CORRUPT_MODEL = "corrupt_model"
FAULT_ACTIONS = (FAULT_TIMEOUT, FAULT_UNKNOWN, FAULT_CRASH,
                 FAULT_CORRUPT_MODEL)


class FaultPlan:
    """A scripted schedule of faults over solver-call indices.

    ``at`` maps 0-based call indices to fault actions (or is a plain
    iterable of indices, all injecting ``action``); ``after`` makes
    every call with index >= ``after`` fault with ``action`` — the
    "engine is down from here on" scenario.  ``calls`` counts every
    solve observed while the plan was active; ``injected`` records
    ``(index, action)`` pairs actually fired, so tests can assert the
    fault landed where scripted.

    ``corrupt_learnt`` scripts the adversarial *soundness* fault: an
    iterable of 0-based learned-clause indices (one shared counter
    over every conflict analysed while the plan is active) at which
    the last literal of the freshly learned clause is sign-flipped
    *before* the solver records or proof-logs it.  The corrupted
    clause is really used by the subsequent search — exactly a
    miscompiled conflict analysis — so an UNSAT verdict built on it is
    only caught by the independent DRAT check of :mod:`repro.cert`.
    ``corrupted`` records ``(learnt_index, lits_after_flip)``.
    """

    def __init__(self,
                 at: Union[Dict[int, str], Iterable[int], None] = None,
                 after: Optional[int] = None,
                 action: str = FAULT_TIMEOUT,
                 corrupt_learnt: Optional[Iterable[int]] = None) -> None:
        if action not in FAULT_ACTIONS:
            raise ValueError(f"unknown fault action {action!r}")
        if isinstance(at, dict):
            schedule = dict(at)
        elif at is None:
            schedule = {}
        else:
            schedule = {int(i): action for i in at}
        for index, act in schedule.items():
            if index < 0:
                raise ValueError(f"call index must be >= 0, got {index}")
            if act not in FAULT_ACTIONS:
                raise ValueError(f"unknown fault action {act!r}")
        if after is not None and after < 0:
            raise ValueError(f"after must be >= 0, got {after}")
        if corrupt_learnt is None:
            corrupt_set = None
        else:
            corrupt_set = {int(i) for i in corrupt_learnt}
            for index in corrupt_set:
                if index < 0:
                    raise ValueError(
                        f"learnt index must be >= 0, got {index}")
        self.at = schedule
        self.after = after
        self.action = action
        self.corrupt_learnt = corrupt_set
        self.calls = 0
        self.learnts = 0
        self.injected: List[Tuple[int, str]] = []
        self.corrupted: List[Tuple[int, Tuple[int, ...]]] = []

    def config(self) -> Dict[str, object]:
        """The plan's *schedule* as plain picklable data.

        Used by :mod:`repro.parallel` to re-script the active plan
        inside each pool worker: the schedule crosses the process
        boundary, the mutable ``calls``/``injected`` state does not —
        every worker task counts its own solver calls from zero, which
        is the only deterministic reading of call indices once work is
        distributed.  ``FaultPlan(**plan.config())`` rebuilds it.
        """
        return {"at": dict(self.at), "after": self.after,
                "action": self.action,
                "corrupt_learnt":
                    sorted(self.corrupt_learnt)
                    if self.corrupt_learnt is not None else None}

    def next_action(self) -> Optional[str]:
        """The fault for the current call index (advances the index)."""
        index = self.calls
        self.calls += 1
        fault = self.at.get(index)
        if fault is None and self.after is not None \
                and index >= self.after:
            fault = self.action
        if fault is not None:
            self.injected.append((index, fault))
        return fault

    def next_learnt(self, learnt: List[int]) -> bool:
        """Solver hook, once per learned clause: advance the learnt
        index and, when scripted, flip the sign of the clause's *last*
        literal in place (same variable and decision level, so the
        backjump computation and watch invariants stay intact — the
        corruption changes what the clause *means*, not whether the
        search machinery can keep running).  Returns True when fired.
        """
        index = self.learnts
        self.learnts += 1
        if self.corrupt_learnt is None \
                or index not in self.corrupt_learnt:
            return False
        learnt[-1] ^= 1
        self.corrupted.append((index, tuple(learnt)))
        return True


#: The currently installed plan (process-global, like obs' registry).
_active: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The plan currently installed by :func:`inject`, if any."""
    return _active


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the dynamic extent; restores the previous
    plan (usually none) on exit."""
    global _active
    previous = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = previous


def on_solve(engine: str = "sat.solver") -> Optional[str]:
    """The solver-side hook: returns the scheduled fault action for
    this call (None without a plan or scheduled fault), raising
    directly for ``crash`` faults."""
    if _active is None:
        return None
    fault = _active.next_action()
    if fault == FAULT_CRASH:
        raise EngineFailure(engine, "injected crash fault")
    return fault
