"""The typed failure taxonomy of the resource-governance layer.

Three failure modes cover everything the engines can do wrong at a
layer boundary, replacing ad-hoc ``ABORTED``/``unknown`` strings when
a call must *signal* (rather than merely report) that it could not
finish:

* :class:`ResourceExhausted` — a budget ran dry.  Carries a
  structured ``reason`` (one of the ``EXHAUSTED_*`` constants below)
  so callers can distinguish a wall-clock deadline from a conflict or
  query cap without string matching.
* :class:`EngineFailure` — an engine crashed or produced an answer it
  cannot stand behind.  Carries the engine name and the original
  cause; the cure is falling back to a *sound* weaker engine (the
  structural bounder is the designated always-terminating fallback —
  per Sections 3.5/3.6 approximation-derived diameter bounds are
  unsound and must never substitute).
* :class:`Cancelled` — cooperative cancellation was requested via
  :meth:`repro.resilience.Budget.cancel`.  Unlike exhaustion this is
  *not* degraded around: it propagates so the whole stack unwinds.

Everything here is stdlib-only and import-cycle-free (nothing imports
the rest of ``repro``), so even ``repro.sat`` can raise these.

All three errors define ``__reduce__`` so they survive a ``pickle``
round-trip with their structured fields intact — process-pool workers
(:mod:`repro.parallel`) return them as *values*, and the default
``Exception`` reduction would have re-invoked ``__init__`` with the
decorated message string, silently corrupting ``reason`` /
``engine`` / ``budget_name``.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "Cancelled",
    "CertificationFailure",
    "EngineFailure",
    "EXHAUSTED_CONFLICTS",
    "EXHAUSTED_DEADLINE",
    "EXHAUSTED_QUERIES",
    "EXHAUSTION_REASONS",
    "ResilienceError",
    "ResourceExhausted",
]

#: Structured exhaustion reasons (``ResourceExhausted.reason`` and the
#: ``exhaustion_reason`` fields on engine results).
EXHAUSTED_DEADLINE = "deadline"
EXHAUSTED_CONFLICTS = "conflicts"
EXHAUSTED_QUERIES = "queries"
EXHAUSTION_REASONS = (EXHAUSTED_DEADLINE, EXHAUSTED_CONFLICTS,
                      EXHAUSTED_QUERIES)


class ResilienceError(Exception):
    """Base class of the resource-governance failure taxonomy."""


class ResourceExhausted(ResilienceError):
    """A resource budget ran out.

    ``reason`` is one of :data:`EXHAUSTION_REASONS`; ``budget_name``
    names the :class:`~repro.resilience.Budget` that tripped (for
    log/telemetry attribution in hierarchical splits).
    """

    def __init__(self, reason: str, message: str = "",
                 budget_name: Optional[str] = None) -> None:
        self.reason = reason
        self.budget_name = budget_name
        self._message = message
        detail = message or f"resource budget exhausted ({reason})"
        if budget_name:
            detail = f"{detail} [budget {budget_name!r}]"
        super().__init__(detail)

    def __reduce__(self):
        return (type(self), (self.reason, self._message,
                             self.budget_name))


class EngineFailure(ResilienceError):
    """An engine failed outright (crash, injected fault, bad state).

    ``engine`` names the failing component (``"sat.solver"``,
    ``"transform.com"``, ...); ``cause`` optionally carries the
    original exception for post-mortems.
    """

    def __init__(self, engine: str, message: str = "",
                 cause: Optional[BaseException] = None) -> None:
        self.engine = engine
        self.cause = cause
        self._message = message
        detail = message or "engine failure"
        super().__init__(f"{engine}: {detail}")

    def __reduce__(self):
        # ``cause`` is dropped: it may reference live solver state the
        # other side of a process boundary cannot (and must not) hold.
        return (type(self), (self.engine, self._message, None))


class CertificationFailure(EngineFailure):
    """A verdict failed independent certification (:mod:`repro.cert`).

    Distinct from a plain :class:`EngineFailure`: the engine *did*
    produce an answer, but the proof check or witness replay refused
    to stand behind it — the answer may be unsound and must never be
    reported.  Subclassing :class:`EngineFailure` means every existing
    degradation path already treats it as "this engine's answer is
    unusable"; callers that arbitrate (retry on the other solver core)
    catch it *before* the generic ``except EngineFailure``.

    ``stage`` names the failing artifact check: ``"proof"`` (the DRAT
    checker) or ``"witness"`` (counterexample replay).
    """

    def __init__(self, engine: str, stage: str = "",
                 message: str = "",
                 cause: Optional[BaseException] = None) -> None:
        detail = message or "verdict failed certification"
        prefix = f"certification[{stage}]" if stage else "certification"
        super().__init__(engine, f"{prefix}: {detail}", cause)
        self.stage = stage
        # EngineFailure stored the decorated string; keep the raw one
        # so the pickle round-trip does not re-prefix it.
        self._raw_message = message

    def __reduce__(self):
        return (type(self), (self.engine, self.stage,
                             self._raw_message, None))


class Cancelled(ResilienceError):
    """Cooperative cancellation was requested on a governing budget."""

    def __init__(self, message: str = "cancelled",
                 budget_name: Optional[str] = None) -> None:
        self.budget_name = budget_name
        self._message = message
        if budget_name:
            message = f"{message} [budget {budget_name!r}]"
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self._message, self.budget_name))
