"""Reproduction of "Enhanced Diameter Bounding via Structural
Transformation" (Baumgartner & Kuehlmann, DATE 2004).

Subpackages
-----------
``repro.netlist``
    Gate-level netlist model, builder, traversal, BENCH I/O.
``repro.sim``
    Two- and three-valued simulation.
``repro.obs``
    Instrumentation: hierarchical timers, counters, event traces.
``repro.sat``
    CDCL SAT solver, CNF, Tseitin encoding.
``repro.bdd``
    ROBDD package and netlist-cone BDD construction.
``repro.unroll``
    Time-frame expansion, BMC, k-induction.
``repro.transform``
    Structural transformations: COM redundancy removal, retiming,
    phase/c-slow abstraction, target enlargement, localization, ...
``repro.diameter``
    Diameter bounding engines (structural, recurrence, exact).
``repro.core``
    The paper's contribution: transformation provenance records,
    Theorems 1-4 back-translation, and the TBV engine.
``repro.gen``
    Synthetic workload generators (ISCAS89/GP profiles).
``repro.experiments``
    Regeneration of the paper's Tables 1 and 2.
"""

__version__ = "1.0.0"
