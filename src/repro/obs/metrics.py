"""Streaming, mergeable distribution metrics and the per-query ledger.

PR 1 gave the repo *totals* (spans and counters) and PR 5 gave it
*timelines* (streaming JSONL traces).  Neither can answer the
questions a production service gets asked: "what is the p95 solve
latency?", "which query burned the budget?", "did the tail regress?".
This module adds the missing distribution layer — pure stdlib, and
zero-cost when disabled, like the trace layer before it:

* :class:`Histogram` — fixed **log-bucket** histograms.  A value ``v``
  lands in bucket ``floor(log10(v) * BUCKETS_PER_DECADE)``; with
  :data:`BUCKETS_PER_DECADE` = 10 each bucket spans ~25.9% of its
  lower bound, giving better-than-±13% quantile resolution over any
  dynamic range with a handful of occupied buckets.  Because the
  bucket boundaries are *fixed* (not adaptive), merging two
  histograms is plain bucket-wise addition — associative,
  commutative, and lossless at bucket granularity — so worker
  histograms fold into the parent with no re-sampling error and a
  jobs=4 run quantizes identically to jobs=1.  Quantiles
  (:meth:`Histogram.quantile`) are computed from the buckets plus the
  exact ``count``/``min``/``max``, never from the float ``sum``, so
  split/merge order cannot perturb them.
* :class:`Gauge` — last value plus min/max/n envelope.
* :class:`RateMeter` — a monotonically growing count anchored to the
  wall-clock window ``[first, last]`` in which it grew; merging takes
  the union window, so a cross-worker rate stays honest.
* :class:`Ledger` — a bounded ring of **per-query records**: one dict
  per SAT solve / engine call with engine, frame/k, verdict,
  conflict/propagation deltas, wall seconds, budget charged, and
  cube/cert outcome.  The ring keeps the most recent
  :data:`DEFAULT_LEDGER_CAP` records and counts what it evicts, so a
  week-long run keeps bounded memory but the report can still say
  "top-5 slowest queries" and how much it did not see.

All four live in a :class:`MetricsStore` attached lazily to a
:class:`~repro.obs.registry.Registry`; the store rides the existing
``snapshot()`` / ``merge_snapshot()`` protocol (a ``"metrics"``
section), so `ParallelExecutor` and the work-stealing engine merge
worker metrics with **no new plumbing**: histograms, gauges and
meters merge *un-prefixed* (globally additive, like the ``cert.*``
counters), while ledger records gain a ``source`` tag naming the
worker that produced them.

Recording is gated by ``REPRO_METRICS`` / :func:`use_metrics` with
the same one-global-load fast path as the trace sink: every helper
begins ``if not _enabled: return``, and hot callers (``Solver.solve``)
guard with a single module-attribute load.  When a streaming trace is
active, ledger records additionally flow into the trace file as
``"Q"`` records, giving the stitched timeline per-query attribution.
"""

from __future__ import annotations

import math
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional

from . import registry as _registry_mod
from .registry import get_registry

__all__ = [
    "BUCKETS_PER_DECADE",
    "DEFAULT_LEDGER_CAP",
    "METRICS_ENV",
    "Gauge",
    "Histogram",
    "Ledger",
    "MetricsStore",
    "RateMeter",
    "bucket_bounds",
    "bucket_index",
    "current_context",
    "gauge_set",
    "mark",
    "metrics_enabled",
    "metrics_store",
    "observe",
    "query_context",
    "record_query",
    "set_metrics_enabled",
    "use_metrics",
]

#: Environment variable enabling metrics collection ("1"/"true"/...).
METRICS_ENV = "REPRO_METRICS"

#: Log-bucket resolution: 10 buckets per decade = bucket width ratio
#: ``10**0.1`` ~ 1.259 (each bucket spans ~26% of its lower bound).
BUCKETS_PER_DECADE = 10

#: Ring capacity of :class:`Ledger` (most recent records win).
DEFAULT_LEDGER_CAP = 512

_enabled = os.environ.get(METRICS_ENV, "").strip().lower() \
    not in ("", "0", "false", "off", "no")


def metrics_enabled() -> bool:
    """Whether metric recording is currently on."""
    return _enabled


def set_metrics_enabled(enabled: bool) -> bool:
    """Set the global metrics toggle; returns the previous value.

    Exports (or removes) ``REPRO_METRICS`` so that worker processes
    spawned by :mod:`repro.parallel` *after* the toggle flips inherit
    it and record their shard of the distribution — without this, a
    jobs=4 run would merge empty worker histograms and under-count
    every quantile relative to jobs=1.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    if _enabled:
        os.environ[METRICS_ENV] = "1"
    else:
        os.environ.pop(METRICS_ENV, None)
    return previous


@contextmanager
def use_metrics(enabled: bool) -> Iterator[None]:
    """Scoped override of the metrics toggle (bench, tests)."""
    previous = set_metrics_enabled(enabled)
    try:
        yield
    finally:
        set_metrics_enabled(previous)


# ----------------------------------------------------------------------
# Log buckets
# ----------------------------------------------------------------------
def bucket_index(value: float) -> int:
    """The fixed log-bucket index for a positive value.

    ``value`` <= 0 is the caller's problem (the histogram routes
    non-positive observations to a dedicated zero bucket).
    """
    return math.floor(math.log10(value) * BUCKETS_PER_DECADE)


def bucket_bounds(index: int) -> "tuple[float, float]":
    """The ``[lo, hi)`` value range covered by bucket ``index``."""
    return (10.0 ** (index / BUCKETS_PER_DECADE),
            10.0 ** ((index + 1) / BUCKETS_PER_DECADE))


class Histogram:
    """A fixed log-bucket histogram with exact count/min/max envelope.

    Mergeable by design: bucket boundaries never move, so
    :meth:`merge` is bucket-wise addition and quantiles computed
    after any split/merge order equal the single-recorder ones
    (``sum`` is the one float accumulator and is only ever used for
    the mean, never for quantiles).
    """

    __slots__ = ("buckets", "zero", "count", "sum", "min", "max")

    def __init__(self) -> None:
        #: bucket index -> observation count (positive values only)
        self.buckets: Dict[int, int] = {}
        #: observations <= 0 (telemetry should not crash on a clamp)
        self.zero = 0
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value > 0.0:
            idx = bucket_index(value)
            self.buckets[idx] = self.buckets.get(idx, 0) + 1
        else:
            self.zero += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimated from the buckets.

        Walks the cumulative bucket counts to the bucket holding rank
        ``q * (count - 1)``, then interpolates linearly inside that
        bucket's fixed bounds, clamped to the exact observed
        ``[min, max]``.  Uses only merge-exact state (buckets, count,
        min, max), so the estimate is identical no matter how the
        histogram was split and re-merged.
        """
        if self.count == 0:
            return 0.0
        if self.min is not None and self.min == self.max:
            return self.min
        rank = q * (self.count - 1)
        cum = 0
        if self.zero:
            if rank < self.zero:
                return max(0.0, self.min or 0.0)
            cum = self.zero
        for idx in sorted(self.buckets):
            n = self.buckets[idx]
            if rank < cum + n:
                lo, hi = bucket_bounds(idx)
                frac = (rank - cum) / n
                value = lo + (hi - lo) * frac
                if self.min is not None:
                    value = max(value, self.min)
                if self.max is not None:
                    value = min(value, self.max)
                return value
            cum += n
        return self.max if self.max is not None else 0.0

    def quantiles(self, qs=(0.50, 0.90, 0.99)) -> Dict[str, float]:
        """``{"p50": ..., "p90": ..., "p99": ...}`` in one pass."""
        return {f"p{int(q * 100)}": self.quantile(q) for q in qs}

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` in (bucket-wise addition; envelopes union)."""
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.zero += other.zero
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max

    def to_snapshot(self) -> Dict[str, Any]:
        """Plain-JSON form (bucket keys stringified, sorted numerically)."""
        data: Dict[str, Any] = {
            "count": self.count,
            "sum": self.sum,
            "zero": self.zero,
            "buckets": {str(i): self.buckets[i]
                        for i in sorted(self.buckets)},
        }
        if self.min is not None:
            data["min"] = self.min
            data["max"] = self.max
        return data

    @classmethod
    def from_snapshot(cls, data: Dict[str, Any]) -> "Histogram":
        """Rebuild from :meth:`to_snapshot` output."""
        hist = cls()
        hist.count = int(data.get("count", 0))
        hist.sum = float(data.get("sum", 0.0))
        hist.zero = int(data.get("zero", 0))
        hist.min = data.get("min")
        hist.max = data.get("max")
        for key, n in data.get("buckets", {}).items():
            hist.buckets[int(key)] = int(n)
        return hist


class Gauge:
    """Last-value-wins gauge with a min/max/n envelope."""

    __slots__ = ("value", "min", "max", "n")

    def __init__(self) -> None:
        self.value = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.n = 0

    def set(self, value: float) -> None:
        """Record the current level of the tracked quantity."""
        value = float(value)
        self.value = value
        self.n += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Gauge") -> None:
        """Union the envelopes; ``value`` keeps the larger-n side's
        last write (workers finish after the parent recorded, and
        "some recent value" is all a merged gauge can promise)."""
        if other.n > self.n:
            self.value = other.value
        self.n += other.n
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max

    def to_snapshot(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"value": self.value, "n": self.n}
        if self.min is not None:
            data["min"] = self.min
            data["max"] = self.max
        return data

    @classmethod
    def from_snapshot(cls, data: Dict[str, Any]) -> "Gauge":
        g = cls()
        g.value = float(data.get("value", 0.0))
        g.n = int(data.get("n", 0))
        g.min = data.get("min")
        g.max = data.get("max")
        return g


class RateMeter:
    """An event count anchored to the wall-clock window it grew in.

    ``rate()`` is count / (last - first).  Merging unions the
    windows (min first, max last) and adds the counts, so a rate
    computed across workers reflects the true concurrent window
    rather than summing per-worker rates (which would over-count
    overlap).
    """

    __slots__ = ("count", "first", "last")

    def __init__(self) -> None:
        self.count = 0
        self.first: Optional[float] = None
        self.last: Optional[float] = None

    def mark(self, n: int = 1) -> None:
        """Record ``n`` events now."""
        now = time.time()
        self.count += n
        if self.first is None:
            self.first = now
        self.last = now

    def rate(self) -> float:
        """Events per second over the observed window (0 if degenerate)."""
        if self.first is None or self.last is None:
            return 0.0
        window = self.last - self.first
        if window <= 0.0:
            return 0.0
        return self.count / window

    def merge(self, other: "RateMeter") -> None:
        self.count += other.count
        if other.first is not None and (self.first is None
                                        or other.first < self.first):
            self.first = other.first
        if other.last is not None and (self.last is None
                                       or other.last > self.last):
            self.last = other.last

    def to_snapshot(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"count": self.count}
        if self.first is not None:
            data["first"] = self.first
            data["last"] = self.last
        return data

    @classmethod
    def from_snapshot(cls, data: Dict[str, Any]) -> "RateMeter":
        m = cls()
        m.count = int(data.get("count", 0))
        m.first = data.get("first")
        m.last = data.get("last")
        return m


class Ledger:
    """A bounded ring of per-query records (most recent win).

    Records are plain dicts — the canonical fields are ``engine``,
    ``frame``/``k``, ``verdict``, ``conflicts``, ``propagations``,
    ``decisions``, ``seconds``, ``budget_charged``, ``cube``,
    ``cert`` — but the ring stores whatever the caller hands it, so
    engines can attach what only they know.  Past capacity the oldest
    record is evicted and ``dropped`` incremented (merges included),
    mirroring the registry's event ring.
    """

    __slots__ = ("records", "cap", "dropped")

    def __init__(self, cap: int = DEFAULT_LEDGER_CAP) -> None:
        self.records: Deque[Dict[str, Any]] = deque()
        self.cap = cap
        self.dropped = 0

    def record(self, entry: Dict[str, Any]) -> None:
        """Append one query record, evicting the oldest past capacity."""
        self.records.append(entry)
        if len(self.records) > self.cap:
            self.records.popleft()
            self.dropped += 1

    def top(self, n: int = 5, key: str = "seconds") -> List[Dict[str, Any]]:
        """The ``n`` records with the largest ``key`` (missing = 0)."""
        return sorted(self.records,
                      key=lambda r: r.get(key) or 0,
                      reverse=True)[:n]

    def merge(self, other_snapshot: Dict[str, Any],
              source: str = "") -> None:
        """Fold a worker ledger snapshot in, tagging each record with
        ``source`` and accounting evictions on both sides."""
        self.dropped += int(other_snapshot.get("dropped", 0))
        for rec in other_snapshot.get("records", []):
            entry = dict(rec)
            if source and "source" not in entry:
                entry["source"] = source
            self.record(entry)

    def to_snapshot(self) -> Dict[str, Any]:
        return {
            "cap": self.cap,
            "dropped": self.dropped,
            "records": list(self.records),
        }

    @classmethod
    def from_snapshot(cls, data: Dict[str, Any]) -> "Ledger":
        led = cls(int(data.get("cap", DEFAULT_LEDGER_CAP)))
        led.dropped = int(data.get("dropped", 0))
        led.records.extend(data.get("records", []))
        return led


class MetricsStore:
    """All metric instruments of one registry, keyed by name.

    Thread-safe at the instrument-map level (concurrent first-touch
    of the same name races to one instance); individual observations
    are dict/int updates under the GIL, matching the registry's own
    locking discipline.
    """

    __slots__ = ("_histograms", "_gauges", "_meters", "ledger", "_lock")

    def __init__(self, ledger_cap: int = DEFAULT_LEDGER_CAP) -> None:
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._meters: Dict[str, RateMeter] = {}
        self.ledger = Ledger(ledger_cap)
        self._lock = threading.Lock()

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        hist = self._histograms.get(name)
        if hist is None:
            with self._lock:
                hist = self._histograms.setdefault(name, Histogram())
        return hist

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge())
        return g

    def meter(self, name: str) -> RateMeter:
        """The rate meter called ``name`` (created on first use)."""
        m = self._meters.get(name)
        if m is None:
            with self._lock:
                m = self._meters.setdefault(name, RateMeter())
        return m

    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON view with deterministically sorted keys."""
        return {
            "histograms": {name: self._histograms[name].to_snapshot()
                           for name in sorted(self._histograms)},
            "gauges": {name: self._gauges[name].to_snapshot()
                       for name in sorted(self._gauges)},
            "meters": {name: self._meters[name].to_snapshot()
                       for name in sorted(self._meters)},
            "ledger": self.ledger.to_snapshot(),
        }

    @classmethod
    def from_snapshot(cls, data: Dict[str, Any]) -> "MetricsStore":
        """Rebuild a store from :meth:`snapshot` output."""
        store = cls()
        for name, h in data.get("histograms", {}).items():
            store._histograms[name] = Histogram.from_snapshot(h)
        for name, g in data.get("gauges", {}).items():
            store._gauges[name] = Gauge.from_snapshot(g)
        for name, m in data.get("meters", {}).items():
            store._meters[name] = RateMeter.from_snapshot(m)
        if "ledger" in data:
            store.ledger = Ledger.from_snapshot(data["ledger"])
        return store

    def merge(self, data: Dict[str, Any], source: str = "") -> None:
        """Fold a snapshot in: histograms/gauges/meters merge
        *un-prefixed* under their own names (bucket-wise / envelope
        union — the whole point of fixed buckets), ledger records
        gain a ``source`` tag."""
        for name, h in data.get("histograms", {}).items():
            self.histogram(name).merge(Histogram.from_snapshot(h))
        for name, g in data.get("gauges", {}).items():
            self.gauge(name).merge(Gauge.from_snapshot(g))
        for name, m in data.get("meters", {}).items():
            self.meter(name).merge(RateMeter.from_snapshot(m))
        if "ledger" in data:
            self.ledger.merge(data["ledger"], source=source)


# ----------------------------------------------------------------------
# Registry attachment
# ----------------------------------------------------------------------
def metrics_store(reg=None, create: bool = True) -> Optional[MetricsStore]:
    """The :class:`MetricsStore` of ``reg`` (default: active registry).

    Created lazily on first use so registries that never record a
    metric carry no store (and no ``"metrics"`` snapshot section).
    Pass ``create=False`` to peek without creating.
    """
    if reg is None:
        reg = get_registry()
    store = getattr(reg, "_metrics", None)
    if store is None and create:
        store = MetricsStore()
        reg._metrics = store
    return store


# ----------------------------------------------------------------------
# Query context: thread-local attribution for ledger records
# ----------------------------------------------------------------------
_context = threading.local()


def _context_stack() -> List[Dict[str, Any]]:
    stack = getattr(_context, "stack", None)
    if stack is None:
        stack = _context.stack = []
    return stack


@contextmanager
def query_context(engine: str, **fields: Any) -> Iterator[None]:
    """Tag every ledger record made by this thread inside the block.

    Engines push their identity (``engine="bmc", frame=7``) around
    solver calls; ``Solver.solve`` reads the innermost context when
    it writes its ledger record, so per-solve records carry the
    caller that issued them without threading arguments through
    every layer.  Contexts nest: inner fields override outer ones.
    When metrics are disabled this is a no-op (nothing reads the
    stack), but the push itself is cheap enough to run unguarded.
    """
    if not _enabled:
        yield
        return
    stack = _context_stack()
    merged = dict(stack[-1]) if stack else {}
    merged["engine"] = engine
    for key, value in fields.items():
        if value is not None:
            merged[key] = value
    stack.append(merged)
    try:
        yield
    finally:
        stack.pop()


def current_context() -> Dict[str, Any]:
    """The innermost query context of this thread (``{}`` outside)."""
    stack = getattr(_context, "stack", None)
    return dict(stack[-1]) if stack else {}


# ----------------------------------------------------------------------
# Recording helpers (module-level, active-registry, gated)
# ----------------------------------------------------------------------
def observe(name: str, value: float) -> None:
    """Record one histogram observation (no-op when disabled)."""
    if not _enabled:
        return
    metrics_store().histogram(name).observe(value)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge level (no-op when disabled)."""
    if not _enabled:
        return
    metrics_store().gauge(name).set(value)


def mark(name: str, n: int = 1) -> None:
    """Mark ``n`` events on a rate meter (no-op when disabled)."""
    if not _enabled:
        return
    metrics_store().meter(name).mark(n)


def record_query(**fields: Any) -> None:
    """Append one per-query ledger record (no-op when disabled).

    Merges the thread's :func:`query_context` under the explicit
    fields (explicit wins), drops ``None`` values, and — when a
    streaming trace sink is active — forwards the record as a ``"Q"``
    trace record so stitched timelines carry query attribution.
    """
    if not _enabled:
        return
    entry = current_context()
    for key, value in fields.items():
        if value is not None:
            entry[key] = value
    metrics_store().ledger.record(entry)
    sink = _registry_mod._trace_sink
    if sink is not None:
        sink.query(entry)
