"""Observability: hierarchical timers, counters, and event traces.

The measurement substrate for every engine in the library.  Zero
dependencies (stdlib only) and import-cycle-free: nothing in
``repro.obs`` imports from the rest of ``repro``, so the SAT solver
and every transformation can publish telemetry without layering
concerns.

Typical use::

    from repro import obs

    with obs.span("diameter/structural"):
        ...
        obs.counter("structural.components", len(components))

    obs.get_registry().snapshot()   # plain-JSON timers/counters/events

Tests and benchmarks isolate their measurements with ``obs.scoped()``::

    with obs.scoped() as reg:
        run_workload()
        assert reg.counter_value("sat.conflicts") > 0

Live visibility while a run executes comes from :mod:`repro.obs.trace`
(streaming JSONL sinks via ``REPRO_TRACE``, cross-process timeline
stitching, progress heartbeats)::

    obs.progress("bmc", frame=t, of=depth)   # no-op unless enabled

Distribution metrics and per-query attribution come from
:mod:`repro.obs.metrics` (``REPRO_METRICS``): log-bucket histograms
with p50/p90/p99, gauges, rate meters and a bounded per-query ledger,
all riding ``snapshot()``/``merge_snapshot()`` so worker shards fold
in losslessly::

    from repro.obs import metrics
    with metrics.use_metrics(True):
        run_workload()
        hist = metrics.metrics_store().histogram("sat.solve_seconds")
        hist.quantile(0.99)
"""

from . import metrics, trace
from .registry import (
    Registry,
    SpanHandle,
    Stopwatch,
    counter,
    event,
    get_registry,
    scoped,
    span,
    stopwatch,
)
from .trace import progress

__all__ = [
    "Registry",
    "SpanHandle",
    "Stopwatch",
    "counter",
    "event",
    "get_registry",
    "metrics",
    "progress",
    "scoped",
    "span",
    "stopwatch",
    "trace",
]
