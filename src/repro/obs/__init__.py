"""Observability: hierarchical timers, counters, and event traces.

The measurement substrate for every engine in the library.  Zero
dependencies (stdlib only) and import-cycle-free: nothing in
``repro.obs`` imports from the rest of ``repro``, so the SAT solver
and every transformation can publish telemetry without layering
concerns.

Typical use::

    from repro import obs

    with obs.span("diameter/structural"):
        ...
        obs.counter("structural.components", len(components))

    obs.get_registry().snapshot()   # plain-JSON timers/counters/events

Tests and benchmarks isolate their measurements with ``obs.scoped()``::

    with obs.scoped() as reg:
        run_workload()
        assert reg.counter_value("sat.conflicts") > 0
"""

from .registry import (
    Registry,
    SpanHandle,
    Stopwatch,
    counter,
    event,
    get_registry,
    scoped,
    span,
    stopwatch,
)

__all__ = [
    "Registry",
    "SpanHandle",
    "Stopwatch",
    "counter",
    "event",
    "get_registry",
    "scoped",
    "span",
    "stopwatch",
]
