"""The instrumentation registry: timers, counters and an event trace.

Everything in this module is pure stdlib and deliberately cheap: a
span entry/exit is two :func:`time.perf_counter` calls plus a couple
of dict operations, so engines can instrument their hot-path
*boundaries* (a SAT ``solve()`` call, a sweep round, a BMC frame)
without measurable overhead.  Do **not** instrument per-literal or
per-propagation work — keep raw integer counters there and publish
them as deltas at a call boundary (see ``Solver.solve``).

Design points:

* **Monotonic time only for durations.**  All durations come from
  :func:`time.perf_counter`; wall-clock (`time.time`) is never used
  for a duration, so NTP steps cannot produce negative or garbage
  spans.  Each registry additionally records the *wall-clock epoch*
  at which its monotonic clock started (``snapshot()["epoch"]``) so
  event offsets from different processes can be placed on one shared
  timeline (see :meth:`Registry.merge_snapshot`).
* **Hierarchical spans.**  Spans nest; a span opened while another is
  active records under the joined path ``outer/inner``.  The same
  path accumulates total seconds, call count, and max duration.  The
  nesting stack is *thread-local*: concurrent threads each see their
  own span path, never a sibling thread's.
* **Bounded events.**  The in-memory event list is a ring buffer
  (:data:`DEFAULT_MAX_EVENTS` records); once full, the oldest event
  is dropped and the ``obs.events_dropped`` counter incremented, so
  week-long runs cannot exhaust memory.  For unbounded event capture
  use the streaming trace layer (:mod:`repro.obs.trace`).
* **A process-global default registry** plus :func:`scoped` for
  isolation (tests, the bench harness).  The current-registry state
  is a lock-protected scope *stack*: enters and exits are atomic, and
  an exit removes its own registry (not blindly the top), so even
  overlapping scopes from different threads can never reinstate an
  already-exited registry.
* **JSON round-trip.**  ``snapshot()`` is plain-JSON data;
  ``Registry.from_snapshot`` restores it.

When a streaming :class:`~repro.obs.trace.TraceSink` is active, every
span boundary, counter delta and event is additionally forwarded to
it; with no sink attached the forwarding cost is a single module-
global ``None`` check.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = [
    "DEFAULT_MAX_EVENTS",
    "Registry",
    "SpanHandle",
    "Stopwatch",
    "counter",
    "event",
    "get_registry",
    "scoped",
    "span",
    "stopwatch",
]

#: Ring-buffer capacity of :attr:`Registry._events` (see class docs).
DEFAULT_MAX_EVENTS = 10_000

#: The active streaming trace sink (or None).  Owned by
#: :mod:`repro.obs.trace`; the registry only ever *reads* it, so the
#: disabled fast path is one global load + ``is None`` test.
_trace_sink = None


def _set_trace_sink(sink) -> None:
    """Install (or clear, with None) the streaming trace sink.

    Called by :func:`repro.obs.trace.start_trace` / ``stop_trace``
    only; keeping the setter here avoids an import cycle while letting
    every registry share one sink.
    """
    global _trace_sink
    _trace_sink = sink


class Stopwatch:
    """A monotonic stopwatch: ``elapsed`` seconds since creation/reset."""

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def reset(self) -> None:
        """Restart the stopwatch."""
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds elapsed on the monotonic clock."""
        return time.perf_counter() - self._start


class SpanHandle:
    """Yielded by :meth:`Registry.span`; usable during and after."""

    __slots__ = ("path", "seconds")

    def __init__(self, path: str) -> None:
        self.path = path
        #: Filled in when the span closes.
        self.seconds = 0.0


class Registry:
    """A collection of hierarchical timers, counters and events."""

    def __init__(self, name: str = "default",
                 max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.name = name
        #: span path -> [total_seconds, count, max_seconds]
        self._timers: Dict[str, List[float]] = {}
        self._counters: Dict[str, int] = {}
        #: Lazily-attached :class:`repro.obs.metrics.MetricsStore`
        #: (None until the first metric records under this registry).
        self._metrics = None
        self._events: Deque[Dict[str, Any]] = deque()
        self._max_events = max_events
        self._local = threading.local()
        self._epoch = time.perf_counter()
        #: Wall-clock instant of ``_epoch`` — the cross-process
        #: alignment anchor (events are stored at monotonic offsets
        #: from ``_epoch``; ``epoch_wall + at`` is a wall-clock time).
        self.epoch_wall = time.time()

    def _span_stack(self) -> List[str]:
        """This thread's span-nesting stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[SpanHandle]:
        """Time a block under ``name``, nested below any active span
        *of the current thread*."""
        stack = self._span_stack()
        path = f"{stack[-1]}/{name}" if stack else name
        stack.append(path)
        handle = SpanHandle(path)
        sink = _trace_sink
        if sink is not None:
            sink.span_begin(path, name)
        start = time.perf_counter()
        try:
            yield handle
        finally:
            elapsed = time.perf_counter() - start
            stack.pop()
            handle.seconds = elapsed
            stat = self._timers.get(path)
            if stat is None:
                self._timers[path] = [elapsed, 1, elapsed]
            else:
                stat[0] += elapsed
                stat[1] += 1
                if elapsed > stat[2]:
                    stat[2] = elapsed
            sink = _trace_sink
            if sink is not None:
                sink.span_end(path, name, elapsed)

    def counter(self, name: str, delta: int = 1) -> int:
        """Add ``delta`` to counter ``name``; returns the new value."""
        value = self._counters.get(name, 0) + delta
        self._counters[name] = value
        sink = _trace_sink
        if sink is not None:
            sink.counter(name, delta, value)
        return value

    def event(self, name: str, **fields: Any) -> None:
        """Append a trace event (monotonic ``at`` seconds since the
        registry was created, plus arbitrary JSON-safe fields)."""
        record: Dict[str, Any] = {
            "name": name,
            "at": time.perf_counter() - self._epoch,
        }
        stack = self._span_stack()
        if stack:
            record["span"] = stack[-1]
        record.update(fields)
        self._append_event(record)
        sink = _trace_sink
        if sink is not None:
            sink.event(name, fields, span=record.get("span"))

    def _append_event(self, record: Dict[str, Any]) -> None:
        """Ring-buffered append: past capacity the oldest event is
        dropped and ``obs.events_dropped`` incremented."""
        events = self._events
        events.append(record)
        if len(events) > self._max_events:
            events.popleft()
            self._counters["obs.events_dropped"] = \
                self._counters.get("obs.events_dropped", 0) + 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def timer_seconds(self, path: str) -> float:
        """Total seconds accumulated under span ``path`` (0 if unused)."""
        stat = self._timers.get(path)
        return stat[0] if stat else 0.0

    def counter_value(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never touched)."""
        return self._counters.get(name, 0)

    @property
    def events(self) -> Deque[Dict[str, Any]]:
        """The recorded event ring (live deque; treat as read-only)."""
        return self._events

    @property
    def events_dropped(self) -> int:
        """Events evicted from the ring buffer since the last reset."""
        return self._counters.get("obs.events_dropped", 0)

    def snapshot(self) -> Dict[str, Any]:
        """A plain-JSON view of the whole registry.

        ``epoch`` is the wall-clock instant at which this registry's
        monotonic clock started: ``epoch + event["at"]`` is an
        absolute wall-clock time, which is what lets
        :meth:`merge_snapshot` align snapshots taken in different
        processes onto one timeline.
        """
        data = {
            "name": self.name,
            "epoch": self.epoch_wall,
            "timers": {
                path: {"total_s": stat[0], "count": stat[1],
                       "max_s": stat[2]}
                for path, stat in sorted(self._timers.items())
            },
            "counters": dict(sorted(self._counters.items())),
            "events": list(self._events),
            "events_dropped": self._counters.get("obs.events_dropped",
                                                 0),
        }
        if self._metrics is not None:
            data["metrics"] = self._metrics.snapshot()
        return data

    @classmethod
    def from_snapshot(cls, data: Dict[str, Any]) -> "Registry":
        """Rebuild a registry from :meth:`snapshot` output."""
        reg = cls(data.get("name", "default"))
        if "epoch" in data:
            reg.epoch_wall = data["epoch"]
        for path, stat in data.get("timers", {}).items():
            reg._timers[path] = [stat["total_s"], stat["count"],
                                 stat["max_s"]]
        reg._counters.update(data.get("counters", {}))
        reg._events.extend(data.get("events", []))
        if "metrics" in data:
            from .metrics import MetricsStore
            reg._metrics = MetricsStore.from_snapshot(data["metrics"])
        return reg

    def merge_snapshot(self, data: Dict[str, Any],
                       prefix: str = "") -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The aggregation half of the process-pool protocol
        (:mod:`repro.parallel`): workers run under their own scoped
        registry, ship the snapshot home, and the parent merges it
        here.  Timer paths and counter names gain ``prefix/``; timer
        totals/counts add up and maxima combine.  Events are appended
        with a ``source`` field naming the prefix (or, without a
        prefix, the originating registry's name) and — when the
        snapshot carries a wall-clock ``epoch`` — their ``at``
        offsets are rebased onto *this* registry's epoch, so worker
        events land at their true position on the parent's timeline
        (monotonic clocks do not compare across processes, but the
        wall-clock epochs recorded next to them do).

        A ``"metrics"`` section merges **un-prefixed**: histogram
        buckets, gauge envelopes and meter windows fold under their
        own global names (bucket-wise addition — the fixed-bucket
        design makes this lossless), and ledger records gain a
        ``source`` tag.  This is deliberate: per-worker quantiles are
        meaningless split across prefixes, and the whole point of
        mergeable histograms is that jobs=4 equals jobs=1.
        """
        pre = f"{prefix.rstrip('/')}/" if prefix else ""
        for path, stat in data.get("timers", {}).items():
            merged = self._timers.get(pre + path)
            if merged is None:
                self._timers[pre + path] = [stat["total_s"],
                                            stat["count"],
                                            stat["max_s"]]
            else:
                merged[0] += stat["total_s"]
                merged[1] += stat["count"]
                if stat["max_s"] > merged[2]:
                    merged[2] = stat["max_s"]
        for name, value in data.get("counters", {}).items():
            # Direct bump, NOT self.counter(): the worker already
            # streamed these deltas to its own trace file, so
            # forwarding them again here would double-count every
            # worker counter in a stitched timeline.
            key = pre + name
            self._counters[key] = self._counters.get(key, 0) + value
        source = prefix or data.get("name", "unknown")
        shift: Optional[float] = None
        their_epoch = data.get("epoch")
        if their_epoch is not None:
            shift = their_epoch - self.epoch_wall
        for ev in data.get("events", []):
            record = dict(ev)
            record["source"] = source
            if shift is not None and "at" in record:
                record["at"] = record["at"] + shift
            self._append_event(record)
        metrics = data.get("metrics")
        if metrics:
            if self._metrics is None:
                from .metrics import MetricsStore
                self._metrics = MetricsStore()
            self._metrics.merge(metrics, source=source)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot serialized as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)

    def to_markdown(self) -> str:
        """Timers and counters rendered as markdown tables."""
        lines = [f"### Instrumentation — `{self.name}`", ""]
        if self._timers:
            lines += ["| span | total (s) | calls | max (s) |",
                      "|---|---:|---:|---:|"]
            for path, stat in sorted(self._timers.items()):
                lines.append(f"| `{path}` | {stat[0]:.4f} | {stat[1]} "
                             f"| {stat[2]:.4f} |")
            lines.append("")
        if self._counters:
            lines += ["| counter | value |", "|---|---:|"]
            for name, value in sorted(self._counters.items()):
                lines.append(f"| `{name}` | {value} |")
            lines.append("")
        if self._metrics is not None and self._metrics._histograms:
            lines += ["| histogram | count | p50 | p90 | p99 | max |",
                      "|---|---:|---:|---:|---:|---:|"]
            for name in sorted(self._metrics._histograms):
                hist = self._metrics._histograms[name]
                qs = hist.quantiles()
                lines.append(
                    f"| `{name}` | {hist.count} | {qs['p50']:.4g} "
                    f"| {qs['p90']:.4g} | {qs['p99']:.4g} "
                    f"| {hist.max if hist.max is not None else 0:.4g} |")
            lines.append("")
        if not self._timers and not self._counters:
            lines.append("(empty)")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop all recorded data (active span paths survive)."""
        self._timers.clear()
        self._counters.clear()
        self._metrics = None
        self._events.clear()
        self._epoch = time.perf_counter()
        self.epoch_wall = time.time()


#: The process-global default registry.
_default = Registry("global")
_current = _default

#: The active :func:`scoped` registries, oldest first.  Exits remove
#: *their own* entry — not necessarily the top — and re-point
#: ``_current`` at the remaining top, so overlapping scopes from
#: different threads cannot restore an already-exited registry out
#: of order (A exits while B is active: records keep flowing to B,
#: and B's exit falls through to the global registry, never to A's
#: dead one).
_scope_stack: List[Registry] = []

#: Protects ``_scope_stack``/``_current`` against torn or interleaved
#: updates from concurrent :func:`scoped` enters/exits.
_swap_lock = threading.Lock()


def get_registry() -> Registry:
    """The currently-active registry (the global one unless scoped)."""
    return _current


@contextmanager
def scoped(registry: Optional[Registry] = None) -> Iterator[Registry]:
    """Swap in a fresh (or the given) registry for the dynamic extent.

    Everything instrumented inside the block records into the scoped
    registry; on exit the most recent still-active scope (or the
    global registry) becomes current again.  This is how tests and
    the bench harness isolate their measurements from the global
    accumulator.  The *scope* is process-global — a worker thread
    running during the block records into the scoped registry too.
    Overlapping scopes from different threads are safe in the sense
    that an out-of-order exit can never reinstate an already-exited
    registry (see ``_scope_stack``), though with overlap the blocks
    share whichever registry is innermost rather than each seeing
    their own.
    """
    global _current
    reg = registry if registry is not None else Registry("scoped")
    with _swap_lock:
        _scope_stack.append(reg)
        _current = reg
    try:
        yield reg
    finally:
        with _swap_lock:
            for i in range(len(_scope_stack) - 1, -1, -1):
                if _scope_stack[i] is reg:
                    del _scope_stack[i]
                    break
            _current = _scope_stack[-1] if _scope_stack else _default


def span(name: str):
    """``with obs.span("engine/phase"):`` on the active registry."""
    return _current.span(name)


def counter(name: str, delta: int = 1) -> int:
    """Bump a counter on the active registry."""
    return _current.counter(name, delta)


def event(name: str, **fields: Any) -> None:
    """Record a trace event on the active registry."""
    _current.event(name, **fields)


def stopwatch() -> Stopwatch:
    """A fresh monotonic :class:`Stopwatch`."""
    return Stopwatch()
