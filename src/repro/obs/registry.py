"""The instrumentation registry: timers, counters and an event trace.

Everything in this module is pure stdlib and deliberately cheap: a
span entry/exit is two :func:`time.perf_counter` calls plus a couple
of dict operations, so engines can instrument their hot-path
*boundaries* (a SAT ``solve()`` call, a sweep round, a BMC frame)
without measurable overhead.  Do **not** instrument per-literal or
per-propagation work — keep raw integer counters there and publish
them as deltas at a call boundary (see ``Solver.solve``).

Design points:

* **Monotonic time only.**  All durations come from
  :func:`time.perf_counter`; wall-clock (`time.time`) is never used,
  so NTP steps cannot produce negative or garbage durations.
* **Hierarchical spans.**  Spans nest; a span opened while another is
  active records under the joined path ``outer/inner``.  The same
  path accumulates total seconds, call count, and max duration.
* **A process-global default registry** plus :func:`scoped` for
  isolation (tests, the bench harness).
* **JSON round-trip.**  ``snapshot()`` is plain-JSON data;
  ``Registry.from_snapshot`` restores it.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Registry",
    "SpanHandle",
    "Stopwatch",
    "counter",
    "event",
    "get_registry",
    "scoped",
    "span",
    "stopwatch",
]


class Stopwatch:
    """A monotonic stopwatch: ``elapsed`` seconds since creation/reset."""

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def reset(self) -> None:
        """Restart the stopwatch."""
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds elapsed on the monotonic clock."""
        return time.perf_counter() - self._start


class SpanHandle:
    """Yielded by :meth:`Registry.span`; usable during and after."""

    __slots__ = ("path", "seconds")

    def __init__(self, path: str) -> None:
        self.path = path
        #: Filled in when the span closes.
        self.seconds = 0.0


class Registry:
    """A collection of hierarchical timers, counters and events."""

    def __init__(self, name: str = "default") -> None:
        self.name = name
        #: span path -> [total_seconds, count, max_seconds]
        self._timers: Dict[str, List[float]] = {}
        self._counters: Dict[str, int] = {}
        self._events: List[Dict[str, Any]] = []
        self._stack: List[str] = []
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[SpanHandle]:
        """Time a block under ``name``, nested below any active span."""
        path = f"{self._stack[-1]}/{name}" if self._stack else name
        self._stack.append(path)
        handle = SpanHandle(path)
        start = time.perf_counter()
        try:
            yield handle
        finally:
            elapsed = time.perf_counter() - start
            self._stack.pop()
            handle.seconds = elapsed
            stat = self._timers.get(path)
            if stat is None:
                self._timers[path] = [elapsed, 1, elapsed]
            else:
                stat[0] += elapsed
                stat[1] += 1
                if elapsed > stat[2]:
                    stat[2] = elapsed

    def counter(self, name: str, delta: int = 1) -> int:
        """Add ``delta`` to counter ``name``; returns the new value."""
        value = self._counters.get(name, 0) + delta
        self._counters[name] = value
        return value

    def event(self, name: str, **fields: Any) -> None:
        """Append a trace event (monotonic ``at`` seconds since the
        registry was created, plus arbitrary JSON-safe fields)."""
        record: Dict[str, Any] = {
            "name": name,
            "at": time.perf_counter() - self._epoch,
        }
        if self._stack:
            record["span"] = self._stack[-1]
        record.update(fields)
        self._events.append(record)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def timer_seconds(self, path: str) -> float:
        """Total seconds accumulated under span ``path`` (0 if unused)."""
        stat = self._timers.get(path)
        return stat[0] if stat else 0.0

    def counter_value(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never touched)."""
        return self._counters.get(name, 0)

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The recorded event trace (live list; treat as read-only)."""
        return self._events

    def snapshot(self) -> Dict[str, Any]:
        """A plain-JSON view of the whole registry."""
        return {
            "name": self.name,
            "timers": {
                path: {"total_s": stat[0], "count": stat[1],
                       "max_s": stat[2]}
                for path, stat in sorted(self._timers.items())
            },
            "counters": dict(sorted(self._counters.items())),
            "events": list(self._events),
        }

    @classmethod
    def from_snapshot(cls, data: Dict[str, Any]) -> "Registry":
        """Rebuild a registry from :meth:`snapshot` output."""
        reg = cls(data.get("name", "default"))
        for path, stat in data.get("timers", {}).items():
            reg._timers[path] = [stat["total_s"], stat["count"],
                                 stat["max_s"]]
        reg._counters.update(data.get("counters", {}))
        reg._events.extend(data.get("events", []))
        return reg

    def merge_snapshot(self, data: Dict[str, Any],
                       prefix: str = "") -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The aggregation half of the process-pool protocol
        (:mod:`repro.parallel`): workers run under their own scoped
        registry, ship the snapshot home, and the parent merges it
        here.  Timer paths and counter names gain ``prefix/``; timer
        totals/counts add up and maxima combine; events are appended
        with a ``source`` field naming the prefix (their ``at``
        offsets stay relative to the *worker's* epoch — monotonic
        clocks do not compare across processes).
        """
        pre = f"{prefix.rstrip('/')}/" if prefix else ""
        for path, stat in data.get("timers", {}).items():
            merged = self._timers.get(pre + path)
            if merged is None:
                self._timers[pre + path] = [stat["total_s"],
                                            stat["count"],
                                            stat["max_s"]]
            else:
                merged[0] += stat["total_s"]
                merged[1] += stat["count"]
                if stat["max_s"] > merged[2]:
                    merged[2] = stat["max_s"]
        for name, value in data.get("counters", {}).items():
            self.counter(pre + name, value)
        for ev in data.get("events", []):
            record = dict(ev)
            if prefix:
                record["source"] = prefix
            self._events.append(record)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot serialized as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)

    def to_markdown(self) -> str:
        """Timers and counters rendered as markdown tables."""
        lines = [f"### Instrumentation — `{self.name}`", ""]
        if self._timers:
            lines += ["| span | total (s) | calls | max (s) |",
                      "|---|---:|---:|---:|"]
            for path, stat in sorted(self._timers.items()):
                lines.append(f"| `{path}` | {stat[0]:.4f} | {stat[1]} "
                             f"| {stat[2]:.4f} |")
            lines.append("")
        if self._counters:
            lines += ["| counter | value |", "|---|---:|"]
            for name, value in sorted(self._counters.items()):
                lines.append(f"| `{name}` | {value} |")
            lines.append("")
        if not self._timers and not self._counters:
            lines.append("(empty)")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop all recorded data (active span paths survive)."""
        self._timers.clear()
        self._counters.clear()
        self._events.clear()
        self._epoch = time.perf_counter()


#: The process-global default registry.
_default = Registry("global")
_current = _default


def get_registry() -> Registry:
    """The currently-active registry (the global one unless scoped)."""
    return _current


@contextmanager
def scoped(registry: Optional[Registry] = None) -> Iterator[Registry]:
    """Swap in a fresh (or the given) registry for the dynamic extent.

    Everything instrumented inside the block records into the scoped
    registry; the previous one is restored on exit.  This is how tests
    and the bench harness isolate their measurements from the global
    accumulator.
    """
    global _current
    previous = _current
    reg = registry if registry is not None else Registry("scoped")
    _current = reg
    try:
        yield reg
    finally:
        _current = previous


def span(name: str):
    """``with obs.span("engine/phase"):`` on the active registry."""
    return _current.span(name)


def counter(name: str, delta: int = 1) -> int:
    """Bump a counter on the active registry."""
    return _current.counter(name, delta)


def event(name: str, **fields: Any) -> None:
    """Record a trace event on the active registry."""
    _current.event(name, **fields)


def stopwatch() -> Stopwatch:
    """A fresh monotonic :class:`Stopwatch`."""
    return Stopwatch()
