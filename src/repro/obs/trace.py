"""Streaming structured-event tracing: JSONL sinks, progress, stitching.

The registry (:mod:`repro.obs.registry`) answers "where did the time
go" *after* a run from an in-memory snapshot.  This module answers it
*while* the run executes, and across processes:

* :class:`TraceSink` appends newline-delimited JSON records — span
  begin/end, counter deltas, instant events, progress heartbeats — to
  a file with bounded buffering.  Every record carries the writer's
  ``pid``, a run-scoped ``trace`` id, and a wall-clock timestamp
  ``t`` (the sink's ``time.time()`` epoch advanced by the monotonic
  clock, so ``t`` is NTP-step-proof within a process *and* directly
  comparable across processes).
* With no sink active the cost at every instrumentation point is one
  module-global load and an ``is None`` test — the strict
  "disabled = near-zero" fast path.
* :func:`progress` is the live-progress fan-out: hot loops (BMC
  frames, sweep rounds, recurrence steps) report where they are; the
  active sink records a ``P`` record and any registered hooks (e.g.
  the throttled stderr :class:`ProgressReporter` behind the CLIs'
  ``--progress`` flag) fire.
* Activation: programmatic (:func:`start_trace`) or via
  ``REPRO_TRACE=<path>`` (:func:`trace_from_env`).  Either way the
  base path and trace id are (re-)exported as
  ``REPRO_TRACE``/``REPRO_TRACE_ID``, so worker processes spawned by
  :mod:`repro.parallel` can call :func:`open_worker_sink`, which
  writes a sibling file ``<path>.<pid>`` sharing the parent's
  trace id (both variables travel through the environment);
  :func:`stitch_files` / :func:`discover_trace_files` reassemble the
  per-process files into one wall-clock-aligned timeline, and
  :func:`to_chrome` renders it as Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto loadable).

Record schema (``repro-trace-v1``) — common keys ``ty``, ``t``
(wall-clock seconds), ``pid``, ``tid``, ``trace``; then per type:

====  =============================================================
``M``  meta/header: ``schema``, ``role``, ``epoch``, ``argv``
``B``  span begin: ``path`` (hierarchical), ``name`` (leaf)
``E``  span end: ``path``, ``name``, ``dur`` (seconds)
``C``  counter delta: ``name``, ``delta``, ``value`` (running total)
``I``  instant event: ``name``, ``span`` (optional), ``fields``
``P``  progress heartbeat: ``source``, ``fields``
``Q``  per-query ledger record: ``fields`` (engine, frame/k,
       verdict, conflicts, seconds, ... — see
       :mod:`repro.obs.metrics`)
====  =============================================================

Stdlib-only, like everything under ``repro.obs``.
"""

from __future__ import annotations

import atexit
import glob as _glob
import json
import os
import sys
import threading
import time
import uuid
from typing import Any, Callable, Dict, IO, Iterable, List, Optional

from . import registry as _registry

__all__ = [
    "ProgressReporter",
    "TRACE_ENV",
    "TRACE_ID_ENV",
    "TRACE_SCHEMA",
    "TraceSink",
    "active_sink",
    "add_progress_hook",
    "discover_trace_files",
    "open_worker_sink",
    "progress",
    "progress_from_env",
    "read_trace",
    "remove_progress_hook",
    "setup_cli",
    "start_trace",
    "stitch_files",
    "stop_trace",
    "to_chrome",
    "trace_from_env",
]

#: Environment variable naming the trace output path.
TRACE_ENV = "REPRO_TRACE"
#: Environment variable carrying the run-scoped trace id to workers.
TRACE_ID_ENV = "REPRO_TRACE_ID"
#: Environment variable that turns the stderr progress reporter on
#: (set by the CLIs' ``--progress`` so pool workers inherit it).
PROGRESS_ENV = "REPRO_PROGRESS"
#: Schema tag written into every sink's meta record.
TRACE_SCHEMA = "repro-trace-v1"

#: Registered live-progress callbacks ``hook(source, fields)``.
_progress_hooks: List[Callable[[str, Dict[str, Any]], None]] = []

#: Small sequential per-thread ids for trace records.  Chrome's
#: (pid, tid) pair must distinguish concurrent threads, and truncating
#: ``threading.get_ident()`` to a few bits can collide two live
#: threads, interleaving their B/E records under one timeline row.
#: (An ident recycled after a thread dies maps to the same small id —
#: harmless, since the two threads never overlap in time.)
_tid_lock = threading.Lock()
_tid_by_ident: Dict[int, int] = {}


def _thread_tid() -> int:
    """This thread's small sequential trace tid (1-based)."""
    ident = threading.get_ident()
    tid = _tid_by_ident.get(ident)
    if tid is None:
        with _tid_lock:
            tid = _tid_by_ident.get(ident)
            if tid is None:
                tid = len(_tid_by_ident) + 1
                _tid_by_ident[ident] = tid
    return tid


class TraceSink:
    """A buffered JSONL writer for trace records.

    ``flush_every`` bounds the in-memory buffer: once that many
    records accumulate they are written out as one block (every write
    also reaches the OS via ``file.flush()``, so a killed process
    loses at most one buffer).  All methods are thread-safe.
    """

    def __init__(self, path: str, trace_id: Optional[str] = None,
                 role: str = "main", flush_every: int = 128,
                 mode: str = "w") -> None:
        self.path = path
        self.trace_id = trace_id or uuid.uuid4().hex[:12]
        self.role = role
        self.pid = os.getpid()
        self.flush_every = max(1, flush_every)
        self._epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()
        self._buffer: List[str] = []
        # Reentrant: counter() updates its running totals and emits
        # the record under one acquisition (see below).
        self._lock = threading.RLock()
        self._fh: Optional[IO[str]] = open(path, mode)
        self._counter_totals: Dict[str, int] = {}
        self._emit({
            "ty": "M",
            "schema": TRACE_SCHEMA,
            "role": role,
            "epoch": self._epoch_wall,
            "argv": list(sys.argv),
        })

    # ------------------------------------------------------------------
    def _now(self) -> float:
        """Wall-aligned monotonic timestamp (see module docs)."""
        return self._epoch_wall + (time.perf_counter()
                                   - self._epoch_perf)

    def _emit(self, record: Dict[str, Any]) -> None:
        record["t"] = self._now()
        record["pid"] = self.pid
        record["tid"] = _thread_tid()
        record["trace"] = self.trace_id
        try:
            line = json.dumps(record, sort_keys=False,
                              default=repr)
        except (TypeError, ValueError):  # pragma: no cover - defensive
            return
        with self._lock:
            if self._fh is None:
                return
            self._buffer.append(line)
            if len(self._buffer) >= self.flush_every:
                self._drain()

    def _drain(self) -> None:
        """Write the buffer out (caller holds the lock)."""
        if self._buffer and self._fh is not None:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._fh.flush()
            self._buffer.clear()

    # ------------------------------------------------------------------
    # Record constructors (called from the registry hot hooks)
    # ------------------------------------------------------------------
    def span_begin(self, path: str, name: str) -> None:
        self._emit({"ty": "B", "path": path, "name": name})

    def span_end(self, path: str, name: str, seconds: float) -> None:
        self._emit({"ty": "E", "path": path, "name": name,
                    "dur": seconds})

    def counter(self, name: str, delta: int, value: int) -> None:
        # Track the running total per name *as seen by this sink*:
        # registries swap (obs.scoped), so the registry-side value is
        # not monotonic over the file; the sink-side total is.  The
        # read-modify-write and the emit happen under one lock
        # acquisition (the lock is reentrant) so concurrent deltas
        # neither lose updates nor write out-of-order running values.
        with self._lock:
            total = self._counter_totals.get(name, 0) + delta
            self._counter_totals[name] = total
            self._emit({"ty": "C", "name": name, "delta": delta,
                        "value": total})

    def event(self, name: str, fields: Dict[str, Any],
              span: Optional[str] = None) -> None:
        record: Dict[str, Any] = {"ty": "I", "name": name,
                                  "fields": dict(fields)}
        if span is not None:
            record["span"] = span
        self._emit(record)

    def progress(self, source: str, fields: Dict[str, Any]) -> None:
        self._emit({"ty": "P", "source": source,
                    "fields": dict(fields)})

    def query(self, fields: Dict[str, Any]) -> None:
        """A per-query ledger record (:func:`repro.obs.metrics
        .record_query`) on the stitched timeline."""
        self._emit({"ty": "Q", "fields": dict(fields)})

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Force-write any buffered records."""
        with self._lock:
            self._drain()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            self._drain()
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    @property
    def closed(self) -> bool:
        return self._fh is None


# ----------------------------------------------------------------------
# Activation
# ----------------------------------------------------------------------
def active_sink() -> Optional[TraceSink]:
    """The currently-installed sink (None when tracing is off)."""
    return _registry._trace_sink


_atexit_installed = False


def _close_active_sink_at_exit() -> None:
    """Flush the active sink when the process ends.

    Short CLI runs never fill the sink's buffer, so without this hook
    a ``REPRO_TRACE`` run that emits fewer than ``flush_every``
    records would exit leaving an empty file.  Only this process's
    own sink is touched (a fork-inherited parent sink must not be
    flushed from a worker).
    """
    sink = _registry._trace_sink
    if sink is not None and sink.pid == os.getpid():
        sink.close()


def _install_atexit() -> None:
    global _atexit_installed
    if not _atexit_installed:
        atexit.register(_close_active_sink_at_exit)
        _atexit_installed = True


def start_trace(path: str, trace_id: Optional[str] = None,
                role: str = "main", mode: str = "w") -> TraceSink:
    """Open a sink at ``path`` and install it as the active sink.

    Replaces any previously-active sink (which is closed first, unless
    it was inherited from another process — see
    :func:`open_worker_sink`).  Exports ``REPRO_TRACE`` and
    ``REPRO_TRACE_ID`` so that worker processes spawned later join
    the same logical trace (:func:`open_worker_sink` discovers the
    base path and trace id through the environment) even when tracing
    was activated programmatically rather than via ``REPRO_TRACE``.
    Worker sinks themselves (:func:`open_worker_sink`) do not go
    through here, so the exported base path is always the parent's.
    """
    previous = _registry._trace_sink
    if previous is not None and previous.pid == os.getpid():
        previous.close()
    sink = TraceSink(path, trace_id=trace_id, role=role, mode=mode)
    _registry._set_trace_sink(sink)
    os.environ[TRACE_ENV] = path
    os.environ[TRACE_ID_ENV] = sink.trace_id
    _install_atexit()
    return sink


def stop_trace() -> Optional[str]:
    """Close and uninstall the active sink; returns its path.

    Un-exports the ``REPRO_TRACE``/``REPRO_TRACE_ID`` variables when
    they still point at this sink, so a later run in the same process
    (or a test) does not silently re-activate a finished trace.
    """
    sink = _registry._trace_sink
    if sink is None:
        return None
    _registry._set_trace_sink(None)
    if sink.pid == os.getpid():
        sink.close()
    if os.environ.get(TRACE_ENV) == sink.path:
        os.environ.pop(TRACE_ENV, None)
        os.environ.pop(TRACE_ID_ENV, None)
    return sink.path


def trace_from_env() -> Optional[TraceSink]:
    """Activate tracing from ``REPRO_TRACE`` (the CLI entry hook).

    No-op when the variable is unset or a sink is already active.
    Publishes the sink's trace id through ``REPRO_TRACE_ID`` so pool
    workers join the same logical trace.
    """
    path = os.environ.get(TRACE_ENV)
    if not path or _registry._trace_sink is not None:
        return None
    # start_trace() re-exports the path and publishes the trace id.
    return start_trace(path, trace_id=os.environ.get(TRACE_ID_ENV))


def open_worker_sink() -> Optional[TraceSink]:
    """Per-process sink for :mod:`repro.parallel` workers.

    Returns None (and leaves the active sink alone) when tracing is
    off, or when the active sink already belongs to *this* process
    (the ``jobs=1`` in-process path).  A sink object inherited through
    ``fork`` belongs to the parent — writing to its file descriptor
    would interleave with the parent's stream — so it is replaced,
    never flushed, by a fresh sink at ``<base>.<pid>`` (append mode:
    several tasks may run in one worker process) sharing the parent's
    trace id.
    """
    base = os.environ.get(TRACE_ENV)
    if not base:
        return None
    current = _registry._trace_sink
    if current is not None and current.pid == os.getpid():
        return None
    sink = TraceSink(f"{base}.{os.getpid()}",
                     trace_id=os.environ.get(TRACE_ID_ENV),
                     role="worker", mode="a")
    _registry._set_trace_sink(sink)
    _install_atexit()
    return sink


# ----------------------------------------------------------------------
# Progress
# ----------------------------------------------------------------------
def progress(source: str, **fields: Any) -> None:
    """Report live progress from a hot loop.

    Near-zero when disabled: with no active sink and no registered
    hooks this returns after two module-global checks.  Otherwise the
    sink records a ``P`` record and every hook is invoked with
    ``(source, fields)``.
    """
    sink = _registry._trace_sink
    if sink is None and not _progress_hooks:
        return
    if sink is not None:
        sink.progress(source, fields)
    for hook in list(_progress_hooks):
        hook(source, fields)


def add_progress_hook(
        hook: Callable[[str, Dict[str, Any]], None]) -> None:
    """Register a live-progress callback (idempotent per object)."""
    if hook not in _progress_hooks:
        _progress_hooks.append(hook)


def remove_progress_hook(
        hook: Callable[[str, Dict[str, Any]], None]) -> None:
    """Unregister a callback installed by :func:`add_progress_hook`."""
    try:
        _progress_hooks.remove(hook)
    except ValueError:
        pass


class ProgressReporter:
    """A throttled stderr line printer for :func:`progress` events.

    At most one line per ``interval`` seconds *per source* — a BMC
    emitting a frame every few milliseconds costs a handful of prints
    per second, while a sweep that reports once a minute is never
    suppressed.  ``interval=0`` prints everything (tests).

    Concurrency-safe: the throttle check-and-update runs under a
    lock, and each line reaches the stream as a **single**
    ``write()`` call (newline included) rather than ``print()``'s
    two — under ``--jobs > 1`` several threads' heartbeats land on
    the shared stderr pipe as whole lines instead of shearing
    mid-line into ``[bmc] fra[sweep] round=3\\nme=17``.
    """

    def __init__(self, stream: Optional[IO[str]] = None,
                 interval: float = 0.5) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._last: Dict[str, float] = {}
        self._lock = threading.Lock()

    def __call__(self, source: str, fields: Dict[str, Any]) -> None:
        now = time.perf_counter()
        with self._lock:
            last = self._last.get(source)
            if last is not None and now - last < self.interval:
                return
            self._last[source] = now
        text = " ".join(f"{key}={value}"
                        for key, value in fields.items())
        try:
            self.stream.write(f"[{source}] {text}\n")
            self.stream.flush()
        except ValueError:  # pragma: no cover - stream closed at exit
            pass


def progress_from_env() -> Optional[ProgressReporter]:
    """Install a stderr reporter when ``REPRO_PROGRESS`` is set.

    Used by worker processes (their environment is inherited from the
    parent CLI) and by :func:`setup_cli`.  Installs at most one
    env-driven reporter per process.
    """
    global _env_reporter
    if not os.environ.get(PROGRESS_ENV):
        return None
    if _env_reporter is None:
        _env_reporter = ProgressReporter()
        add_progress_hook(_env_reporter)
    return _env_reporter


_env_reporter: Optional[ProgressReporter] = None


def setup_cli(progress_flag: bool = False) -> None:
    """One-call observability bootstrap for the CLI entry points.

    Activates ``REPRO_TRACE`` tracing if requested by the environment
    and, when ``--progress`` was passed, exports ``REPRO_PROGRESS=1``
    (so pool workers print too) and installs the stderr reporter.
    """
    trace_from_env()
    if progress_flag:
        os.environ[PROGRESS_ENV] = "1"
    progress_from_env()


# ----------------------------------------------------------------------
# Reading, stitching, exporting
# ----------------------------------------------------------------------
def read_trace(path: str) -> List[Dict[str, Any]]:
    """Parse one JSONL trace file into a record list.

    Tolerates a truncated final line (a killed writer) by skipping
    anything that does not parse.
    """
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def discover_trace_files(base: str) -> List[str]:
    """``base`` plus every per-worker sibling ``base.<pid>``."""
    paths = [base] if os.path.exists(base) else []
    paths.extend(sorted(
        p for p in _glob.glob(base + ".*")
        if p.rsplit(".", 1)[-1].isdigit()))
    return paths


def stitch_files(paths: Iterable[str]) -> List[Dict[str, Any]]:
    """Merge several trace files into one time-ordered record list.

    Records are wall-clock stamped at the source, so stitching is a
    stable sort on ``t`` — per-file ordering (and hence per-thread
    span begin/end nesting) is preserved for equal timestamps.
    """
    records: List[Dict[str, Any]] = []
    for path in paths:
        records.extend(read_trace(path))
    records.sort(key=lambda record: record.get("t", 0.0))
    return records


def to_chrome(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Render records as Chrome trace-event JSON.

    The output loads in ``chrome://tracing`` and Perfetto: spans map
    to ``B``/``E`` duration events, counters to ``C`` tracks (running
    totals per pid), instants and progress heartbeats to ``i``
    events.  Timestamps are microseconds relative to the earliest
    record.
    """
    stamped = [r for r in records if "t" in r]
    stamped.sort(key=lambda record: record["t"])
    t0 = stamped[0]["t"] if stamped else 0.0
    events: List[Dict[str, Any]] = []
    totals: Dict[Any, int] = {}
    named_pids = set()
    for record in stamped:
        ty = record.get("ty")
        pid = record.get("pid", 0)
        tid = record.get("tid", 0)
        ts = (record["t"] - t0) * 1e6
        if ty == "M":
            if pid not in named_pids:
                named_pids.add(pid)
                events.append({
                    "ph": "M", "name": "process_name", "pid": pid,
                    "tid": 0,
                    "args": {"name": f"{record.get('role', 'main')} "
                                     f"(pid {pid})"},
                })
        elif ty == "B":
            events.append({
                "ph": "B", "name": record.get("name",
                                              record.get("path", "?")),
                "cat": "span", "pid": pid, "tid": tid, "ts": ts,
                "args": {"path": record.get("path", "")},
            })
        elif ty == "E":
            events.append({
                "ph": "E", "name": record.get("name",
                                              record.get("path", "?")),
                "cat": "span", "pid": pid, "tid": tid, "ts": ts,
            })
        elif ty == "C":
            name = record.get("name", "?")
            key = (pid, name)
            totals[key] = totals.get(key, 0) + record.get("delta", 0)
            events.append({
                "ph": "C", "name": name, "pid": pid, "tid": 0,
                "ts": ts, "args": {name: totals[key]},
            })
        elif ty == "I":
            events.append({
                "ph": "i", "s": "t",
                "name": record.get("name", "event"),
                "cat": "event", "pid": pid, "tid": tid, "ts": ts,
                "args": dict(record.get("fields", {})),
            })
        elif ty == "P":
            events.append({
                "ph": "i", "s": "p",
                "name": f"progress:{record.get('source', '?')}",
                "cat": "progress", "pid": pid, "tid": tid, "ts": ts,
                "args": dict(record.get("fields", {})),
            })
        elif ty == "Q":
            fields = dict(record.get("fields", {}))
            events.append({
                "ph": "i", "s": "t",
                "name": f"query:{fields.get('engine', '?')}",
                "cat": "query", "pid": pid, "tid": tid, "ts": ts,
                "args": fields,
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}
