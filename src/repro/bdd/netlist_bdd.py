"""Symbolic (BDD) views of netlists.

:class:`SymbolicNetlist` assigns BDD variables to the state elements and
primary inputs of a netlist, builds cone functions, and provides the
preimage operator that powers target enlargement (Section 3.4).

Variable ordering: state element ``i`` gets current-state level ``2*i``
and next-state level ``2*i + 1`` (interleaved, so current/next renaming
is order-preserving); primary inputs follow after all state variables.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..netlist import GateType, Netlist, topological_order
from .bdd import BDD, BDDNode


class SymbolicNetlist:
    """BDD manager bound to a netlist's state and input variables."""

    def __init__(self, net: Netlist, manager: Optional[BDD] = None) -> None:
        self.net = net
        self.bdd = manager or BDD()
        self.state_vars: Dict[int, int] = {}
        self.next_vars: Dict[int, int] = {}
        self.input_vars: Dict[int, int] = {}
        for i, vid in enumerate(net.state_elements):
            self.state_vars[vid] = 2 * i
            self.next_vars[vid] = 2 * i + 1
        base = 2 * len(self.state_vars)
        for j, vid in enumerate(net.inputs):
            self.input_vars[vid] = base + j

    # ------------------------------------------------------------------
    def cone(self, root: int,
             leaves: Optional[Dict[int, BDDNode]] = None) -> BDDNode:
        """BDD of ``root``'s combinational function.

        State elements map to their current-state variables and primary
        inputs to input variables unless overridden via ``leaves``.
        """
        bdd = self.bdd
        values: Dict[int, BDDNode] = dict(leaves or {})
        for vid in topological_order(self.net, [root]):
            if vid in values:
                continue
            gate = self.net.gate(vid)
            t = gate.type
            if gate.is_state:
                values[vid] = bdd.var(self.state_vars[vid])
                continue
            if t is GateType.INPUT:
                values[vid] = bdd.var(self.input_vars[vid])
                continue
            if t is GateType.CONST0:
                values[vid] = bdd.zero
                continue
            f = [values[x] for x in gate.fanins]
            if t is GateType.BUF:
                values[vid] = f[0]
            elif t is GateType.NOT:
                values[vid] = bdd.not_(f[0])
            elif t is GateType.AND:
                values[vid] = bdd.and_(*f)
            elif t is GateType.NAND:
                values[vid] = bdd.not_(bdd.and_(*f))
            elif t is GateType.OR:
                values[vid] = bdd.or_(*f)
            elif t is GateType.NOR:
                values[vid] = bdd.not_(bdd.or_(*f))
            elif t is GateType.XOR:
                out = f[0]
                for g in f[1:]:
                    out = bdd.xor(out, g)
                values[vid] = out
            elif t is GateType.XNOR:
                out = f[0]
                for g in f[1:]:
                    out = bdd.xor(out, g)
                values[vid] = bdd.not_(out)
            elif t is GateType.MUX:
                values[vid] = bdd.ite(f[0], f[1], f[2])
            else:  # pragma: no cover
                raise ValueError(f"cannot build BDD for gate type {t}")
        return values[root]

    def next_state_function(self, state_vid: int) -> BDDNode:
        """BDD of a state element's next-state function.

        For a register this is the cone of its ``next`` edge; for a
        latch (registered hold semantics) it is
        ``clock ? data : current``.
        """
        gate = self.net.gate(state_vid)
        if gate.type is GateType.REGISTER:
            return self.cone(gate.fanins[0])
        data, clock = gate.fanins
        return self.bdd.ite(
            self.cone(clock), self.cone(data),
            self.bdd.var(self.state_vars[state_vid]))

    def initial_states(self) -> BDDNode:
        """Characteristic function of the initial state set ``Z``.

        Nondeterministic initial values (input-driven init edges) leave
        the corresponding state bits unconstrained.
        """
        bdd = self.bdd
        out = bdd.one
        for vid in self.net.state_elements:
            gate = self.net.gate(vid)
            svar = bdd.var(self.state_vars[vid])
            if gate.type is GateType.REGISTER:
                init = self.cone(gate.fanins[1])
                out = bdd.and_(out, bdd.equiv(svar, init))
            else:
                out = bdd.and_(out, bdd.not_(svar))
        return out

    # ------------------------------------------------------------------
    def preimage(self, states: BDDNode,
                 scope: Optional[Sequence[int]] = None) -> BDDNode:
        """States with some input transitioning into ``states``.

        ``pre(S) = exists i . S[ s_r := f_r(s, i) ]`` computed by
        renaming ``S`` to next-state variables and vector-composing the
        next-state functions.  ``scope`` restricts which state elements
        are substituted (default: the support of ``states``).
        """
        bdd = self.bdd
        if scope is None:
            support = set(bdd.support(states))
            scope = [vid for vid, lvl in self.state_vars.items()
                     if lvl in support]
        rename = {self.state_vars[vid]: self.next_vars[vid]
                  for vid in scope}
        shifted = bdd.rename(states, rename)
        for vid in scope:
            shifted = bdd.compose(
                shifted, self.next_vars[vid], self.next_state_function(vid))
        input_levels = list(self.input_vars.values())
        return bdd.exists(input_levels, shifted)

    def states_satisfying(self, root: int) -> BDDNode:
        """States for which ``root`` may evaluate to 1 for some input."""
        f = self.cone(root)
        return self.bdd.exists(list(self.input_vars.values()), f)
