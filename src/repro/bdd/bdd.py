"""A reduced ordered binary decision diagram (ROBDD) package.

Provides the symbolic substrate for target enlargement (Section 3.4):
building characteristic functions of state sets, preimage computation
via relational products, and cube extraction for re-synthesizing
enlarged targets structurally.

Nodes are hash-consed triples ``(var, lo, hi)`` with terminal nodes
``ZERO`` and ``ONE``; ``lo`` is the ``var = 0`` cofactor.  Variables
are identified by their *level* (an integer): smaller levels are
tested first.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple


class BDDNode:
    """An immutable BDD node; identity equals semantic equality."""

    __slots__ = ("var", "lo", "hi")

    def __init__(self, var: int, lo: "BDDNode", hi: "BDDNode") -> None:
        self.var = var
        self.lo = lo
        self.hi = hi

    def __repr__(self) -> str:
        if self.lo is None:
            return f"<terminal {self.var}>"
        return f"<bdd v{self.var}>"


class BDD:
    """A BDD manager with unique and computed tables."""

    def __init__(self) -> None:
        self.zero = BDDNode(-1, None, None)
        self.one = BDDNode(-2, None, None)
        self._unique: Dict[Tuple[int, int, int], BDDNode] = {}
        self._ite_cache: Dict[Tuple[int, int, int], BDDNode] = {}
        self._quant_cache: Dict[Tuple, BDDNode] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def node(self, var: int, lo: BDDNode, hi: BDDNode) -> BDDNode:
        """The (reduced, hash-consed) node testing ``var``."""
        if lo is hi:
            return lo
        key = (var, id(lo), id(hi))
        found = self._unique.get(key)
        if found is None:
            found = BDDNode(var, lo, hi)
            self._unique[key] = found
        return found

    def var(self, level: int) -> BDDNode:
        """The function of the single variable at ``level``."""
        return self.node(level, self.zero, self.one)

    def nvar(self, level: int) -> BDDNode:
        """The negation of the variable at ``level``."""
        return self.node(level, self.one, self.zero)

    # ------------------------------------------------------------------
    # Core operation: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: BDDNode, g: BDDNode, h: BDDNode) -> BDDNode:
        """``f ? g : h`` — the universal BDD operation."""
        if f is self.one:
            return g
        if f is self.zero:
            return h
        if g is h:
            return g
        if g is self.one and h is self.zero:
            return f
        key = (id(f), id(g), id(h))
        found = self._ite_cache.get(key)
        if found is not None:
            return found
        top = min(x.var for x in (f, g, h) if x.lo is not None)
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        lo = self.ite(f0, g0, h0)
        hi = self.ite(f1, g1, h1)
        result = self.node(top, lo, hi)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, f: BDDNode, var: int) -> Tuple[BDDNode, BDDNode]:
        if f.lo is None or f.var != var:
            return f, f
        return f.lo, f.hi

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def not_(self, f: BDDNode) -> BDDNode:
        """Negation of ``f``."""
        return self.ite(f, self.zero, self.one)

    def and_(self, *fs: BDDNode) -> BDDNode:
        """Conjunction of the given functions."""
        out = self.one
        for f in fs:
            out = self.ite(out, f, self.zero)
        return out

    def or_(self, *fs: BDDNode) -> BDDNode:
        """Disjunction of the given functions."""
        out = self.zero
        for f in fs:
            out = self.ite(out, self.one, f)
        return out

    def xor(self, f: BDDNode, g: BDDNode) -> BDDNode:
        """Exclusive or of ``f`` and ``g``."""
        return self.ite(f, self.not_(g), g)

    def implies(self, f: BDDNode, g: BDDNode) -> BDDNode:
        """``f -> g``."""
        return self.ite(f, g, self.one)

    def equiv(self, f: BDDNode, g: BDDNode) -> BDDNode:
        """``f <-> g``."""
        return self.ite(f, g, self.not_(g))

    # ------------------------------------------------------------------
    # Quantification and substitution
    # ------------------------------------------------------------------
    def exists(self, variables: Iterable[int], f: BDDNode) -> BDDNode:
        """Existentially quantify ``variables`` out of ``f``."""
        var_set = frozenset(variables)
        return self._exists(var_set, f)

    def _exists(self, var_set: frozenset, f: BDDNode) -> BDDNode:
        if f.lo is None:
            return f
        key = ("E", var_set, id(f))
        found = self._quant_cache.get(key)
        if found is not None:
            return found
        lo = self._exists(var_set, f.lo)
        hi = self._exists(var_set, f.hi)
        if f.var in var_set:
            result = self.or_(lo, hi)
        else:
            result = self.node(f.var, lo, hi)
        self._quant_cache[key] = result
        return result

    def forall(self, variables: Iterable[int], f: BDDNode) -> BDDNode:
        """Universally quantify ``variables`` out of ``f``."""
        return self.not_(self.exists(variables, self.not_(f)))

    def and_exists(
        self, variables: Iterable[int], f: BDDNode, g: BDDNode
    ) -> BDDNode:
        """Relational product ``exists variables . f AND g``."""
        var_set = frozenset(variables)
        return self._and_exists(var_set, f, g)

    def _and_exists(self, var_set: frozenset, f: BDDNode,
                    g: BDDNode) -> BDDNode:
        if f is self.zero or g is self.zero:
            return self.zero
        if f is self.one and g is self.one:
            return self.one
        if f is self.one:
            return self._exists(var_set, g)
        if g is self.one:
            return self._exists(var_set, f)
        key = ("AE", var_set, id(f), id(g))
        found = self._quant_cache.get(key)
        if found is not None:
            return found
        top = min(x.var for x in (f, g) if x.lo is not None)
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        lo = self._and_exists(var_set, f0, g0)
        hi = self._and_exists(var_set, f1, g1)
        if top in var_set:
            result = self.or_(lo, hi)
        else:
            result = self.node(top, lo, hi)
        self._quant_cache[key] = result
        return result

    def compose(self, f: BDDNode, var: int, g: BDDNode) -> BDDNode:
        """Substitute function ``g`` for variable ``var`` in ``f``."""
        if f.lo is None:
            return f
        key = ("C", id(f), var, id(g))
        found = self._quant_cache.get(key)
        if found is not None:
            return found
        if f.var == var:
            result = self.ite(g, f.hi, f.lo)
        elif f.var > var:
            result = f
        else:
            lo = self.compose(f.lo, var, g)
            hi = self.compose(f.hi, var, g)
            result = self.ite(self.var(f.var), hi, lo)
        self._quant_cache[key] = result
        return result

    def rename(self, f: BDDNode, mapping: Dict[int, int]) -> BDDNode:
        """Rename variables; mapping must be order-preserving."""
        if f.lo is None:
            return f
        items = sorted(mapping.items())
        levels = [a for a, _ in items]
        images = [b for _, b in items]
        if images != sorted(images):
            raise ValueError("rename mapping must preserve variable order")
        return self._rename(f, mapping)

    def _rename(self, f: BDDNode, mapping: Dict[int, int]) -> BDDNode:
        if f.lo is None:
            return f
        key = ("R", id(f), tuple(sorted(mapping.items())))
        found = self._quant_cache.get(key)
        if found is not None:
            return found
        lo = self._rename(f.lo, mapping)
        hi = self._rename(f.hi, mapping)
        result = self.node(mapping.get(f.var, f.var), lo, hi)
        self._quant_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def evaluate(self, f: BDDNode, assignment: Dict[int, bool]) -> bool:
        """Evaluate ``f`` under a total assignment of its support."""
        node = f
        while node.lo is not None:
            node = node.hi if assignment.get(node.var, False) else node.lo
        return node is self.one

    def support(self, f: BDDNode) -> List[int]:
        """Sorted list of variable levels ``f`` depends on."""
        out = set()
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if id(node) in seen or node.lo is None:
                continue
            seen.add(id(node))
            out.add(node.var)
            stack.append(node.lo)
            stack.append(node.hi)
        return sorted(out)

    def count_nodes(self, f: BDDNode) -> int:
        """Number of internal nodes of ``f``."""
        seen = set()
        stack = [f]
        count = 0
        while stack:
            node = stack.pop()
            if id(node) in seen or node.lo is None:
                continue
            seen.add(id(node))
            count += 1
            stack.append(node.lo)
            stack.append(node.hi)
        return count

    def sat_count(self, f: BDDNode, num_vars: int) -> int:
        """Number of satisfying assignments over ``num_vars`` variables
        at levels ``0 .. num_vars - 1``."""
        cache: Dict[int, int] = {}

        def walk(node: BDDNode, level: int) -> int:
            if node is self.zero:
                return 0
            if node is self.one:
                return 1 << (num_vars - level)
            key = (id(node), level)
            if key in cache:
                return cache[key]
            skip = node.var - level
            total = (walk(node.lo, node.var + 1)
                     + walk(node.hi, node.var + 1)) << skip
            cache[key] = total
            return total

        return walk(f, 0)

    def pick_cube(self, f: BDDNode) -> Optional[Dict[int, bool]]:
        """One satisfying partial assignment, or None if ``f`` is zero."""
        if f is self.zero:
            return None
        cube: Dict[int, bool] = {}
        node = f
        while node.lo is not None:
            if node.lo is not self.zero:
                cube[node.var] = False
                node = node.lo
            else:
                cube[node.var] = True
                node = node.hi
        return cube

    def cubes(self, f: BDDNode) -> List[Dict[int, bool]]:
        """All prime-path cubes of ``f`` (one per 1-path of the DAG)."""
        out: List[Dict[int, bool]] = []

        def walk(node: BDDNode, partial: Dict[int, bool]) -> None:
            if node is self.zero:
                return
            if node is self.one:
                out.append(dict(partial))
                return
            partial[node.var] = False
            walk(node.lo, partial)
            partial[node.var] = True
            walk(node.hi, partial)
            del partial[node.var]

        walk(f, {})
        return out
