"""ROBDD package and symbolic netlist views."""

from .bdd import BDD, BDDNode
from .netlist_bdd import SymbolicNetlist

__all__ = ["BDD", "BDDNode", "SymbolicNetlist"]
