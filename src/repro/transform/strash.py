"""STRASH: structural redundancy removal through an AIG round-trip.

Section 3.1 notes that semantically-equivalent vertices "may be
performed efficiently by structural analysis or by BDD and SAT
sweeping".  This is the *structural analysis* half: the netlist is
normalized into an and-inverter graph with complemented edges, where
hash-consing merges everything that is structurally identical modulo
inverter placement and De Morgan duality (e.g. ``NAND(a, b)`` and
``NOT(AND(b, a))``, or ``NOR`` vs ``AND`` of complements) — strictly
more merging than the gate-level hash-consing of
:func:`repro.netlist.rebuild.rebuild`, at a fraction of the cost of
the inductive SAT sweep.  Trace-equivalence preserving (Theorem 1).
"""

from __future__ import annotations

from .. import obs
from ..core.record import StepKind, TransformResult, TransformStep
from ..netlist import Netlist, aig_to_netlist, netlist_to_aig, rebuild


def strash(net: Netlist, name_suffix: str = "strash") -> TransformResult:
    """Normalize ``net`` through an AIG and back.

    Requires a register-based netlist with constant initial values
    (the AIG restrictions); raises
    :class:`~repro.netlist.types.NetlistError` otherwise.

    Publishes ``strash.noop`` when the result is structurally
    identical to the input (compared by the memoized
    :meth:`~repro.netlist.netlist.Netlist.signature`, the same digest
    that keys the frame-template cache — a no-op round-trip keeps the
    cached template hot).
    """
    aig, lit_of = netlist_to_aig(net)
    back, vertex_of = aig_to_netlist(aig)

    # aig_to_netlist adopts AIG outputs as targets/outputs; rebuild the
    # original target/output lists instead so the step maps cleanly.
    def map_vertex(vid: int) -> int:
        lit = lit_of[vid]
        base = vertex_of[lit >> 1]
        if lit & 1:
            # Complemented: the netlist-side NOT may or may not exist;
            # create it deterministically.
            from ..netlist import GateType

            for fanout, gate in back.gates():
                if gate.type is GateType.NOT and gate.fanins == (base,):
                    return fanout
            return back.add_gate(GateType.NOT, (base,))
        return base

    back.targets = []
    back.outputs = []
    mapped = {}
    for t in net.targets:
        mapped[t] = map_vertex(t)
        back.add_target(mapped[t])
    for o in net.outputs:
        if o not in mapped:
            mapped[o] = map_vertex(o)
        back.add_output(mapped[o])
    out, remap = rebuild(back, name=f"{net.name}-{name_suffix}")
    if out.signature() == net.signature():
        obs.counter("strash.noop")
    step = TransformStep(
        name="STRASH",
        kind=StepKind.TRACE_EQUIVALENT,
        target_map={t: remap.get(mapped[t]) for t in net.targets},
    )
    mapping = {vid: remap[new] for vid, new in mapped.items()
               if new in remap}
    return TransformResult(netlist=out, step=step, mapping=mapping)
