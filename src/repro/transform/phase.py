"""Phase abstraction of latch-based netlists (Section 3.3).

"Phase abstraction [10, 17] is a technique to yield a register-based
netlist from one composed of level-sensitive latches ... applicable to
netlists in which the state elements may be c-colored such that state
elements of color i may only combinationally fan out to state elements
of color (i + 1) mod c."

We reproduce the clock-driven variant: each latch's clock edge must
resolve to one of ``c`` global phase-clock primary inputs; the latch's
color is its clock index.  Latches of the kept color (the last phase)
become registers clocked once per folded step; latches of other colors
become transparent buffers of their data cones; the clock inputs
disappear.  The resulting netlist folds time modulo ``c``, so by
Theorem 3 a diameter bound ``d`` on it yields ``c * d`` on the
original.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.record import StepKind, TransformResult, TransformStep
from ..netlist import (
    Gate,
    GateType,
    Netlist,
    NetlistError,
    rebuild,
    state_support,
)


def infer_latch_colors(net: Netlist) -> Dict[int, int]:
    """Color latches by their clock input, validating the c-coloring.

    Requires every latch clock to be (a buffer chain to) a primary
    input; clock inputs are ordered by vertex id, and the coloring must
    satisfy: latches of color ``i`` only combinationally fan out to
    latches of color ``(i + 1) mod c``.
    """
    clocks: List[int] = []
    color_of: Dict[int, int] = {}
    for vid in net.latches:
        clock = net.gate(vid).fanins[1]
        while net.gate(clock).type is GateType.BUF:
            clock = net.gate(clock).fanins[0]
        if net.gate(clock).type is not GateType.INPUT:
            raise NetlistError(
                f"latch {vid} clock is not a phase input; cannot "
                f"phase-abstract")
        if clock not in clocks:
            clocks.append(clock)
        color_of[vid] = clocks.index(clock)
    c = len(clocks)
    if c == 0:
        raise NetlistError("netlist has no latches to phase-abstract")
    for vid in net.latches:
        data = net.gate(vid).fanins[0]
        for dep in state_support(net, data):
            if net.gate(dep).type is GateType.LATCH:
                if c == 1:
                    raise NetlistError(
                        "single-phase latch-to-latch path: transparency "
                        "cannot be phase-abstracted")
                expected = (color_of[dep] + 1) % c
                if color_of[vid] != expected:
                    raise NetlistError(
                        f"latch coloring violated: color-{color_of[dep]} "
                        f"latch feeds color-{color_of[vid]} latch")
    return color_of


def phase_abstract(net: Netlist,
                   keep_color: Optional[int] = None,
                   name_suffix: str = "phase") -> TransformResult:
    """Phase-abstract a latch-based netlist into a register netlist.

    ``keep_color`` selects the phase whose latches become registers
    (default: the highest color, i.e. the last phase of the folded
    step).  Returns a state-folding step with ``factor = c``.
    """
    colors = infer_latch_colors(net)
    c = max(colors.values()) + 1
    if keep_color is None:
        keep_color = c - 1

    work = net.copy()
    const0 = work.const0()
    for vid in net.latches:
        data, _clock = work.gate(vid).fanins
        if colors[vid] == keep_color:
            # Kept latch -> register sampling its (now transparent)
            # data cone once per folded step; latches initialize to 0.
            work.replace_gate(vid, Gate(GateType.REGISTER, (data, const0),
                                        work.gate(vid).name))
        else:
            work.replace_gate(vid, Gate(GateType.BUF, (data,),
                                        work.gate(vid).name))
    out, mapping = rebuild(work, name=f"{net.name}-{name_suffix}")
    step = TransformStep(
        name="PHASE",
        kind=StepKind.STATE_FOLD,
        target_map={t: mapping.get(t) for t in net.targets},
        factor=c,
    )
    return TransformResult(netlist=out, step=step, mapping=mapping)
