"""C-slow abstraction of register-based netlists (Section 3.3).

"C-slow abstraction [21, 17] is directly applicable to register-based
netlists ... in which the state elements may be c-colored such that
state elements of color i may only combinationally fan out to state
elements of color (i + 1) mod c.  By eliminating all but one color of
state elements (transforming others into combinational logic), both
abstractions reduce the number of state elements of a netlist by a
factor of 1/c or greater.  The semantic effect of these abstractions is
to temporally fold the resulting netlist modulo-c."

The coloring is inferred from the register dependency graph by BFS
(consistency-checked); registers of non-kept colors are replaced by
transparent buffers of their next-state cones.  As with the engines of
[21, 17], the abstraction assumes a *proper* c-slow design: eliminated
registers carry pipeline copies whose initial values are inert (the
generators in :mod:`repro.gen` construct such designs).  The folded
netlist satisfies Theorem 3: ``d(U) <= c * d(Ũ)``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from ..core.record import StepKind, TransformResult, TransformStep
from ..netlist import (
    Gate,
    GateType,
    Netlist,
    NetlistError,
    rebuild,
    register_graph,
)


def max_cslow_factor(net: Netlist) -> int:
    """The largest ``c`` for which the netlist is c-slow.

    Footnote of Section 3.3: "c may readily be bounded by |R|.  In
    [17], a netlist preprocessing technique is formalized to allow
    c-slow abstraction to be applied to any netlist where each
    directed cycle comprises a factor of c > 1 registers."  The
    maximal such factor is the gcd of all directed-cycle lengths of
    the register dependency graph, computed by DFS potentials: an
    edge closing a cycle contributes ``|p(r) + 1 - p(s)|`` to the gcd.

    Returns 0 when the register graph is acyclic (every ``c`` works —
    there is nothing to fold), and 1 when cycles exist but share no
    common factor.
    """
    import math

    graph = register_graph(net)
    # The coloring constraints are color(s) = color(r) + 1 (mod c) per
    # edge: solvable iff every *undirected* cycle's signed edge sum is
    # divisible by c, so traverse undirected with signed potentials.
    undirected: Dict[int, list] = {r: [] for r in graph}
    for reg, succs in graph.items():
        for succ in succs:
            undirected[reg].append((succ, 1))
            undirected[succ].append((reg, -1))
    potential: Dict[int, int] = {}
    g = 0
    for root in undirected:
        if root in potential:
            continue
        potential[root] = 0
        stack = [root]
        while stack:
            reg = stack.pop()
            for other, sign in undirected[reg]:
                expected = potential[reg] + sign
                if other in potential:
                    g = math.gcd(g, abs(expected - potential[other]))
                else:
                    potential[other] = expected
                    stack.append(other)
    return g


def infer_cslow_coloring(net: Netlist, c: int) -> Dict[int, int]:
    """Color registers 0..c-1 so edges advance color by 1 mod c.

    BFS over the register dependency graph; raises
    :class:`NetlistError` when no consistent coloring exists (e.g. a
    cycle whose length is not a multiple of ``c``).
    """
    if c < 2:
        raise NetlistError("c-slow abstraction requires c >= 2")
    if net.latches:
        raise NetlistError("c-slow abstraction requires a register-based "
                           "netlist")
    graph = register_graph(net)
    # Solve color(s) = color(r) + 1 (mod c) by signed undirected BFS
    # (successor-only traversal would mis-root joined pipelines whose
    # free offset must be negative).
    undirected: Dict[int, list] = {r: [] for r in graph}
    for reg, succs in graph.items():
        for succ in succs:
            undirected[reg].append((succ, 1))
            undirected[succ].append((reg, -1))
    colors: Dict[int, int] = {}
    for root in undirected:
        if root in colors:
            continue
        colors[root] = 0
        frontier = deque([root])
        while frontier:
            reg = frontier.popleft()
            for other, sign in undirected[reg]:
                expected = (colors[reg] + sign) % c
                if other in colors:
                    if colors[other] != expected:
                        raise NetlistError(
                            f"netlist is not {c}-slow: register {other} "
                            f"needs colors {colors[other]} and {expected}")
                else:
                    colors[other] = expected
                    frontier.append(other)
    for reg, succs in graph.items():
        for succ in succs:
            if (colors[reg] + 1) % c != colors[succ]:
                raise NetlistError(  # pragma: no cover - BFS validates
                    f"netlist is not {c}-slow at edge {reg}->{succ}")
    return colors


def cslow_abstract(net: Netlist, c: Optional[int] = None,
                   keep_color: Optional[int] = None,
                   name_suffix: str = "cslow") -> TransformResult:
    """Fold a proper c-slow netlist modulo ``c``.

    ``c=None`` infers the maximal factor via
    :func:`max_cslow_factor` (raising when no ``c >= 2`` exists).
    Registers of ``keep_color`` (default 0) survive; all others become
    transparent buffers of their next-state cones.  Returns a
    state-folding step with ``factor = c`` (Theorem 3).
    """
    if c is None:
        c = max_cslow_factor(net)
        if c < 2:
            raise NetlistError(
                f"no c-slow factor >= 2 exists (max factor {c})")
    colors = infer_cslow_coloring(net, c)
    if keep_color is None:
        keep_color = 0

    work = net.copy()
    for vid, color in colors.items():
        if color == keep_color:
            continue
        nxt, _init = work.gate(vid).fanins
        work.replace_gate(vid, Gate(GateType.BUF, (nxt,),
                                    work.gate(vid).name))
    out, mapping = rebuild(work, name=f"{net.name}-{name_suffix}")
    step = TransformStep(
        name="CSLOW",
        kind=StepKind.STATE_FOLD,
        target_map={t: mapping.get(t) for t in net.targets},
        factor=c,
    )
    return TransformResult(netlist=out, step=step, mapping=mapping)
