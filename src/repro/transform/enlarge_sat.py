"""SAT-based target enlargement (all-solutions preimage enumeration).

The BDD enlargement of :mod:`repro.transform.enlarge` is the classic
implementation; prior work the paper cites ([24]) advocates keeping
the enlarged target *structural* for "better synergy with simulation
and SAT-based analysis".  This variant never builds a BDD: each
preimage is computed by all-solutions SAT enumeration — solve for a
(state, input) pair driving into the current frontier, generalize the
state part to a cube by dropping literals that are not needed, block
it, repeat — and the frontier is re-synthesized as an OR of cube ANDs.

Exponential in the worst case like any preimage computation, but the
cube generalization keeps typical frontiers compact, and the result is
bit-for-bit a netlist (Theorem 4 applies unchanged).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import obs
from ..core.record import StepKind, TransformResult, TransformStep
from ..netlist import GateType, Netlist, rebuild
from ..sat import SAT, CnfSink, Solver, encode_frame, encode_mux, \
    lit_not, pos
from ..sat.template import get_template, netlist_has_const0, \
    templates_enabled

#: A cube: state-element vid -> required value.
Cube = Dict[int, int]


def _frontier_lit(sink: CnfSink, state_lits: Dict[int, int],
                  cubes: List[Cube]) -> int:
    """Literal asserting the state (given by lits) lies in the cubes."""
    if not cubes:
        return sink.false_lit
    terms = []
    for cube in cubes:
        lits = [state_lits[vid] if value else lit_not(state_lits[vid])
                for vid, value in cube.items()]
        if not lits:
            return sink.true_lit
        term = pos(sink.new_var())
        for lit in lits:
            sink.add_clause([lit_not(term), lit])
        sink.add_clause([term] + [lit_not(x) for x in lits])
        terms.append(term)
    out = pos(sink.new_var())
    sink.add_clause([lit_not(out)] + terms)
    for term in terms:
        sink.add_clause([out, lit_not(term)])
    return out


def _enumerate_preimage(net: Netlist, cubes: List[Cube],
                        block_cubes: List[Cube],
                        max_cubes: int) -> Optional[List[Cube]]:
    """States with a transition into ``cubes``, minus ``block_cubes``.

    Returns None when the enumeration exceeds ``max_cubes`` (caller
    falls back or aborts).
    """
    solver = Solver()
    sink = CnfSink(solver)
    tmpl = get_template(net, "frame") if templates_enabled() else None
    state0 = {vid: pos(solver.new_var()) for vid in net.state_elements}
    if (tmpl.has_const0 if tmpl is not None
            else netlist_has_const0(net)):
        _ = sink.true_lit  # pin before the frame (parity, see Unrolling)
    with obs.span("encode"):
        if tmpl is not None:
            lits, nxt = tmpl.stamp(sink, state0)
            assert nxt is not None
            state1: Dict[int, int] = nxt
        else:
            lits = encode_frame(net, sink, dict(state0))
            state1 = {}
            for vid in net.state_elements:
                gate = net.gate(vid)
                if gate.type is GateType.REGISTER:
                    state1[vid] = lits[gate.fanins[0]]
                else:
                    data, clock = gate.fanins
                    out = pos(solver.new_var())
                    encode_mux(sink, out, lits[clock], lits[data],
                               lits[vid])
                    state1[vid] = out
    solver.add_clause([_frontier_lit(sink, state1, cubes)])
    # Exclude already-covered states (inductive simplification).
    for cube in block_cubes:
        solver.add_clause([
            lit_not(state0[vid]) if value else state0[vid]
            for vid, value in cube.items()])

    # Sound cube generalization: preimage membership is a function of
    # the state variables feeding the next-state cones of the frontier
    # cubes' variables only — assignments to anything else project out.
    relevant = _relevant_state_vars(net, cubes)
    found: List[Cube] = []
    while True:
        if solver.solve() != SAT:
            return found
        model = solver.model
        cube = {vid: int(model[lit >> 1])
                for vid, lit in state0.items() if vid in relevant}
        found.append(cube)
        if not cube:
            return found  # universal preimage: the empty cube covers
        if len(found) > max_cubes:
            return None
        # Block the cube (blocks its whole projection fiber).
        solver.add_clause([
            lit_not(state0[vid]) if value else state0[vid]
            for vid, value in cube.items()])


def _relevant_state_vars(net: Netlist, cubes: List[Cube]) -> set:
    """State variables the frontier-membership function depends on."""
    from ..netlist import state_support

    relevant = set()
    for cube in cubes:
        for vid in cube:
            gate = net.gate(vid)
            if gate.type is GateType.REGISTER:
                relevant |= state_support(net, gate.fanins[0])
            else:  # latch hold-mux: depends on data, clock and itself
                relevant |= state_support(net, gate.fanins[0])
                relevant |= state_support(net, gate.fanins[1])
                relevant.add(vid)
    return relevant


def enlarge_target_sat(net: Netlist, target: Optional[int] = None,
                       k: int = 1, max_cubes: int = 256,
                       name_suffix: str = "enlsat") -> TransformResult:
    """SAT-enumeration variant of :func:`repro.transform.enlarge.
    enlarge_target`; same contract (Theorem 4, ``depth = k``).

    Raises :class:`ValueError` when a preimage exceeds ``max_cubes``
    cubes (use the BDD variant or raise the budget).
    """
    if target is None:
        if not net.targets:
            raise ValueError("netlist has no targets")
        target = net.targets[0]
    if k < 0:
        raise ValueError("enlargement depth must be >= 0")

    # S_0: states where the target can be asserted now, enumerated the
    # same way over a single frame (no next-state tail needed).
    solver = Solver()
    sink = CnfSink(solver)
    tmpl = get_template(net, "frame") if templates_enabled() else None
    state_lits = {vid: pos(solver.new_var())
                  for vid in net.state_elements}
    if (tmpl.has_const0 if tmpl is not None
            else netlist_has_const0(net)):
        _ = sink.true_lit
    with obs.span("encode"):
        if tmpl is not None:
            lits, _ = tmpl.stamp(sink, state_lits, with_next=False)
        else:
            lits = encode_frame(net, sink, dict(state_lits))
    solver.add_clause([lits[target]])
    from ..netlist import state_support

    target_support = state_support(net, target)
    frontier: List[Cube] = []
    while True:
        if solver.solve() != SAT:
            break
        model = solver.model
        cube = {vid: int(model[lit >> 1])
                for vid, lit in state_lits.items()
                if vid in target_support}
        frontier.append(cube)
        if len(frontier) > max_cubes:
            raise ValueError("S_0 exceeds the cube budget")
        blocking = [lit_not(state_lits[vid]) if value else state_lits[vid]
                    for vid, value in cube.items()]
        if not blocking:
            break  # the target is state-independent: S_0 is universal
        solver.add_clause(blocking)

    covered: List[Cube] = list(frontier)
    for _ in range(k):
        nxt = _enumerate_preimage(net, frontier, covered, max_cubes)
        if nxt is None:
            raise ValueError("preimage exceeds the cube budget")
        frontier = nxt
        covered = covered + nxt

    work = net.copy()
    # Resynthesize the frontier structurally: OR of cube ANDs.
    const0 = work.const0()
    or_terms: List[int] = []
    not_cache: Dict[int, int] = {}

    def negate(vid: int) -> int:
        if vid not in not_cache:
            not_cache[vid] = work.add_gate(GateType.NOT, (vid,))
        return not_cache[vid]

    for cube in frontier:
        literals = [vid if value else negate(vid)
                    for vid, value in cube.items()]
        if not literals:
            or_terms = [work.add_gate(GateType.NOT, (const0,))]
            break
        if len(literals) == 1:
            or_terms.append(literals[0])
        else:
            or_terms.append(work.add_gate(GateType.AND, tuple(literals)))
    if not or_terms:
        enlarged = const0
    elif len(or_terms) == 1:
        enlarged = or_terms[0]
    else:
        enlarged = work.add_gate(GateType.OR, tuple(or_terms))
    work.targets = [enlarged]
    out, mapping = rebuild(work, name=f"{net.name}-{name_suffix}")
    step = TransformStep(
        name=f"ENLARGE-SAT[{k}]",
        kind=StepKind.TARGET_ENLARGE,
        target_map={t: mapping.get(enlarged) for t in net.targets},
        depth=k,
    )
    return TransformResult(netlist=out, step=step, mapping=mapping)
