"""Counterexample-guided localization refinement.

Section 3.5 establishes that localization's diameter bounds do not
back-translate — but its *unreachability verdicts* do ("any target
assessed to be unreachable after overapproximation is guaranteed to be
unreachable before").  This module combines that one-way soundness
with the rest of the system into the classic CEGAR loop:

1. keep only the registers within ``radius`` register-levels of the
   target; localize the rest (they become free inputs);
2. bound the *abstraction's* diameter structurally — the bound is
   valid for the abstraction, so a clean BMC window of that depth
   proves the abstract target unreachable, which transfers to the
   original netlist;
3. an abstract counterexample is checked on the original netlist with
   an exact bounded query; a real hit concludes FALSIFIED, a spurious
   one widens the radius and repeats.

The loop terminates: the radius eventually restores every register,
at which point the "abstraction" is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..diameter.structural import StructuralAnalysis
from ..netlist import Netlist
from ..resilience import Budget, Cancelled
from ..unroll import ABORTED, FALSIFIED, PROVEN, bmc
from .approx import localize_by_distance

#: Loop outcomes.
REFINED_OUT = "exhausted"  # gave up (depth budget) without an answer


@dataclass
class LocalizationResult:
    """Outcome of the localization-refinement loop."""

    status: str  # 'proven' | 'falsified' | 'exhausted'
    iterations: int
    final_radius: int
    abstraction: Optional[Netlist] = None
    abstraction_registers: int = 0
    history: List[str] = field(default_factory=list)
    counterexample_depth: Optional[int] = None
    exhaustion_reason: Optional[str] = None


def localization_refinement(
    net: Netlist,
    target: Optional[int] = None,
    initial_radius: int = 1,
    max_depth: int = 64,
    conflict_budget: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> LocalizationResult:
    """Run the CEGAR loop for one target; see the module docstring.

    ``budget`` is checked per refinement iteration and threaded into
    the inner BMC runs; exhaustion returns an ``exhausted`` result
    carrying a structured ``exhaustion_reason`` (which is sound — the
    loop only ever concludes from definitive inner verdicts),
    cancellation raises :class:`Cancelled`.
    """
    if target is None:
        if not net.targets:
            raise ValueError("netlist has no targets")
        target = net.targets[0]
    total_registers = len(net.state_elements)
    radius = initial_radius
    iterations = 0
    history: List[str] = []
    while True:
        iterations += 1
        if budget is not None:
            if budget.cancelled:
                raise Cancelled(budget_name=budget.name)
            reason = budget.exhausted()
            if reason is not None:
                return LocalizationResult(
                    status=REFINED_OUT, iterations=iterations,
                    final_radius=radius, history=history,
                    exhaustion_reason=reason)
        abstraction_result = localize_by_distance(net, target, radius)
        abstraction = abstraction_result.netlist
        abs_target = abstraction_result.step.target_map[target]
        if abs_target is None:  # pragma: no cover - targets never drop
            raise RuntimeError("target vanished during localization")

        exact = len(abstraction.state_elements) >= total_registers
        bound = StructuralAnalysis(abstraction, budget=budget) \
            .bound(abs_target)
        window = min(bound, max_depth)
        check = bmc(abstraction, abs_target, max_depth=window,
                    complete_bound=bound if bound <= max_depth else None,
                    conflict_budget=conflict_budget, budget=budget)
        if check.status == ABORTED:
            return LocalizationResult(
                status=REFINED_OUT, iterations=iterations,
                final_radius=radius, abstraction=abstraction,
                abstraction_registers=len(abstraction.state_elements),
                history=history,
                exhaustion_reason=check.exhaustion_reason)
        history.append(
            f"radius={radius} regs={len(abstraction.state_elements)}"
            f"/{total_registers} bound={bound} -> {check.status}")

        if check.status == PROVEN:
            return LocalizationResult(
                status="proven", iterations=iterations,
                final_radius=radius, abstraction=abstraction,
                abstraction_registers=len(abstraction.state_elements),
                history=history)
        if check.status == FALSIFIED:
            depth = check.counterexample.depth
            if exact:
                return LocalizationResult(
                    status="falsified", iterations=iterations,
                    final_radius=radius, abstraction=abstraction,
                    abstraction_registers=len(abstraction.state_elements),
                    history=history, counterexample_depth=depth)
            # Concretization check: exact bounded query on the
            # original netlist at the abstract counterexample depth.
            concrete = bmc(net, target, max_depth=depth + 1,
                           conflict_budget=conflict_budget,
                           budget=budget)
            if concrete.status == ABORTED:
                return LocalizationResult(
                    status=REFINED_OUT, iterations=iterations,
                    final_radius=radius, abstraction=abstraction,
                    abstraction_registers=len(abstraction.state_elements),
                    history=history,
                    exhaustion_reason=concrete.exhaustion_reason)
            if concrete.status == FALSIFIED:
                return LocalizationResult(
                    status="falsified", iterations=iterations,
                    final_radius=radius, abstraction=abstraction,
                    abstraction_registers=len(abstraction.state_elements),
                    history=history,
                    counterexample_depth=concrete.counterexample.depth)
            history.append(f"  spurious at depth {depth}; refining")
        else:
            # Window exhausted inconclusively on this abstraction.
            if exact:
                return LocalizationResult(
                    status=REFINED_OUT, iterations=iterations,
                    final_radius=radius, abstraction=abstraction,
                    abstraction_registers=len(abstraction.state_elements),
                    history=history)
        if exact:
            return LocalizationResult(
                status=REFINED_OUT, iterations=iterations,
                final_radius=radius, abstraction=abstraction,
                abstraction_registers=len(abstraction.state_elements),
                history=history)
        radius += 1
