"""Target enlargement via BDD preimages (Section 3.4).

"Target enlargement is based upon preimage computation to calculate
the set of states which may hit the target within k time-steps.
Inductive simplification may be performed upon the i-th preimage to
eliminate states which hit the target in fewer than i time-steps.  The
result of this calculation is the characteristic function of the set
of states S which is a subset of all states that can hit the target in
exactly k steps minus those that can hit the target in 0..k-1 steps."

The enlarged target is re-synthesized *structurally* (a mux tree over
the register outputs mirroring the BDD) "to enable better synergy with
simulation and SAT-based analysis [24], and to enable a reduction in
the size of the cone-of-influence of the enlarged target [7]".

By Theorem 4, a diameter bound ``d(t')`` of the k-step enlarged target
bounds the hittable window of the original target at ``d(t') + k``.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..bdd import BDD, BDDNode, SymbolicNetlist
from ..core.record import StepKind, TransformResult, TransformStep
from ..netlist import GateType, Netlist, rebuild


def synthesize_bdd(net: Netlist, manager: BDD, node: BDDNode,
                   signal_of_level: Dict[int, int]) -> int:
    """Re-synthesize a BDD as netlist logic (a shared mux tree).

    ``signal_of_level`` maps BDD variable levels to netlist vertices.
    Returns the vertex computing the BDD's function.
    """
    cache: Dict[int, int] = {}
    const0 = net.const0()
    const1 = None

    def const_one() -> int:
        nonlocal const1
        if const1 is None:
            const1 = net.add_gate(GateType.NOT, (const0,))
        return const1

    def walk(n: BDDNode) -> int:
        if n is manager.zero:
            return const0
        if n is manager.one:
            return const_one()
        key = id(n)
        if key in cache:
            return cache[key]
        sel = signal_of_level[n.var]
        lo = walk(n.lo)
        hi = walk(n.hi)
        out = net.add_gate(GateType.MUX, (sel, hi, lo))
        cache[key] = out
        return out

    return walk(node)


def enlargement_frontiers(sym: SymbolicNetlist, target: int,
                          k: int) -> list:
    """``[S_0, ..., S_k]`` — the exact-distance hit frontiers.

    ``S_0`` is the set of states from which some input hits the target
    immediately; ``S_i = pre(S_{i-1}) minus (S_0 | ... | S_{i-1})``
    (the paper's inductive simplification of the i-th preimage).
    """
    bdd = sym.bdd
    frontiers = [sym.states_satisfying(target)]
    covered = frontiers[0]
    for _ in range(k):
        pre = sym.preimage(frontiers[-1])
        fresh = bdd.and_(pre, bdd.not_(covered))
        frontiers.append(fresh)
        covered = bdd.or_(covered, fresh)
    return frontiers


def enlarge_target(net: Netlist, target: Optional[int] = None,
                   k: int = 1,
                   name_suffix: str = "enl") -> TransformResult:
    """Replace ``target`` by its k-step enlargement ``t'``.

    The new netlist keeps the original state logic (the enlarged
    target's COI may then shrink under a follow-up COI/COM pass) with
    the mux-tree synthesis of ``S_k`` as its sole target.  The step
    records ``depth = k`` for Theorem 4.
    """
    if target is None:
        if not net.targets:
            raise ValueError("netlist has no targets")
        target = net.targets[0]
    if k < 0:
        raise ValueError("enlargement depth must be >= 0")
    work = net.copy()
    sym = SymbolicNetlist(work)
    frontier = enlargement_frontiers(sym, target, k)[-1]
    level_signals = {lvl: vid for vid, lvl in sym.state_vars.items()}
    enlarged = synthesize_bdd(work, sym.bdd, frontier, level_signals)
    work.targets = [enlarged]
    out, mapping = rebuild(work, name=f"{net.name}-{name_suffix}")
    step = TransformStep(
        name=f"ENLARGE[{k}]",
        kind=StepKind.TARGET_ENLARGE,
        target_map={t: mapping.get(enlarged) for t in net.targets},
        depth=k,
    )
    return TransformResult(netlist=out, step=step, mapping=mapping)
