"""RET: min-register normalized retiming with a retiming stump.

Implements the verification-oriented generalized retiming of Kuehlmann
and Baumgartner [9] used as the paper's RET engine (Section 3.2):

* the netlist is abstracted into a *retiming graph* whose nodes are the
  non-register vertices (plus one breaker per register-only cycle) and
  whose edge weights count the registers between them;
* a minimum-register retiming ``r: V -> Z`` is obtained by solving the
  Leiserson-Saxe LP (the constraint matrix is totally unimodular, so
  the LP optimum is integral) and *normalized* so that
  ``max_v r(v) = 0`` (Definition 5);
* the retimed netlist is rebuilt with ``w'(u, v) = w(u, v) + r(v) -
  r(u)`` registers per edge.  Initial values come from the *retiming
  stump*: gate ``u`` with lag ``r(u) = -k`` skips its first ``k``
  time-steps, which are recovered by combinationally unfolding the
  original netlist over fresh stump inputs;  chain positions deeper
  than the stump inherit the corresponding original register's initial
  value.

Each retained gate ``ũ`` is trace-equivalent to the original ``u``
modulo a temporal skew of ``-r(u)`` time-steps, so by Theorem 2 a
diameter bound ``d`` on a retimed target with lag ``-i`` yields the
bound ``d + i`` on the original target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from .. import obs
from ..core.record import StepKind, TransformResult, TransformStep
from ..netlist import Gate, GateType, Netlist, NetlistError, rebuild

__all__ = ["retime", "RetimingGraph", "min_register_lags"]


@dataclass
class _Edge:
    """A retiming-graph edge: ``head`` reads ``tail`` through ``weight``
    registers; ``chain_from_head`` lists them nearest-to-head first."""

    tail: int
    head: int
    fanin_index: int
    weight: int
    chain_from_head: List[int] = field(default_factory=list)


class RetimingGraph:
    """The register-weighted gate graph of a netlist."""

    def __init__(self, net: Netlist) -> None:
        if net.latches:
            raise NetlistError(
                "retiming requires a register-based netlist; apply phase "
                "abstraction first")
        self.net = net
        self.breakers = self._find_breakers()
        self.nodes = [vid for vid, gate in net.gates()
                      if gate.type is not GateType.REGISTER
                      or vid in self.breakers]
        self.node_index = {vid: i for i, vid in enumerate(self.nodes)}
        self.edges: List[_Edge] = []
        for vid in self.nodes:
            gate = net.gate(vid)
            fanins = gate.fanins
            if vid in self.breakers:
                fanins = (gate.fanins[0],)  # the next edge; init via stump
            for idx, f in enumerate(fanins):
                tail, weight, chain = self._walk_chain(
                    f, initial_weight=1 if vid in self.breakers else 0,
                    initial_chain=[vid] if vid in self.breakers else [])
                self.edges.append(_Edge(tail, vid, idx, weight, chain))

    def _find_breakers(self) -> set:
        """One register per register-only ``next``-edge cycle."""
        net = self.net
        direct: Dict[int, Optional[int]] = {}
        for vid in net.registers:
            nxt = net.gate(vid).fanins[0]
            while net.gate(nxt).type is GateType.BUF:
                nxt = net.gate(nxt).fanins[0]
            direct[vid] = nxt if net.gate(nxt).type is GateType.REGISTER \
                else None
        breakers = set()
        color: Dict[int, int] = {}
        for start in direct:
            if start in color:
                continue
            path = []
            vid = start
            while vid is not None and vid in direct and vid not in color:
                color[vid] = 1
                path.append(vid)
                vid = direct[vid]
            if vid is not None and vid in direct and color.get(vid) == 1 \
                    and vid in path:
                breakers.add(vid)
            for p in path:
                color[p] = 2
        return breakers

    def _walk_chain(self, start: int, initial_weight: int,
                    initial_chain: List[int]) -> Tuple[int, int, List[int]]:
        weight = initial_weight
        chain = list(initial_chain)
        vid = start
        net = self.net
        while True:
            gate = net.gate(vid)
            if gate.type is GateType.REGISTER and vid not in self.breakers:
                weight += 1
                chain.append(vid)
                vid = gate.fanins[0]
            else:
                return vid, weight, chain

    def total_registers(self) -> int:
        """Registers implied by the graph (shared chains counted once
        per edge — an upper bound on the physical count)."""
        return sum(e.weight for e in self.edges)


def min_register_lags(graph: RetimingGraph,
                      fixed: Optional[Iterable[int]] = None
                      ) -> Dict[int, int]:
    """Solve the min-register retiming LP with register sharing.

    Registers on the fanout of a node are physically shared, so the
    objective counts ``max_e w'(e)`` per *tail*, not the per-edge sum —
    the Leiserson-Saxe sharing formulation.  With auxiliary variables
    ``s_u = r(u) + max_{e out of u} w'(e)`` this stays a pure
    difference-constraint LP (totally unimodular, hence the HiGHS
    optimum is integral):

        minimize    sum_u (s_u - r(u))
        subject to  r(tail) - r(head) <= w(e)          (w'(e) >= 0)
                    s(tail) - r(head) >= w(e)          (s covers max)

    Lags are then normalized per weakly-connected component, with a
    no-gain reset (see below).  ``fixed`` vertices (classic I/O-timing
    retiming constrains the host boundary this way [18]) are pinned to
    lag 0 relative to their component's normalization.
    """
    n = len(graph.nodes)
    if n == 0:
        return {}
    fixed_set = set(fixed or ())
    unknown = fixed_set - set(graph.node_index)
    if unknown:
        raise NetlistError(
            f"fixed vertices {sorted(unknown)} are not retiming-graph "
            f"nodes (registers cannot be pinned)")
    tails = sorted({e.tail for e in graph.edges})
    s_index = {vid: n + i for i, vid in enumerate(tails)}
    num_vars = n + len(tails)
    c = np.zeros(num_vars)
    for vid in tails:
        c[s_index[vid]] += 1.0
        c[graph.node_index[vid]] -= 1.0
    rows = []
    rhs = []
    for e in graph.edges:
        if e.head != e.tail:
            # r(tail) - r(head) <= w
            row = np.zeros(num_vars)
            row[graph.node_index[e.tail]] = 1.0
            row[graph.node_index[e.head]] = -1.0
            rows.append(row)
            rhs.append(float(e.weight))
        # -(s(tail) - r(head)) <= -w
        row = np.zeros(num_vars)
        row[s_index[e.tail]] = -1.0
        if e.head != e.tail:
            row[graph.node_index[e.head]] = 1.0
            rhs.append(-float(e.weight))
        else:
            # Self-edge: s(u) - r(u) >= w.
            row[graph.node_index[e.head]] = 1.0
            rhs.append(-float(e.weight))
        rows.append(row)
    bound = float(len(graph.net.registers) + len(graph.nodes) + 1)
    if fixed_set:
        # Pinned nodes sit at lag 0 and dominate their component: all
        # lags stay non-positive so no normalization shift is needed.
        var_bounds = [(-bound, 0.0)] * n + [(-bound, 2 * bound)] * \
            (num_vars - n)
        for vid in fixed_set:
            var_bounds[graph.node_index[vid]] = (0.0, 0.0)
    else:
        var_bounds = [(-bound, 2 * bound)] * num_vars
    result = linprog(
        c,
        A_ub=np.array(rows) if rows else None,
        b_ub=np.array(rhs) if rhs else None,
        bounds=var_bounds,
        method="highs",
    )
    if not result.success:  # pragma: no cover - LP is always feasible
        raise RuntimeError(f"retiming LP failed: {result.message}")
    lags = {vid: int(round(result.x[i]))
            for i, vid in enumerate(graph.nodes)}
    # Normalize (Definition 5) per weakly-connected component: shifting
    # a whole component leaves every w' unchanged, and per-component
    # shifts keep disconnected debris (e.g. init cones) at lag 0 so it
    # cannot inflate the stump depth of the real design.
    uf = {vid: vid for vid in graph.nodes}

    def find(x: int) -> int:
        while uf[x] != x:
            uf[x] = uf[uf[x]]
            x = uf[x]
        return x

    for e in graph.edges:
        uf[find(e.tail)] = find(e.head)
    # Where retiming cannot reduce the register count of a component,
    # reset its lags to zero: the LP is free to pick any of many
    # equal-cost layouts, and a gratuitous move both perturbs
    # downstream structural analyses (e.g. memory-cell hold patterns)
    # and inflates target lags (the Theorem 2 penalty) for no benefit.
    before: Dict[int, int] = {}
    after: Dict[int, int] = {}
    for e in graph.edges:
        w_new = e.weight + lags[e.head] - lags[e.tail]
        before[e.tail] = max(before.get(e.tail, 0), e.weight)
        after[e.tail] = max(after.get(e.tail, 0), w_new)
    gain: Dict[int, int] = {}
    for tail in before:
        gain[find(tail)] = gain.get(find(tail), 0) \
            + after[tail] - before[tail]
    for vid in graph.nodes:
        if gain.get(find(vid), 0) >= 0:
            lags[vid] = 0
    max_of: Dict[int, int] = {}
    for vid, lag in lags.items():
        root = find(vid)
        max_of[root] = max(max_of.get(root, lag), lag)
    # Components holding a pinned node keep their absolute reference
    # (all lags there are already <= 0 by the variable bounds).
    for vid in fixed_set:
        max_of[find(vid)] = 0
    return {vid: lag - max_of[find(vid)] for vid, lag in lags.items()}


class _StumpBuilder:
    """Combinational unfolding of the original netlist's prefix steps.

    ``value(u, s)`` returns a vertex of the *new* netlist computing the
    value original vertex ``u`` takes at original time ``s >= 0``,
    over fresh stump primary inputs.
    """

    def __init__(self, src: Netlist, dst: Netlist) -> None:
        self.src = src
        self.dst = dst
        self._cache: Dict[Tuple[int, int], int] = {}
        self._const0: Optional[int] = None
        self._input_count = 0

    def value(self, u: int, s: int) -> int:
        key = (u, s)
        if key in self._cache:
            return self._cache[key]
        gate = self.src.gate(u)
        if gate.type is GateType.INPUT:
            # Deterministic names let callers correlate stump inputs
            # with (original input, original time) pairs.
            label = gate.name if gate.name else f"v{u}"
            out = self.dst.add_gate(
                GateType.INPUT, (), name=f"__stump{s}_{label}")
            self._input_count += 1
        elif gate.type is GateType.CONST0:
            out = self.dst.const0()
        elif gate.type is GateType.REGISTER:
            if s == 0:
                out = self.value(gate.fanins[1], 0)  # the init cone
            else:
                out = self.value(gate.fanins[0], s - 1)
        else:
            fanins = tuple(self.value(f, s) for f in gate.fanins)
            out = self.dst.add_gate(gate.type, fanins)
        self._cache[key] = out
        return out


def retime(net: Netlist, name_suffix: str = "ret",
           fixed: Optional[Iterable[int]] = None) -> TransformResult:
    """Apply min-register normalized retiming to ``net``.

    Targets are first materialized as buffer vertices so every target
    is a retimable graph node with a well-defined lag.  The step
    records per-target lags ``i = -r(t) >= 0`` for Theorem 2.
    ``fixed`` pins the given (non-register) vertices at lag 0 — the
    classic host-boundary constraint when interface timing must be
    preserved [18]; pinned targets then back-translate with lag 0.
    """
    with obs.span("transform.ret"):
        return _retime(net, name_suffix, fixed)


def _retime(net: Netlist, name_suffix: str,
            fixed: Optional[Iterable[int]]) -> TransformResult:
    work = net.copy()
    target_bufs: Dict[int, int] = {}
    for t in dict.fromkeys(work.targets):
        target_bufs[t] = work.add_gate(GateType.BUF, (t,))
    graph = RetimingGraph(work)
    with obs.span("transform.ret/lp"):
        lags = min_register_lags(graph, fixed=fixed)
    obs.counter("ret.calls")
    obs.counter("ret.graph_nodes", len(graph.nodes))
    obs.counter("ret.lagged_nodes",
                sum(1 for lag in lags.values() if lag != 0))

    out = Netlist(f"{net.name}-{name_suffix}")
    stump = _StumpBuilder(work, out)
    new_of_node: Dict[int, int] = {}
    # First pass: allocate every node (registers resolved after).
    placeholders: List[Tuple[int, Gate]] = []
    for vid in graph.nodes:
        gate = work.gate(vid)
        if gate.type is GateType.INPUT:
            new_of_node[vid] = out.add_gate(GateType.INPUT, (), gate.name)
        elif gate.type is GateType.CONST0:
            new_of_node[vid] = out.const0()
        else:
            # Placeholder: fanins patched in the second pass.  Breaker
            # registers become buffers (their delay moved to the edge).
            gtype = GateType.BUF if vid in graph.breakers else gate.type
            arity = 1 if vid in graph.breakers else len(gate.fanins)
            new_of_node[vid] = out.add_gate(
                gtype, tuple([out.const0()] * arity),
                name=gate.name if gate.name and vid not in graph.breakers
                else None)
    # Second pass: build edges with their retimed register chains.
    # Chains fanning out from the same tail carry identical streams, so
    # chain registers are shared via (driver, init) hash-consing — the
    # per-edge graph representation must not duplicate physical
    # registers (that would *grow* SCCs instead of shrinking them).
    reg_cache: Dict[Tuple[int, int], int] = {}
    for e in graph.edges:
        w_new = e.weight + lags[e.head] - lags[e.tail]
        if w_new < 0:  # pragma: no cover - LP constraints forbid this
            raise RuntimeError("negative edge weight after retiming")
        k_tail = -lags[e.tail]
        signal = new_of_node[e.tail]
        # Build the chain rho_1 .. rho_w' (rho_j(t) = tail(t - j + k)).
        for j in range(1, w_new + 1):
            if k_tail - j >= 0:
                init = stump.value(e.tail, k_tail - j)
            else:
                # Deeper than the stump: original register sigma_{j-k}
                # (position from the head side: chain[w - (j - k)]).
                pos = e.weight - (j - k_tail)
                orig_reg = e.chain_from_head[pos]
                init = stump.value(work.gate(orig_reg).fanins[1], 0)
            key = (signal, init)
            if key not in reg_cache:
                reg_cache[key] = out.add_gate(GateType.REGISTER,
                                              (signal, init))
            signal = reg_cache[key]
        fanins = list(out.gate(new_of_node[e.head]).fanins)
        fanins[e.fanin_index] = signal
        out.set_fanins(new_of_node[e.head], tuple(fanins))

    # Register targets/outputs on the new netlist, then compact.
    step_lags: Dict[int, int] = {}
    pre_map: Dict[int, int] = {}
    for t in net.targets:
        buf = target_bufs[t]
        pre_map[t] = new_of_node[buf]
        step_lags[t] = -lags[buf]
        out.add_target(new_of_node[buf])
    for o in net.outputs:
        if o in new_of_node:
            out.add_output(new_of_node[o])
        elif o in target_bufs:
            out.add_output(new_of_node[target_bufs[o]])
    compact, remap = rebuild(out, name=out.name)
    target_map = {t: remap.get(vid) for t, vid in pre_map.items()}
    step = TransformStep(
        name="RET",
        kind=StepKind.RETIME,
        target_map=target_map,
        lags=step_lags,
    )
    mapping = {vid: remap[new]
               for vid, new in new_of_node.items() if new in remap}
    input_lags = {
        (work.gate(vid).name or f"v{vid}"): -lags[vid]
        for vid in graph.nodes
        if work.gate(vid).type is GateType.INPUT
    }
    info = {"lags": dict(lags), "input_lags": input_lags}
    return TransformResult(netlist=compact, step=step, mapping=mapping,
                           info=info)
