"""COM: redundancy removal by inductive SAT sweeping (Section 3.1).

"The idea of this approach is to attempt to identify two semantically-
equivalent vertices u and v; when two such vertices are found, all
fanout edges from v are moved to u ... Identification of semantically-
equivalent vertices may be performed efficiently by structural analysis
or by BDD and SAT sweeping with no need to analyze the state space of
the netlist."

The engine reproduced here follows the classic van Eijk scheme:

1. ternary constant propagation seeds constant merges,
2. random simulation from the initial states partitions vertices into
   candidate equivalence classes,
3. the candidate relation is refined to an inductive fixpoint — assume
   all candidates equal on a free current frame, require each pair
   equal on the next frame (SAT); failures split their class — and
   checked on an initial-state-constrained base frame,
4. surviving classes are merged onto their topologically-shallowest
   representative and the netlist is rebuilt (hash-consing doubles as
   the structural-analysis merge pass).

Redundancy removal preserves the semantics of every retained vertex,
so by Theorem 1 diameter bounds carry over unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .. import obs
from ..core.record import StepKind, TransformResult, TransformStep
from ..netlist import (
    GateType,
    Netlist,
    combinational_fanins,
    rebuild,
    topological_order,
)
from ..resilience import Budget, Cancelled
from ..sat import UNSAT, CnfSink, Solver, encode_frame, \
    encode_init_state, encode_mux, lit_not, pos
from ..sat.template import get_template, netlist_has_const0, \
    templates_enabled
from ..sim import constant_state_elements, random_signatures


@dataclass
class SweepConfig:
    """Tunables for the sweeping engine.

    ``max_rounds`` caps the inductive refinement; the refinement must
    reach a *fixpoint* for the surviving merges to be sound (each
    survivor's proof assumes the other candidates), so if the cap is
    hit while classes are still splitting, ALL remaining candidate
    classes are discarded.  ``None`` (the default) iterates to the
    fixpoint, which is reached after at most one round per candidate
    pair.

    ``conflict_budget`` follows the ``Solver.solve`` contract (None =
    unlimited, ``n >= 0`` = per-query cap) and applies to every sweep
    query individually; an inconclusive query simply drops its pair,
    which is always sound.
    """

    sim_cycles: int = 16
    sim_width: int = 64
    seed: int = 2004
    conflict_budget: Optional[int] = 2000
    max_rounds: Optional[int] = None
    max_class_size: int = 64


def _levels(net: Netlist) -> Dict[int, int]:
    levels: Dict[int, int] = {}
    for vid in topological_order(net):
        fanins = combinational_fanins(net, vid)
        levels[vid] = 0 if not fanins else 1 + max(
            levels[f] for f in fanins)
    return levels


class _InductiveChecker:
    """SAT checks for the induction step and the initial-state base."""

    def __init__(self, net: Netlist, config: SweepConfig,
                 budget: Optional[Budget] = None) -> None:
        self.net = net
        self.config = config
        self.budget = budget
        # One "frame" template serves all three encodes below: frame 0
        # with its next-state tail (a full stamp), and the tail-less
        # frame 1 / base frame (``with_next=False`` stops at the core
        # boundary, exactly the plain ``encode_frame`` shape).
        tmpl = get_template(net, "frame") if templates_enabled() \
            else None
        has_const0 = tmpl.has_const0 if tmpl is not None \
            else netlist_has_const0(net)
        # Step model: frame 0 with free leaves feeding frame 1.
        self.step_solver = Solver()
        sink = CnfSink(self.step_solver)
        state0 = {vid: pos(self.step_solver.new_var())
                  for vid in net.state_elements}
        if has_const0:
            # Pin the shared true literal up front in both paths so
            # template/direct variable numbering agrees (see
            # Unrolling._bootstrap for the parity rationale).
            _ = sink.true_lit
        with obs.span("encode"):
            if tmpl is not None:
                self.frame0, nxt = tmpl.stamp(sink, state0)
                assert nxt is not None
                state1: Dict[int, int] = nxt
            else:
                self.frame0 = encode_frame(net, sink, dict(state0))
                state1 = {}
                for vid in net.state_elements:
                    gate = net.gate(vid)
                    if gate.type is GateType.REGISTER:
                        state1[vid] = self.frame0[gate.fanins[0]]
                    else:
                        data, clock = gate.fanins
                        out = pos(self.step_solver.new_var())
                        encode_mux(sink, out, self.frame0[clock],
                                   self.frame0[data], self.frame0[vid])
                        state1[vid] = out
            if tmpl is not None:
                self.frame1, _ = tmpl.stamp(sink, state1,
                                            with_next=False)
            else:
                self.frame1 = encode_frame(net, sink, state1)
        # Base model: single frame constrained to the initial states.
        self.base_solver = Solver()
        base_sink = CnfSink(self.base_solver)
        base_state = {vid: pos(self.base_solver.new_var())
                      for vid in net.state_elements}
        if has_const0:
            _ = base_sink.true_lit
        encode_init_state(net, base_sink, base_state)
        with obs.span("encode"):
            if tmpl is not None:
                self.base_frame, _ = tmpl.stamp(
                    base_sink, base_state, with_next=False)
            else:
                self.base_frame = encode_frame(net, base_sink,
                                               dict(base_state))

    def assume_lits(self, classes: List[List[int]]) -> List[int]:
        """Assumption literals asserting all candidate pairs equal on
        frame 0 (via fresh equality indicators)."""
        sink = CnfSink(self.step_solver)
        assumptions = []
        for cls in classes:
            rep = cls[0]
            for other in cls[1:]:
                eq = pos(self.step_solver.new_var())
                a, b = self.frame0[rep], self.frame0[other]
                # eq -> (a <-> b)
                sink.add_clause([lit_not(eq), lit_not(a), b])
                sink.add_clause([lit_not(eq), a, lit_not(b)])
                assumptions.append(eq)
        return assumptions

    def pair_holds_inductively(self, a: int, b: int,
                               assumptions: List[int]) -> bool:
        """UNSAT of ``assumptions AND frame1[a] != frame1[b]``."""
        solver = self.step_solver
        diff = pos(solver.new_var())
        la, lb = self.frame1[a], self.frame1[b]
        sink = CnfSink(solver)
        # diff -> (a xor b)  (one direction suffices for the query)
        sink.add_clause([lit_not(diff), la, lb])
        sink.add_clause([lit_not(diff), lit_not(la), lit_not(lb)])
        obs.counter("com.sat_queries")
        result = solver.solve(assumptions + [diff],
                              conflict_budget=self.config.conflict_budget,
                              budget=self.budget)
        # Retire the one-shot indicator: a level-0 unit permanently
        # satisfies its guard clauses and removes the variable from
        # the decision heap.  Without this, every query leaves a live
        # unconstrained indicator behind, and the incremental solver
        # wastes decisions and propagations on the accumulated junk in
        # all later queries (hundreds per sweep).
        solver.add_clause([lit_not(diff)])
        return result == UNSAT

    def pair_holds_at_init(self, a: int, b: int) -> bool:
        """UNSAT of ``Z AND base[a] != base[b]``."""
        solver = self.base_solver
        diff = pos(solver.new_var())
        la, lb = self.base_frame[a], self.base_frame[b]
        sink = CnfSink(solver)
        sink.add_clause([lit_not(diff), la, lb])
        sink.add_clause([lit_not(diff), lit_not(la), lit_not(lb)])
        obs.counter("com.sat_queries")
        result = solver.solve([diff],
                              conflict_budget=self.config.conflict_budget,
                              budget=self.budget)
        solver.add_clause([lit_not(diff)])
        return result == UNSAT

    def retire_assumptions(self, assumptions: List[int]) -> None:
        """Retire a round's equality indicators once the round's
        queries are done (they are never assumed again; the level-0
        units satisfy their guard clauses for good)."""
        solver = self.step_solver
        for eq in assumptions:
            solver.add_clause([lit_not(eq)])


def _candidate_classes(net: Netlist, config: SweepConfig,
                       roots: Set[int]) -> List[List[int]]:
    signatures = random_signatures(net, cycles=config.sim_cycles,
                                   width=config.sim_width, seed=config.seed)
    classes: Dict[Tuple[int, ...], List[int]] = {}
    for vid, sig in signatures.items():
        if vid in roots:
            classes.setdefault(sig, []).append(vid)
    out = []
    for members in classes.values():
        members.sort()
        if len(members) > 1:
            out.append(members[:config.max_class_size])
    return out


def redundancy_removal(
    net: Netlist,
    config: Optional[SweepConfig] = None,
    name_suffix: str = "com",
    budget: Optional[Budget] = None,
) -> TransformResult:
    """Apply the COM redundancy-removal engine to ``net``.

    Returns a :class:`TransformResult` whose step is trace-equivalence
    preserving (Theorem 1): the diameter bound of any retained vertex
    set is unchanged.  Instrumented under the ``transform.com`` span
    with ``com.rounds`` / ``com.sat_queries`` / ``com.merges``
    counters.

    ``budget`` makes the sweep cooperative: cancellation raises
    :class:`Cancelled`; exhaustion discards every not-yet-verified
    candidate class (the surviving merges would otherwise rest on an
    unfinished fixpoint — discarding is sound, the transform simply
    merges less) and is recorded via the ``com.budget_aborts``
    counter.  Ternary-constant merges never need SAT and are kept.
    """
    with obs.span("transform.com"):
        return _sweep(net, config or SweepConfig(), name_suffix, budget)


def _budget_drained(budget: Optional[Budget]) -> bool:
    """Cooperative sweep check: raises on cancellation, True when the
    budget is exhausted and SAT work must stop."""
    if budget is None:
        return False
    if budget.cancelled:
        raise Cancelled(budget_name=budget.name)
    return budget.exhausted() is not None


def _sweep(
    net: Netlist,
    config: SweepConfig,
    name_suffix: str,
    budget: Optional[Budget] = None,
) -> TransformResult:
    substitution: Dict[int, int] = {}

    # Phase 1: ternary constants (state elements stuck at a constant).
    const_map = constant_state_elements(net)
    work = net
    if const_map:
        base = net.copy()
        c0 = base.const0()
        c1_candidates = [v for v, g in base.gates()
                         if g.type is GateType.NOT and g.fanins == (c0,)]
        c1 = c1_candidates[0] if c1_candidates else base.add_gate(
            GateType.NOT, (c0,))
        substitution = {vid: (c1 if value else c0)
                        for vid, value in const_map.items()}
        work = base

    # Phase 2/3: simulation candidates refined to an inductive fixpoint.
    in_cone = set(work)
    classes = _candidate_classes(work, config, in_cone)
    if classes and _budget_drained(budget):
        obs.counter("com.budget_aborts")
        classes = []
    if classes:
        checker = _InductiveChecker(work, config, budget)
        # The refinement removes at least one candidate pair per
        # changing round, so the fixpoint arrives within `total pairs`
        # rounds; an explicit cap (if configured) is a resource valve.
        total_pairs = sum(len(cls) - 1 for cls in classes)
        limit = total_pairs + 1 if config.max_rounds is None \
            else config.max_rounds
        converged = False
        for round_index in range(limit):
            if _budget_drained(budget):
                # Mid-refinement exhaustion: the classes are not at a
                # fixpoint, so none of the pending proofs stand.
                obs.counter("com.budget_aborts")
                classes = []
                break
            obs.counter("com.rounds")
            assumptions = checker.assume_lits(classes)
            new_classes: List[List[int]] = []
            changed = False
            for cls in classes:
                rep = cls[0]
                kept = [rep]
                rest = []
                for other in cls[1:]:
                    if checker.pair_holds_inductively(rep, other,
                                                      assumptions):
                        kept.append(other)
                    else:
                        rest.append(other)
                        changed = True
                if len(kept) > 1:
                    new_classes.append(kept)
                if len(rest) > 1:
                    new_classes.append(rest)
            classes = new_classes
            checker.retire_assumptions(assumptions)
            obs.progress(
                "com.sweep", round=round_index, of=limit,
                classes=len(classes),
                pairs=sum(len(cls) - 1 for cls in classes),
                changed=changed)
            if not changed:
                converged = True
                break
        if not converged:
            # Unconverged survivors were only proven under assumptions
            # that may since have been refuted: merging them would be
            # unsound.  Drop everything.
            classes = []
        # Base case: equivalence must also hold in the initial states.
        verified: List[List[int]] = []
        for cls in classes:
            if _budget_drained(budget):
                # Classes not yet base-verified are dropped wholesale.
                obs.counter("com.budget_aborts")
                break
            rep = cls[0]
            kept = [rep]
            for other in cls[1:]:
                if checker.pair_holds_at_init(rep, other):
                    kept.append(other)
            if len(kept) > 1:
                verified.append(kept)
        levels = _levels(work)

        def rep_key(v: int):
            gate = work.gate(v)
            is_const = gate.type is GateType.CONST0 or (
                gate.type is GateType.NOT
                and work.gate(gate.fanins[0]).type is GateType.CONST0)
            return (0 if is_const else 1, levels.get(v, 0), v)

        def resolves_to(v: int) -> int:
            seen = set()
            while v in substitution and v not in seen:
                seen.add(v)
                v = substitution[v]
            return v

        for cls in verified:
            rep = min(cls, key=rep_key)
            for other in cls:
                if other == rep or other in substitution:
                    continue
                if resolves_to(rep) == other:
                    continue  # would create a substitution cycle
                substitution[other] = rep

    obs.counter("com.merges", len(substitution))
    out, mapping = rebuild(work, substitution=substitution,
                           name=f"{net.name}-{name_suffix}")
    if work is not net:
        # Compose the original-vid -> copy-vid identity (copy preserves
        # ids) with the rebuild mapping; ids are stable across copy().
        pass
    target_map = {t: mapping.get(t) for t in net.targets}
    step = TransformStep(
        name="COM",
        kind=StepKind.TRACE_EQUIVALENT,
        target_map=target_map,
    )
    return TransformResult(netlist=out, step=step, mapping=mapping)
