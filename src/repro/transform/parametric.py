"""Parametric re-encoding of input cuts (Section 3.1).

"The technique of parametric re-encoding of a netlist [16, 17]
replaces the fanin cone C of a cut with a trace-equivalent cone C'.
Such re-encoding preserves trace-equivalence of any vertex set in the
complement of C."

We implement the surjective special case that dominates practice: when
the cut functions, viewed over the primary inputs of their (stateless)
fanin cone, range over *all* of {0,1}^n, the entire cone may be
replaced by n fresh primary inputs.  Surjectivity is established
exactly with a BDD range computation; non-surjective cuts are refused
(a full range-generator synthesis is out of scope and unnecessary for
the paper's experiments).  The step is trace-equivalence preserving
(Theorem 1 applies).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..bdd import BDD
from ..core.record import StepKind, TransformResult, TransformStep
from ..netlist import (
    Gate,
    GateType,
    Netlist,
    NetlistError,
    rebuild,
    state_support,
    topological_order,
)


def cut_is_surjective(net: Netlist, cut: Sequence[int]) -> bool:
    """True iff the cut functions cover all of {0,1}^len(cut).

    Requires a stateless fanin cone (inputs and constants only).
    """
    for vid in cut:
        if state_support(net, vid):
            raise NetlistError(
                "parametric re-encoding requires a stateless cut cone")
    bdd = BDD()
    # Dedicated manager: inputs at low levels, cut image vars above.
    support: List[int] = []
    for vid in topological_order(net, list(cut)):
        if net.gate(vid).type is GateType.INPUT:
            support.append(vid)
    input_level = {vid: i for i, vid in enumerate(support)}
    values: Dict[int, object] = {}
    for vid in topological_order(net, list(cut)):
        gate = net.gate(vid)
        t = gate.type
        if t is GateType.INPUT:
            values[vid] = bdd.var(input_level[vid])
            continue
        if t is GateType.CONST0:
            values[vid] = bdd.zero
            continue
        f = [values[x] for x in gate.fanins]
        if t is GateType.BUF:
            values[vid] = f[0]
        elif t is GateType.NOT:
            values[vid] = bdd.not_(f[0])
        elif t is GateType.AND:
            values[vid] = bdd.and_(*f)
        elif t is GateType.NAND:
            values[vid] = bdd.not_(bdd.and_(*f))
        elif t is GateType.OR:
            values[vid] = bdd.or_(*f)
        elif t is GateType.NOR:
            values[vid] = bdd.not_(bdd.or_(*f))
        elif t in (GateType.XOR, GateType.XNOR):
            out = f[0]
            for g in f[1:]:
                out = bdd.xor(out, g)
            values[vid] = out if t is GateType.XOR else bdd.not_(out)
        elif t is GateType.MUX:
            values[vid] = bdd.ite(f[0], f[1], f[2])
        else:  # pragma: no cover
            raise NetlistError(f"cannot re-encode gate type {t}")
    n = len(cut)
    base = len(support)
    # Range relation R(y) = exists x . AND_i (y_i <-> f_i(x)).
    relation = bdd.one
    for i, vid in enumerate(cut):
        y = bdd.var(base + i)
        relation = bdd.and_(relation, bdd.equiv(y, values[vid]))
    image = bdd.exists(range(base), relation)
    # Surjective iff the image (a function of the y variables only)
    # is the tautology.
    return image is bdd.one


def parametric_reencode(net: Netlist, cut: Sequence[int],
                        name_suffix: str = "param") -> TransformResult:
    """Replace a surjective stateless cut cone by fresh inputs.

    Raises :class:`NetlistError` if the cut range is not all of
    {0,1}^n (the general range-generator case is not implemented).
    """
    # The cone's inputs must be private to the cone: if one also feeds
    # logic beyond the cut, replacing the cut would sever a correlation
    # and the result would not be trace-equivalent.
    from ..netlist import cone_of_influence

    cone = cone_of_influence(net, cut)
    cut_set = set(cut)
    fanouts = net.fanout_map()
    for vid in cone:
        if vid in cut_set or net.gate(vid).type is GateType.CONST0:
            continue
        for reader in fanouts[vid]:
            if reader not in cone:
                raise NetlistError(
                    f"cone vertex {vid} feeds logic outside the cut; "
                    f"re-encoding would break a correlation")
    if not cut_is_surjective(net, cut):
        raise NetlistError(
            "cut range is a strict subset of {0,1}^n; refusing the "
            "(unsound) naive replacement")
    work = net.copy()
    for vid in cut:
        gate = work.gate(vid)
        work.replace_gate(vid, Gate(GateType.INPUT, (), gate.name))
    out, mapping = rebuild(work, name=f"{net.name}-{name_suffix}")
    step = TransformStep(
        name="PARAM",
        kind=StepKind.TRACE_EQUIVALENT,
        target_map={t: mapping.get(t) for t in net.targets},
    )
    return TransformResult(netlist=out, step=step, mapping=mapping)
