"""Sequential equivalence checking via miters.

Trace equivalence (Definition 4) is the premise of Theorem 1, so the
library can *machine-check* it: a miter is the product machine of two
netlists sharing their primary inputs (matched by name), with one
target per compared signal pair asserting disagreement.  The targets
are unreachable iff the signals are sequentially equivalent from the
initial states.

Discharging the miter exercises the same engines it certifies —
redundancy removal rediscovers the cross-netlist equivalences and
collapses the disagreement targets to constant 0 (with k-induction and
complete BMC as fallbacks) — a pleasing self-application the tests
lean on to verify the COM/STRASH/retiming engines formally rather than
just by simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist import GateType, Netlist, NetlistError

#: Verdicts of :func:`check_equivalence`.
EQUIVALENT = "equivalent"
DIFFERENT = "different"
UNDECIDED = "undecided"


def build_miter(
    net_a: Netlist,
    net_b: Netlist,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
    name: Optional[str] = None,
) -> Tuple[Netlist, List[int]]:
    """The product machine with per-pair disagreement targets.

    Primary inputs are matched by name (both copies read one shared
    input); ``pairs`` defaults to zipping the two netlists' target
    lists.  Returns ``(miter, disagreement_targets)``.
    """
    if pairs is None:
        if len(net_a.targets) != len(net_b.targets):
            raise NetlistError(
                "target counts differ; pass explicit pairs")
        pairs = list(zip(net_a.targets, net_b.targets))
    miter = Netlist(name or f"miter({net_a.name},{net_b.name})")
    shared_inputs: Dict[str, int] = {}

    def copy_into(src: Netlist, tag: str) -> Dict[int, int]:
        mapping: Dict[int, int] = {}
        # State elements first (placeholder fanins) for feedback.
        placeholder = miter.const0()
        for vid, gate in src.gates():
            if gate.is_state:
                mapping[vid] = miter.add_gate(
                    gate.type, (placeholder, placeholder),
                    name=f"{tag}_{gate.name}" if gate.name else None)
        from ..netlist import topological_order

        for vid in topological_order(src):
            gate = src.gate(vid)
            if vid in mapping:
                continue
            if gate.type is GateType.CONST0:
                mapping[vid] = miter.const0()
            elif gate.type is GateType.INPUT:
                key = gate.name or f"{tag}__anon{vid}"
                if gate.name and gate.name in shared_inputs:
                    mapping[vid] = shared_inputs[gate.name]
                else:
                    new = miter.add_gate(GateType.INPUT, (),
                                         name=gate.name)
                    if gate.name:
                        shared_inputs[gate.name] = new
                    mapping[vid] = new
            else:
                fanins = tuple(mapping[f] for f in gate.fanins)
                mapping[vid] = miter.add_gate(gate.type, fanins)
        for vid, gate in src.gates():
            if gate.is_state:
                fanins = tuple(mapping[f] for f in gate.fanins)
                miter.set_fanins(mapping[vid], fanins)
        return mapping

    map_a = copy_into(net_a, "a")
    map_b = copy_into(net_b, "b")
    targets: List[int] = []
    for va, vb in pairs:
        diff = miter.add_gate(GateType.XOR,
                              (map_a[va], map_b[vb]))
        miter.add_target(diff)
        targets.append(diff)
    return miter, targets


@dataclass
class EquivalenceResult:
    """Outcome of a sequential equivalence check."""

    verdict: str
    method: str
    counterexample_depth: Optional[int] = None
    per_pair: List[str] = field(default_factory=list)


def check_equivalence(
    net_a: Netlist,
    net_b: Netlist,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
    max_depth: int = 32,
    induction_k: int = 6,
    sweep_config=None,
) -> EquivalenceResult:
    """Decide sequential equivalence of the paired signals.

    Strategy: COM on the miter (cross-netlist sweeping usually proves
    all disagreement targets constant 0), then k-induction, then plain
    BMC for counterexamples; UNDECIDED when budgets run out.
    """
    from ..core.engine import PROVEN, TRIVIAL_HIT, TBVEngine
    from ..unroll import FALSIFIED, PROVEN as BMC_PROVEN, bmc, \
        k_induction

    miter, targets = build_miter(net_a, net_b, pairs)
    reports = TBVEngine("COM", sweep_config=sweep_config).run(miter)\
        .reports
    per_pair: List[str] = []
    worst = EQUIVALENT
    depth = None
    for target, report in zip(targets, reports):
        if report.status == PROVEN:
            per_pair.append(EQUIVALENT)
            continue
        if report.status == TRIVIAL_HIT:
            per_pair.append(DIFFERENT)
            worst = DIFFERENT
            depth = 0
            continue
        induct = k_induction(miter, target, max_k=induction_k)
        if induct.status == BMC_PROVEN:
            per_pair.append(EQUIVALENT)
            continue
        if induct.status == FALSIFIED:
            per_pair.append(DIFFERENT)
            worst = DIFFERENT
            depth = induct.counterexample.depth
            continue
        check = bmc(miter, target, max_depth=max_depth)
        if check.status == FALSIFIED:
            per_pair.append(DIFFERENT)
            worst = DIFFERENT
            depth = check.counterexample.depth
        else:
            per_pair.append(UNDECIDED)
            if worst == EQUIVALENT:
                worst = UNDECIDED
    method = "com-sweep" if all(p == EQUIVALENT for p in per_pair) \
        else "mixed"
    return EquivalenceResult(verdict=worst, method=method,
                             counterexample_depth=depth,
                             per_pair=per_pair)
