"""Structural transformations (Section 3)."""

from .redundancy import SweepConfig, redundancy_removal
from .coi import coi_reduction
from .retime import RetimingGraph, min_register_lags, retime
from .phase import infer_latch_colors, phase_abstract
from .cslow import cslow_abstract, infer_cslow_coloring, max_cslow_factor
from .enlarge import enlarge_target, enlargement_frontiers, synthesize_bdd
from .enlarge_sat import enlarge_target_sat
from .approx import case_split, localize, localize_by_distance
from .localize_cegar import LocalizationResult, localization_refinement
from .parametric import cut_is_surjective, parametric_reencode
from .strash import strash
from .miter import (
    DIFFERENT,
    EQUIVALENT,
    EquivalenceResult,
    UNDECIDED,
    build_miter,
    check_equivalence,
)

__all__ = [
    "RetimingGraph",
    "SweepConfig",
    "UNDECIDED",
    "build_miter",
    "case_split",
    "check_equivalence",
    "coi_reduction",
    "cslow_abstract",
    "cut_is_surjective",
    "enlarge_target",
    "enlarge_target_sat",
    "enlargement_frontiers",
    "infer_cslow_coloring",
    "infer_latch_colors",
    "DIFFERENT",
    "EQUIVALENT",
    "EquivalenceResult",
    "LocalizationResult",
    "localization_refinement",
    "localize",
    "localize_by_distance",
    "max_cslow_factor",
    "min_register_lags",
    "parametric_reencode",
    "phase_abstract",
    "redundancy_removal",
    "retime",
    "strash",
    "synthesize_bdd",
]
