"""Approximate transformations (Sections 3.5 and 3.6).

These reductions are valuable for verification but — as the paper
proves by counterexample directions — their diameter bounds do *not*
back-translate: localization/cut-points may add reachable states
(raising diameter) and add transitions (lowering it); case splitting
dually.  The steps they produce are flagged accordingly, and
:func:`repro.core.theory.back_translate` refuses chains containing
them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from ..core.record import StepKind, TransformResult, TransformStep
from ..netlist import Gate, GateType, Netlist, rebuild, state_support


def localize(net: Netlist, cut: Iterable[int],
             name_suffix: str = "loc") -> TransformResult:
    """Localization [26]: replace the ``cut`` vertices by fresh inputs.

    Every vertex sourcing a crossing edge of the cut becomes a primary
    input (cut-point insertion [25] is the single-vertex case).  The
    result *overapproximates* the original behaviour: targets proven
    unreachable on it are unreachable originally, but diameter bounds
    do not transfer (Section 3.5).
    """
    work = net.copy()
    for vid in cut:
        gate = work.gate(vid)
        if gate.type in (GateType.INPUT, GateType.CONST0):
            continue
        work.replace_gate(vid, Gate(GateType.INPUT, (), gate.name))
    out, mapping = rebuild(work, name=f"{net.name}-{name_suffix}")
    step = TransformStep(
        name="LOCALIZE",
        kind=StepKind.OVERAPPROX,
        target_map={t: mapping.get(t) for t in net.targets},
    )
    return TransformResult(netlist=out, step=step, mapping=mapping)


def localize_by_distance(net: Netlist, target: int,
                         radius: int) -> TransformResult:
    """Localize everything more than ``radius`` register-levels from
    ``target`` (a standard localization-refinement starting cut)."""
    frontier: Set[int] = set(state_support(net, target))
    kept: Set[int] = set(frontier)
    for _ in range(radius):
        nxt: Set[int] = set()
        for vid in frontier:
            gate = net.gate(vid)
            for edge in gate.fanins[:1] if gate.type is GateType.REGISTER \
                    else gate.fanins:
                nxt |= state_support(net, edge)
        frontier = nxt - kept
        kept |= nxt
    cut = [vid for vid in net.state_elements if vid not in kept]
    return localize(net, cut)


def case_split(net: Netlist, assignment: Dict[int, int],
               name_suffix: str = "case") -> TransformResult:
    """Case splitting: fix the given primary inputs to constants.

    The result *underapproximates* the original behaviour: a target hit
    found on it is a real hit, but "diameter bounds obtained upon an
    underapproximated netlist cannot generally be used to bound the
    original netlist" (Section 3.6).
    """
    work = net.copy()
    const0 = work.const0()
    const1 = None
    for vid, value in assignment.items():
        gate = work.gate(vid)
        if gate.type is not GateType.INPUT:
            raise ValueError(f"case split requires primary inputs; "
                             f"{vid} is {gate.type.value}")
        if value:
            if const1 is None:
                const1 = work.add_gate(GateType.NOT, (const0,))
            work.replace_gate(vid, Gate(GateType.BUF, (const1,), gate.name))
        else:
            work.replace_gate(vid, Gate(GateType.BUF, (const0,), gate.name))
    out, mapping = rebuild(work, name=f"{net.name}-{name_suffix}")
    step = TransformStep(
        name="CASESPLIT",
        kind=StepKind.UNDERAPPROX,
        target_map={t: mapping.get(t) for t in net.targets},
    )
    return TransformResult(netlist=out, step=step, mapping=mapping)
