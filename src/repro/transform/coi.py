"""Cone-of-influence reduction.

"Note also that a cone-of-influence reduction preserves trace-
equivalence of all vertices in the cone" (Section 3.1) — so by
Theorem 1 it is free with respect to diameter bounds, while possibly
removing state elements that inflate structural bounds.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.record import StepKind, TransformResult, TransformStep
from ..netlist import Netlist, rebuild


def coi_reduction(net: Netlist,
                  roots: Optional[Iterable[int]] = None,
                  name_suffix: str = "coi") -> TransformResult:
    """Restrict ``net`` to the cone of influence of ``roots``.

    ``roots`` defaults to the targets alone (outputs outside the
    property cones are dropped — the point of the reduction).
    """
    roots = list(roots) if roots is not None else list(net.targets)
    out, mapping = rebuild(net, roots=roots,
                           name=f"{net.name}-{name_suffix}")
    step = TransformStep(
        name="COI",
        kind=StepKind.TRACE_EQUIVALENT,
        target_map={t: mapping.get(t) for t in net.targets},
    )
    return TransformResult(netlist=out, step=step, mapping=mapping)
