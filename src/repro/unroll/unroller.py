"""Time-frame expansion of netlists into an incremental SAT solver.

:class:`Unrolling` lazily encodes frames 0, 1, 2, ... of a netlist.
Frame ``t`` exposes a literal for every vertex at time ``t``; state
literals at the frame boundaries are chained through register next
edges and latch hold-muxes.  The initial state can be constrained to
``Z`` (for BMC) or left free (for recurrence-diameter and induction
queries).

By default every frame is *stamped* from a compiled
:class:`~repro.sat.template.FrameTemplate` (encode once, instantiate
per frame by offset arithmetic) instead of re-walking the netlist; the
stamped solver state is element-wise identical to the direct
``encode_frame`` path, so verdicts, bounds and counterexample models
are unaffected.  Pass ``use_template=False`` (or disable templates
globally) to force the direct path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import obs
from ..netlist import GateType, Netlist
from ..sat import CnfSink, Solver, encode_frame, encode_init_state, \
    encode_mux, pos
from ..sat.template import get_template, netlist_has_const0, \
    templates_enabled


class Unrolling:
    """Incrementally unrolled transition structure in a SAT solver."""

    def __init__(
        self,
        net: Netlist,
        solver: Optional[Solver] = None,
        constrain_init: bool = True,
        use_template: Optional[bool] = None,
    ) -> None:
        self.net = net
        self.solver = solver or Solver()
        self.sink = CnfSink(self.solver)
        self.constrain_init = constrain_init
        if use_template is None:
            use_template = templates_enabled()
        self._template = get_template(net, "frame") if use_template \
            else None
        self._has_const0 = self._template.has_const0 \
            if self._template is not None else netlist_has_const0(net)
        #: per-frame vertex -> literal maps
        self.frames: List[Dict[int, int]] = []
        #: state literals at each frame boundary (index 0 = initial)
        self.state_lits: List[Dict[int, int]] = []
        self._bootstrap()

    def _bootstrap(self) -> None:
        state0 = {vid: pos(self.solver.new_var())
                  for vid in self.net.state_elements}
        self.state_lits.append(state0)
        if self._has_const0:
            # Pin the shared true/false variable to a deterministic
            # position up front: the direct path would otherwise
            # allocate it lazily inside whichever encode first reaches
            # CONST0, and template/direct variable numbering would
            # diverge (breaking the bit-for-bit parity contract).
            _ = self.sink.true_lit
        if self.constrain_init:
            encode_init_state(self.net, self.sink, state0)

    def frame(self, t: int) -> Dict[int, int]:
        """Literal map of frame ``t``, encoding frames up to ``t``."""
        while len(self.frames) <= t:
            self._encode_next_frame()
        return self.frames[t]

    def _encode_next_frame(self) -> None:
        t = len(self.frames)
        reg = obs.get_registry()
        with reg.span("encode"):
            if self._template is not None:
                lits, nxt = self._template.stamp(self.sink,
                                                 self.state_lits[t])
            else:
                leaves = dict(self.state_lits[t])
                lits = encode_frame(self.net, self.sink, leaves)
                nxt = {}
                for vid in self.net.state_elements:
                    gate = self.net.gate(vid)
                    if gate.type is GateType.REGISTER:
                        nxt[vid] = lits[gate.fanins[0]]
                    else:
                        data, clock = gate.fanins
                        out = pos(self.solver.new_var())
                        encode_mux(self.sink, out, lits[clock],
                                   lits[data], lits[vid])
                        nxt[vid] = out
        obs.progress("encode", frame=t,
                     vars=self.solver.num_vars,
                     templated=self._template is not None)
        self.frames.append(lits)
        self.state_lits.append(nxt)

    def literal(self, vid: int, t: int) -> int:
        """The literal of vertex ``vid`` at time ``t``."""
        return self.frame(t)[vid]

    def input_values(self, model: List[bool], t: int) -> Dict[int, int]:
        """Decode primary-input values at frame ``t`` from a model."""
        lits = self.frame(t)
        out = {}
        for vid in self.net.inputs:
            lit = lits[vid]
            val = model[lit >> 1]
            out[vid] = int(val if not (lit & 1) else not val)
        return out

    def state_values(self, model: List[bool], t: int) -> Dict[int, int]:
        """Decode state-element values at frame boundary ``t``."""
        out = {}
        for vid, lit in self.state_lits[t].items():
            val = model[lit >> 1]
            out[vid] = int(val if not (lit & 1) else not val)
        return out
