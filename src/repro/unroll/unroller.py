"""Time-frame expansion of netlists into an incremental SAT solver.

:class:`Unrolling` lazily encodes frames 0, 1, 2, ... of a netlist.
Frame ``t`` exposes a literal for every vertex at time ``t``; state
literals at the frame boundaries are chained through register next
edges and latch hold-muxes.  The initial state can be constrained to
``Z`` (for BMC) or left free (for recurrence-diameter and induction
queries).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..netlist import GateType, Netlist
from ..sat import CnfSink, Solver, encode_frame, encode_init_state, \
    encode_mux, pos


class Unrolling:
    """Incrementally unrolled transition structure in a SAT solver."""

    def __init__(
        self,
        net: Netlist,
        solver: Optional[Solver] = None,
        constrain_init: bool = True,
    ) -> None:
        self.net = net
        self.solver = solver or Solver()
        self.sink = CnfSink(self.solver)
        self.constrain_init = constrain_init
        #: per-frame vertex -> literal maps
        self.frames: List[Dict[int, int]] = []
        #: state literals at each frame boundary (index 0 = initial)
        self.state_lits: List[Dict[int, int]] = []
        self._bootstrap()

    def _bootstrap(self) -> None:
        state0 = {vid: pos(self.solver.new_var())
                  for vid in self.net.state_elements}
        self.state_lits.append(state0)
        if self.constrain_init:
            encode_init_state(self.net, self.sink, state0)

    def frame(self, t: int) -> Dict[int, int]:
        """Literal map of frame ``t``, encoding frames up to ``t``."""
        while len(self.frames) <= t:
            self._encode_next_frame()
        return self.frames[t]

    def _encode_next_frame(self) -> None:
        t = len(self.frames)
        leaves = dict(self.state_lits[t])
        lits = encode_frame(self.net, self.sink, leaves)
        self.frames.append(lits)
        nxt: Dict[int, int] = {}
        for vid in self.net.state_elements:
            gate = self.net.gate(vid)
            if gate.type is GateType.REGISTER:
                nxt[vid] = lits[gate.fanins[0]]
            else:
                data, clock = gate.fanins
                out = pos(self.solver.new_var())
                encode_mux(self.sink, out, lits[clock], lits[data],
                           lits[vid])
                nxt[vid] = out
        self.state_lits.append(nxt)

    def literal(self, vid: int, t: int) -> int:
        """The literal of vertex ``vid`` at time ``t``."""
        return self.frame(t)[vid]

    def input_values(self, model: List[bool], t: int) -> Dict[int, int]:
        """Decode primary-input values at frame ``t`` from a model."""
        lits = self.frame(t)
        out = {}
        for vid in self.net.inputs:
            lit = lits[vid]
            val = model[lit >> 1]
            out[vid] = int(val if not (lit & 1) else not val)
        return out

    def state_values(self, model: List[bool], t: int) -> Dict[int, int]:
        """Decode state-element values at frame boundary ``t``."""
        out = {}
        for vid, lit in self.state_lits[t].items():
            val = model[lit >> 1]
            out[vid] = int(val if not (lit & 1) else not val)
        return out
