"""Time-frame expansion, BMC, and k-induction."""

from .unroller import Unrolling
from .bmc import (
    ABORTED,
    BMCResult,
    BOUNDED,
    Counterexample,
    FALSIFIED,
    PROVEN,
    bmc,
    bmc_multi,
    replay_counterexample,
)
from .induction import add_state_difference, k_induction

__all__ = [
    "ABORTED",
    "BMCResult",
    "BOUNDED",
    "Counterexample",
    "FALSIFIED",
    "PROVEN",
    "Unrolling",
    "add_state_difference",
    "bmc",
    "bmc_multi",
    "k_induction",
    "replay_counterexample",
]
