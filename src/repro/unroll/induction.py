"""K-induction with simple-path constraints.

Implements the Sheeran/Singh/Stalmarck-style inductive check the paper
cites ([5]) as a hybrid alternative for completing BMC: a target is
proven unreachable if (base) it is unhittable within ``k`` steps from
the initial states and (step) no length-``k`` *simple* path of states
all avoiding the target can be extended to a hit.  Also provides the
pairwise state-difference encoding reused by the recurrence-diameter
computation.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..netlist import Netlist
from ..resilience import Budget
from ..sat import UNKNOWN, UNSAT, CnfSink, encode_xor2, lit_not, pos
from .bmc import BMCResult, FALSIFIED, PROVEN, BOUNDED, ABORTED, \
    _budget_abort, bmc
from .unroller import Unrolling


def add_state_difference(
    sink: CnfSink, state_a: Dict[int, int], state_b: Dict[int, int]
) -> None:
    """Add a clause forcing states ``a`` and ``b`` to differ somewhere."""
    diffs = []
    for vid, lit_a in state_a.items():
        lit_b = state_b[vid]
        out = pos(sink.new_var())
        encode_xor2(sink, out, lit_a, lit_b)
        diffs.append(out)
    sink.add_clause(diffs)


def k_induction(
    net: Netlist,
    target: Optional[int] = None,
    max_k: int = 10,
    conflict_budget: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> BMCResult:
    """Prove or falsify a target by k-induction up to ``max_k``.

    Returns :data:`PROVEN` (with ``depth_checked`` = the inductive k),
    :data:`FALSIFIED` (with a counterexample from the base case), or
    :data:`BOUNDED` if ``max_k`` is exhausted inconclusively.
    ``budget`` is checked per step query (:data:`ABORTED` with a
    structured ``exhaustion_reason`` on exhaustion).
    """
    if target is None:
        if not net.targets:
            raise ValueError("netlist has no targets")
        target = net.targets[0]
    # Base cases are discharged incrementally by plain BMC.
    base = bmc(net, target, max_depth=max_k + 1,
               conflict_budget=conflict_budget, budget=budget)
    if base.status in (FALSIFIED, ABORTED):
        return base

    # Step: an unconstrained simple path of k+1 states with the target
    # false at 0..k-1 and true at k must be UNSAT for inductiveness.
    for k in range(1, max_k + 1):
        reason = _budget_abort(budget)
        if reason is not None:
            return BMCResult(ABORTED, target, k,
                             exhaustion_reason=reason)
        step = Unrolling(net, constrain_init=False)
        solver = step.solver
        for i in range(k):
            solver.add_clause([lit_not(step.literal(target, i))])
        step.frame(k)
        for i in range(k + 1):
            for j in range(i + 1, k + 1):
                add_state_difference(step.sink, step.state_lits[i],
                                     step.state_lits[j])
        result = solver.solve([step.literal(target, k)],
                              conflict_budget=conflict_budget,
                              budget=budget)
        if result == UNSAT:
            return BMCResult(PROVEN, target, k)
        if result == UNKNOWN:
            return BMCResult(
                ABORTED, target, k,
                exhaustion_reason=solver.last_exhaustion)
    return BMCResult(BOUNDED, target, max_k)
