"""K-induction with simple-path constraints.

Implements the Sheeran/Singh/Stalmarck-style inductive check the paper
cites ([5]) as a hybrid alternative for completing BMC: a target is
proven unreachable if (base) it is unhittable within ``k`` steps from
the initial states and (step) no length-``k`` *simple* path of states
all avoiding the target can be extended to a hit.  Also provides the
pairwise state-difference encoding reused by the recurrence-diameter
computation.
"""

from __future__ import annotations

from contextlib import nullcontext as _nullcontext
from typing import Dict, Optional

from .. import obs
from ..obs import metrics as _metrics
from ..cert import certification_enabled, certify_unsat
from ..netlist import Netlist
from ..resilience import Budget
from ..sat import UNKNOWN, UNSAT, CnfSink, encode_xor2, lit_not, pos, \
    use_proofs
from ..sat import cube as _cube
from .bmc import BMCResult, FALSIFIED, PROVEN, BOUNDED, ABORTED, \
    _budget_abort, _budget_remaining, bmc
from .unroller import Unrolling


def add_state_difference(
    sink: CnfSink, state_a: Dict[int, int], state_b: Dict[int, int]
) -> None:
    """Add a clause forcing states ``a`` and ``b`` to differ somewhere."""
    diffs = []
    for vid, lit_a in state_a.items():
        lit_b = state_b[vid]
        out = pos(sink.new_var())
        encode_xor2(sink, out, lit_a, lit_b)
        diffs.append(out)
    sink.add_clause(diffs)


def k_induction(
    net: Netlist,
    target: Optional[int] = None,
    max_k: int = 10,
    conflict_budget: Optional[int] = None,
    budget: Optional[Budget] = None,
    use_template: Optional[bool] = None,
    certify: Optional[bool] = None,
    use_cubes: Optional[bool] = None,
) -> BMCResult:
    """Prove or falsify a target by k-induction up to ``max_k``.

    Returns :data:`PROVEN` (with ``depth_checked`` = the inductive k),
    :data:`FALSIFIED` (with a counterexample from the base case), or
    :data:`BOUNDED` if ``max_k`` is exhausted inconclusively.
    ``budget`` is checked per step query (:data:`ABORTED` with a
    structured ``exhaustion_reason`` on exhaustion).

    The step cases share ONE persistent unrolling across all rounds:
    round ``k`` encodes only the new frame and the ``k`` new
    state-difference clauses pairing it with frames ``0..k-1`` (the
    earlier pairs are already in the solver), and blocks the target at
    frames ``0..k-1`` through solve-time *assumptions* rather than
    permanent unit clauses — so the clause set stays exactly the
    simple-path encoding and learned clauses carry across rounds.  The
    previous implementation rebuilt a fresh unrolling with all O(k²)
    pairwise difference clauses every round (O(k³) clauses total over
    a run); the ``induction.diff_clauses`` / ``induction.step_vars``
    counters expose the encoding size so the reduction is visible in
    bench artifacts.

    ``certify`` (None = the global certification toggle) certifies
    both halves of a PROVEN verdict: the base window through
    :func:`~repro.unroll.bmc.bmc`'s own certification, and the step
    refutation by DRAT-checking the step solver's proof log before
    PROVEN is returned.  Failure raises
    :class:`repro.resilience.CertificationFailure`.

    ``use_cubes`` (None = the :func:`repro.sat.cube.cubes_enabled`
    toggle) arms cube-and-conquer for both halves: the base window
    through :func:`~repro.unroll.bmc.bmc`'s cube path, and the step
    query by splitting it when it exceeds the configured conflict
    threshold.  A cube-refuted step is certified per cube in its
    workers; the parent proof-log check then covers only queries this
    solver refuted itself.
    """
    if target is None:
        if not net.targets:
            raise ValueError("netlist has no targets")
        target = net.targets[0]
    do_cert = certification_enabled() if certify is None else certify
    cubes = _cube.cubes_enabled() if use_cubes is None else use_cubes
    # Base cases are discharged incrementally by plain BMC.  Base and
    # step share one compiled frame template (the template cache is
    # keyed by netlist structure, not by unrolling).
    base = bmc(net, target, max_depth=max_k + 1,
               conflict_budget=conflict_budget, budget=budget,
               use_template=use_template, certify=do_cert,
               use_cubes=cubes)
    if base.status in (FALSIFIED, ABORTED):
        return base

    # Step: an unconstrained simple path of k+1 states with the target
    # false at 0..k-1 and true at k must be UNSAT for inductiveness.
    reg = obs.get_registry()
    with use_proofs(True) if do_cert else _nullcontext():
        step = Unrolling(net, constrain_init=False,
                         use_template=use_template)
    solver = step.solver
    for k in range(1, max_k + 1):
        reason = _budget_abort(budget)
        if reason is not None:
            return BMCResult(ABORTED, target, k,
                             exhaustion_reason=reason)
        step.frame(k)
        for i in range(k):
            add_state_difference(step.sink, step.state_lits[i],
                                 step.state_lits[k])
        reg.counter("induction.diff_clauses", k)
        assumptions = [lit_not(step.literal(target, i))
                       for i in range(k)]
        assumptions.append(step.literal(target, k))
        attempt = None
        with _metrics.query_context("induction", k=k, target=target,
                                    cube=cubes or None,
                                    cert=do_cert or None), \
                reg.span("induction/step") as step_span:
            if cubes:
                attempt = _cube.cube_solve(
                    solver, assumptions,
                    payload={"mode": "induction", "net": net,
                             "k": k, "target": target,
                             "use_template": use_template,
                             "certify": do_cert},
                    conflict_budget=conflict_budget,
                    budget=budget, name="induction.cube")
                result = attempt.result
            else:
                result = solver.solve(assumptions,
                                      conflict_budget=conflict_budget,
                                      budget=budget)
        split = attempt is not None and attempt.used_cubes
        _metrics.observe("induction.step_seconds", step_span.seconds)
        obs.progress("induction", k=k, of=max_k, result=result,
                     seconds=round(step_span.seconds, 6),
                     budget_s=_budget_remaining(budget))
        if result == UNSAT:
            reg.counter("induction.step_vars", solver.num_vars)
            if do_cert and not split:
                certify_unsat(solver, "k-induction")
            _metrics.record_query(
                engine="induction", boundary=True, verdict=PROVEN,
                k=k, cert=do_cert or None, cube=cubes or None)
            return BMCResult(PROVEN, target, k)
        if result == UNKNOWN:
            return BMCResult(
                ABORTED, target, k,
                exhaustion_reason=attempt.exhaustion if split
                else solver.last_exhaustion)
    reg.counter("induction.step_vars", solver.num_vars)
    return BMCResult(BOUNDED, target, max_k)
