"""Bounded model checking (BMC) over the SAT unrolling.

``BMC [2] attempts to find a property violation within k time-steps
from the initial state(s) of a design.``  With a diameter bound ``d``
from :mod:`repro.diameter`, a clean check of depths ``0 .. d - 1``
constitutes a *complete* proof (the paper's central motivation): the
generalized diameter of Definition 3 is "one greater than the standard
definition for graphs [matching] the number of time-steps necessary to
ensure completeness of BMC".
"""

from __future__ import annotations

from contextlib import nullcontext as _nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import obs
from ..obs import metrics as _metrics
from ..cert import certification_enabled, certify_unsat, certify_witness
from ..netlist import Netlist
from ..resilience import Budget, Cancelled
from ..sat import SAT, UNKNOWN, use_proofs
from ..sat import cube as _cube
from .unroller import Unrolling

#: Verification statuses.
FALSIFIED = "falsified"  # counterexample found
PROVEN = "proven"  # complete bound exhausted without a hit
BOUNDED = "bounded"  # no hit within the checked window (incomplete)
ABORTED = "aborted"  # resource-out


@dataclass
class Counterexample:
    """An input trace hitting a target at time ``depth``."""

    depth: int
    inputs: List[Dict[int, int]] = field(default_factory=list)
    initial_state: Dict[int, int] = field(default_factory=dict)


@dataclass
class BMCResult:
    """Outcome of a bounded check.

    ``depth_checked`` invariant — the number of time-steps with a
    *definitive* per-frame answer: frames ``0 .. depth_checked - 1``
    have each been resolved SAT or UNSAT.  Per status:

    * :data:`FALSIFIED` — frames ``0 .. t - 1`` refuted and frame
      ``t`` hit, so ``depth_checked == t + 1 ==
      counterexample.depth + 1`` (note the off-by-one: the
      counterexample records the *hit time*, ``depth_checked`` the
      *window size*).
    * :data:`ABORTED` — the solver resourced out at frame ``t``,
      which is therefore unresolved: ``depth_checked == t``.  An
      abort on the very first query gives ``depth_checked == 0``.
      ``exhaustion_reason`` carries the structured cause (one of
      :data:`repro.resilience.EXHAUSTION_REASONS`, or None for a
      non-resource inconclusive answer such as an injected spurious
      unknown).
    * :data:`BOUNDED` — every queried frame refuted;
      ``depth_checked`` equals the window actually examined
      (``min(max_depth, complete_bound)`` when a bound was supplied).
    * :data:`PROVEN` — all refuted and ``depth_checked >=
      complete_bound``, so the window covers the full diameter.

    Keep these conventions in sync with :func:`bmc`, :func:`bmc_multi`
    and ``k_induction`` (whose PROVEN reuses the field for the
    inductive ``k`` — documented there).
    """

    status: str
    target: int
    depth_checked: int
    counterexample: Optional[Counterexample] = None
    exhaustion_reason: Optional[str] = None

    @property
    def is_complete(self) -> bool:
        """True when the verdict is definitive (proven/falsified)."""
        return self.status in (FALSIFIED, PROVEN)


def _budget_remaining(budget: Optional[Budget]) -> Optional[float]:
    """Seconds left on ``budget`` for progress records (None if
    unlimited or no budget)."""
    if budget is None:
        return None
    remaining = budget.remaining_seconds()
    return None if remaining is None else round(remaining, 3)


def _budget_abort(budget: Optional[Budget]) -> Optional[str]:
    """Pre-frame cooperative check: raises on cancellation, returns
    the exhaustion reason (None to keep going)."""
    if budget is None:
        return None
    if budget.cancelled:
        raise Cancelled(budget_name=budget.name)
    return budget.exhausted()


def bmc(
    net: Netlist,
    target: Optional[int] = None,
    max_depth: int = 20,
    complete_bound: Optional[int] = None,
    conflict_budget: Optional[int] = None,
    budget: Optional[Budget] = None,
    use_template: Optional[bool] = None,
    certify: Optional[bool] = None,
    use_cubes: Optional[bool] = None,
) -> BMCResult:
    """Check target reachability for depths ``0 .. max_depth - 1``.

    ``complete_bound`` is a diameter bound for the target: if the
    window covers ``0 .. complete_bound - 1`` with no hit, the target
    is declared :data:`PROVEN` unreachable.  Returns the first
    counterexample otherwise.  ``conflict_budget`` follows the
    ``Solver.solve`` contract; ``budget`` is checked before every
    frame (and cooperatively inside each solve) — exhaustion yields
    :data:`ABORTED` with a structured ``exhaustion_reason``,
    cancellation raises.  ``use_template`` forwards to
    :class:`~repro.unroll.unroller.Unrolling` (None = the global
    template toggle); either setting yields identical results.

    ``certify`` (None = the :func:`repro.cert.certification_enabled`
    toggle) arms verdict certification: the unrolling solver keeps a
    DRAT-style proof log, refuted windows are checked by the
    :mod:`repro.cert.drat` checker on exit, and counterexamples are
    replayed through the bit-parallel simulator before FALSIFIED is
    returned.  A verdict that fails its check raises
    :class:`repro.resilience.CertificationFailure` instead of
    returning.  ABORTED results are never certified (no verdict
    stands).

    ``use_cubes`` (None = the :func:`repro.sat.cube.cubes_enabled`
    toggle) arms the cube-and-conquer path: a frame query that burns
    the configured conflict threshold inconclusively is split into a
    cube set and raced across workers (see :mod:`repro.sat.cube`).
    Verdicts, bounds and ``depth_checked`` are identical either way;
    a SAT frame's counterexample may come from any cube (each is
    certified by replay when ``certify`` is armed).
    """
    if target is None:
        if not net.targets:
            raise ValueError("netlist has no targets")
        target = net.targets[0]
    do_cert = certification_enabled() if certify is None else certify
    cubes = _cube.cubes_enabled() if use_cubes is None else use_cubes
    with use_proofs(True) if do_cert else _nullcontext():
        unroll = Unrolling(net, constrain_init=True,
                           use_template=use_template)
    refuted = 0
    refuted_local = 0  # frames refuted by *this* solver's own proof
    depth = max_depth
    if complete_bound is not None:
        depth = min(max_depth, complete_bound)
    reg = obs.get_registry()
    watch = obs.stopwatch()

    def _finish(res: BMCResult) -> BMCResult:
        # Engine-call-boundary ledger record (no-op when disabled).
        _metrics.record_query(
            engine="bmc", boundary=True, verdict=res.status,
            frame=res.depth_checked, seconds=watch.elapsed,
            exhausted=res.exhaustion_reason,
            cert=do_cert or None, cube=cubes or None)
        return res

    with reg.span("bmc"):
        for t in range(depth):
            reason = _budget_abort(budget)
            if reason is not None:
                reg.counter("bmc.budget_aborts")
                return _finish(BMCResult(ABORTED, target, t,
                                         exhaustion_reason=reason))
            lit = unroll.literal(target, t)
            attempt = None
            with _metrics.query_context("bmc", frame=t, target=target,
                                        cube=cubes or None,
                                        cert=do_cert or None), \
                    reg.span("frame") as frame_span:
                if cubes:
                    attempt = _cube.cube_solve(
                        unroll.solver, [lit],
                        payload={"mode": "bmc", "net": net,
                                 "frame": t, "target": target,
                                 "use_template": use_template,
                                 "certify": do_cert},
                        conflict_budget=conflict_budget,
                        budget=budget, name="bmc.cube")
                    result = attempt.result
                else:
                    result = unroll.solver.solve(
                        [lit], conflict_budget=conflict_budget,
                        budget=budget)
            _metrics.observe("bmc.frame_seconds", frame_span.seconds)
            split = attempt is not None and attempt.used_cubes
            reg.event("bmc.frame", t=t, result=result,
                      seconds=frame_span.seconds, cubes=split)
            obs.progress(
                "bmc", frame=t, of=depth, result=result,
                seconds=round(frame_span.seconds, 6),
                budget_s=_budget_remaining(budget))
            if result == SAT:
                if split:
                    # The winning cube built and (when certifying)
                    # literal-checked the trace in its worker; replay
                    # it once more against the netlist semantics here.
                    cex = attempt.cex
                    if do_cert:
                        certify_witness(net, target, cex, engine="bmc")
                else:
                    model = unroll.solver.model
                    cex = Counterexample(
                        depth=t,
                        inputs=[unroll.input_values(model, i)
                                for i in range(t + 1)],
                        initial_state=unroll.state_values(model, 0),
                    )
                    if do_cert:
                        certify_witness(net, target, cex, model=model,
                                        unroll=unroll, engine="bmc")
                if do_cert and refuted_local:
                    certify_unsat(unroll.solver, "bmc")
                return _finish(BMCResult(FALSIFIED, target, t + 1, cex))
            if result == UNKNOWN:
                return _finish(BMCResult(
                    ABORTED, target, t,
                    exhaustion_reason=attempt.exhaustion if split
                    else unroll.solver.last_exhaustion))
            refuted += 1
            if not split:
                refuted_local += 1
    if do_cert and refuted_local:
        certify_unsat(unroll.solver, "bmc")
    if complete_bound is not None and depth >= complete_bound:
        return _finish(BMCResult(PROVEN, target, depth))
    return _finish(BMCResult(BOUNDED, target, depth))


def bmc_multi(
    net: Netlist,
    targets: Optional[List[int]] = None,
    max_depth: int = 20,
    complete_bounds: Optional[Dict[int, int]] = None,
    conflict_budget: Optional[int] = None,
    budget: Optional[Budget] = None,
    use_template: Optional[bool] = None,
    certify: Optional[bool] = None,
    use_cubes: Optional[bool] = None,
) -> Dict[int, BMCResult]:
    """Check many targets over one shared unrolling.

    The Section 4 experiments check every primary output as a target;
    sharing the time-frame expansion amortizes the Tseitin encoding
    and lets learned clauses transfer between target queries (each
    target is queried by assumption, so the solver state stays
    reusable).  ``complete_bounds`` optionally maps targets to their
    diameter bounds; a target whose window closes is PROVEN and not
    queried further.

    ``certify`` follows the :func:`bmc` contract.  Witnesses are
    replayed at discovery time; the shared solver's proof log —
    which covers every refuted (target, frame) query — is checked
    once after the sweep, so one check certifies every UNSAT-backed
    verdict in the returned map.  ``use_cubes`` follows the
    :func:`bmc` contract too; a cube-refuted (target, frame) query is
    certified in its workers, not by the shared solver's log, so the
    final check is skipped when *every* refutation came from cubes.
    """
    if targets is None:
        targets = list(dict.fromkeys(net.targets))
    complete_bounds = complete_bounds or {}
    do_cert = certification_enabled() if certify is None else certify
    cubes = _cube.cubes_enabled() if use_cubes is None else use_cubes
    watch = obs.stopwatch()
    with use_proofs(True) if do_cert else _nullcontext():
        unroll = Unrolling(net, constrain_init=True,
                           use_template=use_template)
    refuted_local = 0
    results: Dict[int, BMCResult] = {}
    open_targets = list(dict.fromkeys(targets))
    reg = obs.get_registry()
    for t in range(max_depth):
        if not open_targets:
            break
        still_open = []
        for target in open_targets:
            bound = complete_bounds.get(target)
            if bound is not None and t >= bound:
                # Frames 0 .. t-1 all refuted (t >= bound suffices).
                results[target] = BMCResult(PROVEN, target, t)
                continue
            reason = _budget_abort(budget)
            if reason is not None:
                reg.counter("bmc.budget_aborts")
                results[target] = BMCResult(ABORTED, target, t,
                                            exhaustion_reason=reason)
                continue
            lit = unroll.literal(target, t)
            attempt = None
            with _metrics.query_context("bmc.multi", frame=t,
                                        target=target,
                                        cube=cubes or None,
                                        cert=do_cert or None), \
                    reg.span("bmc.multi/frame"):
                if cubes:
                    attempt = _cube.cube_solve(
                        unroll.solver, [lit],
                        payload={"mode": "bmc", "net": net,
                                 "frame": t, "target": target,
                                 "use_template": use_template,
                                 "certify": do_cert},
                        conflict_budget=conflict_budget,
                        budget=budget, name="bmc.multi.cube")
                    outcome = attempt.result
                else:
                    outcome = unroll.solver.solve(
                        [lit], conflict_budget=conflict_budget,
                        budget=budget)
            split = attempt is not None and attempt.used_cubes
            if outcome == SAT:
                if split:
                    cex = attempt.cex
                    if do_cert:
                        certify_witness(net, target, cex,
                                        engine="bmc.multi")
                else:
                    model = unroll.solver.model
                    cex = Counterexample(
                        depth=t,
                        inputs=[unroll.input_values(model, i)
                                for i in range(t + 1)],
                        initial_state=unroll.state_values(model, 0),
                    )
                    if do_cert:
                        certify_witness(net, target, cex, model=model,
                                        unroll=unroll,
                                        engine="bmc.multi")
                results[target] = BMCResult(FALSIFIED, target, t + 1, cex)
            elif outcome == UNKNOWN:
                results[target] = BMCResult(
                    ABORTED, target, t,
                    exhaustion_reason=attempt.exhaustion if split
                    else unroll.solver.last_exhaustion)
            else:
                if not split:
                    refuted_local += 1
                still_open.append(target)
        obs.progress("bmc.multi", frame=t, of=max_depth,
                     open=len(still_open), resolved=len(results),
                     budget_s=_budget_remaining(budget))
        open_targets = still_open
    if do_cert and refuted_local:
        certify_unsat(unroll.solver, "bmc.multi")
    for target in open_targets:
        bound = complete_bounds.get(target)
        if bound is not None and max_depth >= bound:
            results[target] = BMCResult(PROVEN, target, max_depth)
        else:
            results[target] = BMCResult(BOUNDED, target, max_depth)
    _metrics.record_query(
        engine="bmc.multi", boundary=True, seconds=watch.elapsed,
        targets=len(results),
        falsified=sum(1 for r in results.values()
                      if r.status == FALSIFIED),
        proven=sum(1 for r in results.values() if r.status == PROVEN),
        cert=do_cert or None, cube=cubes or None)
    return results


def replay_counterexample(net: Netlist, target: int,
                          cex: Counterexample) -> bool:
    """Validate a counterexample by resimulation; True if target hit."""
    from ..sim import BitParallelSimulator

    sim = BitParallelSimulator(net)
    state = dict(cex.initial_state)
    # The decoded initial state already includes init-cone effects.
    for t, inputs in enumerate(cex.inputs):
        values, state = sim.step(state, inputs)
        if t == cex.depth:
            return bool(values[target] & 1)
    return False
