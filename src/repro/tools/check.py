"""CLI: complete bounded verification of a netlist file's targets.

Usage::

    python -m repro.tools.check design.bench [--strategy COM,RET,COM]
        [--max-depth 100] [--method bmc|induction|cegar]
        [--vcd out.vcd]

Computes a back-translated diameter bound per target, then discharges
it: BMC to the bound (complete), k-induction, or localization
refinement.  Falsified targets can dump a counterexample waveform.

``--certify`` arms the :mod:`repro.cert` layer for the whole run:
every UNSAT window is DRAT-checked, every counterexample is replayed
through the simulator, and a verdict that fails its check aborts the
target with a nonzero exit instead of being reported.
"""

from __future__ import annotations

import argparse
from contextlib import nullcontext
from typing import Optional, Sequence

from .. import obs
from ..cert import use_certification
from ..core import TBVEngine
from ..resilience import CertificationFailure
from ..transform.localize_cegar import localization_refinement
from ..unroll import bmc, k_induction
from .io import load_netlist
from .vcd import counterexample_to_vcd


def _cert_summary() -> str:
    """One-line certification tally from the active registry."""
    reg = obs.get_registry()
    checked = reg.counter_value("cert.checked")
    failed = reg.counter_value("cert.failed")
    lemmas = reg.counter_value("cert.lemmas_checked")
    trimmed = reg.counter_value("cert.lemmas_trimmed")
    return (f"certification: {checked} check(s), {failed} failure(s), "
            f"{lemmas} lemma(s) verified, {trimmed} trimmed")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; nonzero when any target is falsified (or,
    under ``--certify``, when any verdict fails certification)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("netlist", help=".bench or .aag file")
    parser.add_argument("--strategy", default="COM,RET,COM")
    parser.add_argument("--max-depth", type=int, default=100)
    parser.add_argument("--method",
                        choices=["bmc", "induction", "cegar"],
                        default="bmc")
    parser.add_argument("--vcd", default=None,
                        help="dump first counterexample as VCD")
    parser.add_argument("--certify", action="store_true",
                        help="DRAT-check UNSAT verdicts and replay "
                             "counterexample witnesses; certification "
                             "failures exit nonzero")
    args = parser.parse_args(argv)

    net = load_netlist(args.netlist)
    print(f"loaded {net}")
    from ..netlist import validate as validate_netlist

    for issue in validate_netlist(net):
        print(f"  lint: {issue.severity}[{issue.code}] {issue.message}")
    failures = 0
    cert_failures = 0
    vcd_written = False
    scope = use_certification(True) if args.certify else nullcontext()
    with scope:
        if args.method == "bmc":
            engine = TBVEngine(args.strategy)
            result = engine.run(net)
            for report in result.reports:
                label = report.name or f"t{report.target}"
                if report.status == "proven":
                    print(f"  {label:<20} PROVEN (by transformation)")
                    continue
                try:
                    check = bmc(net, report.target,
                                max_depth=args.max_depth,
                                complete_bound=report.bound)
                except CertificationFailure as exc:
                    cert_failures += 1
                    print(f"  {label:<20} CERTIFICATION FAILED "
                          f"({exc})")
                    continue
                verdict = check.status.upper()
                detail = ""
                if check.status == "falsified":
                    failures += 1
                    detail = f" at depth {check.counterexample.depth}"
                    if args.vcd and not vcd_written:
                        with open(args.vcd, "w") as handle:
                            handle.write(counterexample_to_vcd(
                                net, report.target,
                                check.counterexample))
                        vcd_written = True
                        detail += f" (waveform: {args.vcd})"
                elif check.status == "bounded":
                    detail = (f" (bound {report.bound} exceeds depth "
                              f"budget {args.max_depth})")
                if args.certify and check.status in (
                        "falsified", "proven", "bounded"):
                    detail += " [certified]"
                print(f"  {label:<20} {verdict}{detail}")
        elif args.method == "induction":
            for target in net.targets:
                label = net.gate(target).name or f"t{target}"
                try:
                    check = k_induction(net, target,
                                        max_k=args.max_depth)
                except CertificationFailure as exc:
                    cert_failures += 1
                    print(f"  {label:<20} CERTIFICATION FAILED "
                          f"({exc})")
                    continue
                if check.status == "falsified":
                    failures += 1
                print(f"  {label:<20} {check.status.upper()} "
                      f"(k = {check.depth_checked})")
        else:
            for target in net.targets:
                label = net.gate(target).name or f"t{target}"
                try:
                    result = localization_refinement(
                        net, target, max_depth=args.max_depth)
                except CertificationFailure as exc:
                    cert_failures += 1
                    print(f"  {label:<20} CERTIFICATION FAILED "
                          f"({exc})")
                    continue
                if result.status == "falsified":
                    failures += 1
                print(f"  {label:<20} {result.status.upper()} "
                      f"({result.iterations} refinement(s), "
                      f"{result.abstraction_registers} register(s) "
                      "kept)")
    if args.certify:
        print(f"  {_cert_summary()}")
    if cert_failures:
        return 2
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
