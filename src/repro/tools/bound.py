"""CLI: diameter bounds for every target of a netlist file.

Usage::

    python -m repro.tools.bound design.bench [--strategy COM,RET,COM]
        [--threshold 50] [--bounder structural|recurrence]

Loads a ``.bench``/``.aag`` file, applies the transformation strategy,
bounds each target's diameter, back-translates via Theorems 1-4, and
prints one line per target (the per-design content of the paper's
tables).

``--strategy`` accepts ``/``-separated alternatives (e.g.
``"COM/RET/COM,RET,COM"``): they run as a portfolio — in parallel when
``--jobs N`` is given — and each target reports the best sound bound
any alternative produced, with the winning strategy named.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .. import obs
from ..core import TBVEngine, compare_strategies
from ..diameter import recurrence_diameter
from ..resilience import Budget, ResourceExhausted
from .io import load_netlist


def _recurrence_bounder(net, target):
    result = recurrence_diameter(net, from_init=True, max_k=128)
    if not result.exact:
        return 1 << 62  # effectively "no useful bound"
    return result.bound


def _portfolio_main(net, args, budget) -> int:
    """The ``/``-separated alternatives path: run every strategy (a
    portfolio, parallel when ``--jobs > 1``) and report each target's
    best sound bound.  Failed alternatives are reported, not fatal —
    each bound is independently sound, so the minimum survives any
    subset of failures.  Uses the structural bounder (the portfolio
    engine's default)."""
    strategies = args.strategy.split("/")
    portfolio = compare_strategies(net, strategies=strategies,
                                   refine_gc_limit=args.refine_gc,
                                   budget=budget, jobs=args.jobs)
    print(f"portfolio: {len(strategies)} alternative(s), "
          f"jobs={args.jobs}")
    for outcome in portfolio.outcomes:
        label = outcome.strategy or "(none)"
        if not outcome.ok:
            print(f"  {label:<20} failed: {outcome.error}")
    for target in net.targets:
        bound, strategy = portfolio.best(target)
        label = net.gate(target).name or f"t{target}"
        if bound is None:
            print(f"  {label:<20} no bound")
        elif bound == 0:
            print(f"  {label:<20} PROVEN unreachable "
                  f"(via {strategy or '(none)'})")
        else:
            star = " *" if bound < args.threshold else ""
            print(f"  {label:<20} d̂(t) = {bound}{star} "
                  f"(via {strategy or '(none)'})")
    useful = portfolio.useful(args.threshold)
    print(f"|T'|/|T| = {useful}/{len(net.targets)} "
          f"(threshold {args.threshold})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("netlist", help=".bench or .aag file")
    parser.add_argument("--strategy", default="COM,RET,COM",
                        help="transformation pipeline (default "
                             "COM,RET,COM; empty for none)")
    parser.add_argument("--threshold", type=int, default=50,
                        help="useful-bound threshold (default 50)")
    parser.add_argument("--bounder", choices=["structural", "recurrence"],
                        default="structural")
    parser.add_argument("--refine-gc", type=int, default=0,
                        help="reachable-state refinement for GCs up to "
                             "this many registers (structural bounder)")
    parser.add_argument("--timeout", type=float, default=0,
                        help="wall-clock budget in seconds (0 = "
                             "unlimited); an exhausted COM degrades "
                             "to fewer merges, bounds stay sound")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for /-separated "
                             "strategy alternatives (default 1 = "
                             "sequential)")
    parser.add_argument("--cubes", action="store_true",
                        help="split hard solver queries into cube sets "
                             "raced across --jobs workers (bounds are "
                             "unchanged)")
    parser.add_argument("--progress", action="store_true",
                        help="report live engine progress on stderr")
    args = parser.parse_args(argv)
    obs.trace.setup_cli(progress_flag=args.progress)
    if args.cubes:
        from ..sat import cube as _cube

        _cube.set_cubes_enabled(True)
        _cube.set_cube_config(jobs=max(1, args.jobs))

    net = load_netlist(args.netlist)
    print(f"loaded {net}")
    from ..netlist import validate as validate_netlist

    for issue in validate_netlist(net):
        print(f"  lint: {issue.severity}[{issue.code}] {issue.message}")
    budget = Budget(wall_seconds=args.timeout, name="bound") \
        if args.timeout else None
    if "/" in args.strategy:
        return _portfolio_main(net, args, budget)
    bounder = _recurrence_bounder if args.bounder == "recurrence" else None
    engine = TBVEngine(args.strategy, bounder=bounder,
                       refine_gc_limit=args.refine_gc)
    try:
        result = engine.run(net, budget=budget)
    except ResourceExhausted as exc:
        # Sound degradation: bound the untransformed netlist instead
        # (the structural bounder always terminates).
        print(f"budget exhausted ({exc.reason}); bounding the "
              "untransformed netlist instead")
        engine = TBVEngine("", bounder=bounder,
                           refine_gc_limit=args.refine_gc)
        result = engine.run(net)
    print(f"after {args.strategy or '(no transformation)'}: "
          f"{result.netlist}")
    for report in result.reports:
        label = report.name or f"t{report.target}"
        if report.status == "proven":
            print(f"  {label:<20} PROVEN unreachable")
        elif report.status == "trivial-hit":
            print(f"  {label:<20} trivially hit "
                  f"(within {report.bound} steps)")
        else:
            star = " *" if report.bound < args.threshold else ""
            print(f"  {label:<20} d̂(t') = {report.transformed_bound}"
                  f" -> d̂(t) = {report.bound}{star}")
    useful = result.useful(args.threshold)
    print(f"|T'|/|T| = {len(useful)}/{len(result.reports)} "
          f"(threshold {args.threshold}); avg over T' = "
          f"{result.average_bound(args.threshold):.1f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
