"""CLI: inspect streamed traces and gate bench-artifact regressions.

Usage::

    python -m repro.tools.trace summary  <trace[.pid]> [--top 15]
    python -m repro.tools.trace export   <trace> --format chrome
                                         [--out timeline.json]
    python -m repro.tools.trace flame    <trace> [--out stacks.txt]
    python -m repro.tools.trace diff     <trace_a> <trace_b> [--top 20]
    python -m repro.tools.trace trajectory [--dir benchmarks]
    python -m repro.tools.trace regress  <baseline.json> <candidate.json>
                                         [--threshold 1.3]
                                         [--min-seconds 0.05]
                                         [--report-only]

``summary`` and ``export`` operate on the JSONL files written under
``REPRO_TRACE=<path>`` (see :mod:`repro.obs.trace`): given the parent
path they automatically pick up the per-worker siblings
``<path>.<pid>`` and stitch everything into one wall-clock-aligned
timeline.  ``export --format chrome`` writes Chrome trace-event JSON
loadable in ``chrome://tracing`` or https://ui.perfetto.dev.

``flame`` folds a stitched trace's span records into collapsed-stack
lines (``outer;inner self_microseconds``) — the input format of every
flamegraph renderer (Brendan Gregg's ``flamegraph.pl``, speedscope,
the inline SVG in ``repro-report``).  ``diff`` compares two traces by
span self-time and counter totals, largest absolute change first —
"where did the time move" between two runs.  ``trajectory`` renders
the encode/solve seconds and verdict trend across every committed
``benchmarks/BENCH_*.json`` as one markdown table.

``regress`` compares two committed bench artifacts
(``benchmarks/BENCH_<rev>.json``) metric by metric — per-section
seconds, the encode/solve time split, solver effort counters, and the
``encode_speedup`` / ``simplify.speedup`` / ``cube.speedup``
higher-is-better headlines — and exits nonzero when any metric
regressed beyond the threshold, making the perf trajectory CI-gateable:

    python -m repro.tools.trace regress benchmarks/BENCH_pr3.json \
        benchmarks/BENCH_pr4.json --report-only
"""

from __future__ import annotations

import argparse
import glob as _glob
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs import trace as _trace

#: Solver-effort counters compared by ``regress`` (deterministic
#: workload => deterministic counts; a jump means the encoding or the
#: search changed, not noise).
_SOLVER_KEYS = ("sat.conflicts", "sat.decisions", "sat.propagations",
                "sat.solve_calls")
#: Minimum absolute counter delta before a ratio counts as a
#: regression (tiny denominators otherwise explode the ratio).
_MIN_COUNT = 1000


# ----------------------------------------------------------------------
# summary
# ----------------------------------------------------------------------
def _span_totals(records: List[Dict[str, Any]]
                 ) -> Tuple[Dict[str, float], Dict[str, int]]:
    """Total seconds and hit counts per hierarchical span path."""
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for record in records:
        if record.get("ty") != "E":
            continue
        path = record.get("path", "?")
        totals[path] = totals.get(path, 0.0) + record.get("dur", 0.0)
        counts[path] = counts.get(path, 0) + 1
    return totals, counts


def _self_times(totals: Dict[str, float]) -> Dict[str, float]:
    """Self time per path: its total minus its direct children's."""
    self_times = dict(totals)
    for path, seconds in totals.items():
        head, _, _ = path.rpartition("/")
        if head in self_times:
            self_times[head] -= seconds
    return self_times


def _counter_totals(records: List[Dict[str, Any]]) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for record in records:
        if record.get("ty") == "C":
            name = record.get("name", "?")
            totals[name] = totals.get(name, 0) + record.get("delta", 0)
    return totals


def _cmd_summary(args: argparse.Namespace) -> int:
    paths = _trace.discover_trace_files(args.trace)
    if not paths:
        print(f"no trace files at {args.trace}")
        return 2
    records = _trace.stitch_files(paths)
    by_type: Dict[str, int] = {}
    pids = set()
    for record in records:
        by_type[record.get("ty", "?")] = \
            by_type.get(record.get("ty", "?"), 0) + 1
        pids.add(record.get("pid"))
    stamped = [r["t"] for r in records if "t" in r]
    wall = (max(stamped) - min(stamped)) if stamped else 0.0
    print(f"{len(paths)} file(s), {len(records)} records, "
          f"{len(pids)} process(es), {wall:.3f} s wall")
    print("  " + "  ".join(f"{ty}:{n}"
                           for ty, n in sorted(by_type.items())))
    totals, counts = _span_totals(records)
    self_times = _self_times(totals)
    if totals:
        print(f"\ntop spans by self time (of {len(totals)} paths):")
        ranked = sorted(self_times.items(), key=lambda kv: -kv[1])
        for path, self_s in ranked[:args.top]:
            print(f"  {self_s:9.3f} s self  {totals[path]:9.3f} s "
                  f"total  x{counts[path]:<7} {path}")
    counters = _counter_totals(records)
    if counters:
        print(f"\ntop counters (of {len(counters)}):")
        ranked_counts = sorted(counters.items(), key=lambda kv: -kv[1])
        for name, value in ranked_counts[:args.top]:
            print(f"  {value:>12}  {name}")
    progress = [r for r in records if r.get("ty") == "P"]
    if progress:
        sources: Dict[str, int] = {}
        for record in progress:
            source = record.get("source", "?")
            sources[source] = sources.get(source, 0) + 1
        print("\nprogress heartbeats: "
              + "  ".join(f"{src}:{n}"
                          for src, n in sorted(sources.items())))
    return 0


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def _cmd_export(args: argparse.Namespace) -> int:
    paths = _trace.discover_trace_files(args.trace)
    if not paths:
        print(f"no trace files at {args.trace}")
        return 2
    records = _trace.stitch_files(paths)
    if args.format == "chrome":
        document = _trace.to_chrome(records)
    else:  # "jsonl": the stitched record stream itself
        document = records
    out = args.out or (args.trace + ".chrome.json"
                       if args.format == "chrome"
                       else args.trace + ".stitched.jsonl")
    with open(out, "w") as handle:
        if args.format == "chrome":
            json.dump(document, handle)
            handle.write("\n")
        else:
            for record in records:
                handle.write(json.dumps(record) + "\n")
    print(f"wrote {out} ({len(records)} records from "
          f"{len(paths)} file(s))")
    return 0


# ----------------------------------------------------------------------
# flame
# ----------------------------------------------------------------------
def collapsed_stacks(records: List[Dict[str, Any]]) -> List[str]:
    """Collapsed-stack lines (``a;b;c <self_us>``) from span records.

    Self time per hierarchical path (total minus direct children,
    clamped at zero — cross-process aggregation can push a parent's
    residual slightly negative), in integer microseconds as the
    "sample count" every flamegraph renderer expects.  Lines are
    sorted by path so the output is deterministic.
    """
    totals, _ = _span_totals(records)
    self_times = _self_times(totals)
    lines = []
    for path in sorted(self_times):
        us = int(max(0.0, self_times[path]) * 1e6)
        if us:
            lines.append(f"{path.replace('/', ';')} {us}")
    return lines


def _cmd_flame(args: argparse.Namespace) -> int:
    paths = _trace.discover_trace_files(args.trace)
    if not paths:
        print(f"no trace files at {args.trace}")
        return 2
    records = _trace.stitch_files(paths)
    lines = collapsed_stacks(records)
    if not lines:
        print("no span records in trace")
        return 2
    if args.out:
        with open(args.out, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"wrote {args.out} ({len(lines)} stacks from "
              f"{len(paths)} file(s))")
    else:
        try:
            print("\n".join(lines))
        except BrokenPipeError:  # `flame ... | head` is normal usage
            return 0
    return 0


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
def _cmd_diff(args: argparse.Namespace) -> int:
    sides = []
    for base in (args.trace_a, args.trace_b):
        paths = _trace.discover_trace_files(base)
        if not paths:
            print(f"no trace files at {base}")
            return 2
        records = _trace.stitch_files(paths)
        totals, counts = _span_totals(records)
        sides.append((_self_times(totals), counts,
                      _counter_totals(records)))
    (self_a, counts_a, counters_a) = sides[0]
    (self_b, counts_b, counters_b) = sides[1]

    span_rows = []
    for path in sorted(set(self_a) | set(self_b)):
        a, b = self_a.get(path, 0.0), self_b.get(path, 0.0)
        if abs(b - a) > 1e-9:
            span_rows.append((abs(b - a), path, a, b))
    span_rows.sort(key=lambda row: (-row[0], row[1]))
    print(f"span self-time deltas ({args.trace_a} -> {args.trace_b}):")
    for _, path, a, b in span_rows[:args.top]:
        sign = "+" if b >= a else "-"
        print(f"  {a:9.3f} s -> {b:9.3f} s  ({sign}{abs(b - a):.3f} s)"
              f"  x{counts_a.get(path, 0)}->x{counts_b.get(path, 0)}"
              f"  {path}")
    if not span_rows:
        print("  (no span differences)")

    counter_rows = []
    for name in sorted(set(counters_a) | set(counters_b)):
        a, b = counters_a.get(name, 0), counters_b.get(name, 0)
        if a != b:
            counter_rows.append((abs(b - a), name, a, b))
    counter_rows.sort(key=lambda row: (-row[0], row[1]))
    print("\ncounter deltas:")
    for _, name, a, b in counter_rows[:args.top]:
        sign = "+" if b >= a else ""
        print(f"  {a:>12} -> {b:>12}  ({sign}{b - a})  {name}")
    if not counter_rows:
        print("  (no counter differences)")
    return 0


# ----------------------------------------------------------------------
# trajectory
# ----------------------------------------------------------------------
def _artifact_order(path: str) -> Tuple[int, int, str]:
    """Sort key: seed first, then prN by number, then the rest."""
    stem = os.path.basename(path)
    rev = stem[len("BENCH_"):-len(".json")]
    if rev == "seed":
        return (0, 0, rev)
    if rev.startswith("pr") and rev[2:].isdigit():
        return (1, int(rev[2:]), rev)
    return (2, 0, rev)


def trajectory_table(paths: List[str]) -> str:
    """The bench trend across ``paths`` as a markdown table."""
    lines = [
        "| rev | encode (s) | solve (s) | bmc | prove | "
        "solve p50 (ms) | p99 (ms) |",
        "|---|---:|---:|---|---|---:|---:|",
    ]
    for path in paths:
        with open(path) as handle:
            artifact = json.load(handle)
        rev = artifact.get("rev", os.path.basename(path))
        split = artifact.get("time_split", {})
        encode = split.get("encode_seconds")
        solve = split.get("solve_seconds")
        sections = artifact.get("sections", {})
        bmc = sections.get("bmc", {})
        bmc_cell = bmc.get("status", "-")
        if "depth_checked" in bmc:
            bmc_cell += f"@{bmc['depth_checked']}"
        prove = sections.get("prove", {})
        prove_cell = prove.get("status", "-")
        if prove.get("method"):
            prove_cell += f" ({prove['method']})"
        quant = artifact.get("metrics", {}).get("solve_latency", {})

        def sec(value: Any) -> str:
            return f"{value:.3f}" if isinstance(value, (int, float)) \
                else "-"

        def ms(value: Any) -> str:
            return f"{value * 1e3:.3f}" \
                if isinstance(value, (int, float)) else "-"

        lines.append(f"| {rev} | {sec(encode)} | {sec(solve)} "
                     f"| {bmc_cell} | {prove_cell} "
                     f"| {ms(quant.get('p50'))} "
                     f"| {ms(quant.get('p99'))} |")
    return "\n".join(lines)


def _cmd_trajectory(args: argparse.Namespace) -> int:
    pattern = os.path.join(args.dir, "BENCH_*.json")
    paths = sorted(_glob.glob(pattern), key=_artifact_order)
    if not paths:
        print(f"no artifacts matching {pattern}")
        return 2
    table = trajectory_table(paths)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(table + "\n")
        print(f"wrote {args.out} ({len(paths)} artifacts)")
    else:
        print(table)
    return 0


# ----------------------------------------------------------------------
# regress
# ----------------------------------------------------------------------
def _seconds_metrics(artifact: Dict[str, Any]) -> Dict[str, float]:
    """The wall-time metrics of a bench artifact, flattened."""
    metrics: Dict[str, float] = {}
    for name, section in artifact.get("sections", {}).items():
        seconds = section.get("seconds")
        if isinstance(seconds, (int, float)):
            metrics[f"sections.{name}.seconds"] = float(seconds)
    split = artifact.get("time_split", {})
    # The solve_* breakdown keys exist only in artifacts produced
    # since the flat-solver work; compare_artifacts skips metrics
    # missing from either side, so older baselines stay comparable.
    for key in ("encode_seconds", "solve_seconds",
                "solve_propagate_seconds", "solve_decide_seconds",
                "solve_analyze_seconds", "solve_other_seconds"):
        value = split.get(key)
        if isinstance(value, (int, float)):
            metrics[f"time_split.{key}"] = float(value)
    # The inprocessing A/B sub-timings (artifacts since the simplify
    # work); the combined section seconds are already covered above.
    simp = artifact.get("sections", {}).get("simplify", {})
    for key in ("off_seconds", "on_seconds"):
        value = simp.get(key)
        if isinstance(value, (int, float)):
            metrics[f"sections.simplify.{key}"] = float(value)
    # Solve-latency quantiles (artifacts since the metrics layer);
    # per-solve latencies sit well under the min_seconds noise floor
    # on the smoke workload, so only real tail blowups can trip them.
    quant = artifact.get("metrics", {}).get("solve_latency", {})
    for key in ("p50", "p90", "p99"):
        value = quant.get(key)
        if isinstance(value, (int, float)):
            metrics[f"metrics.solve_latency.{key}"] = float(value)
    return metrics


def compare_artifacts(baseline: Dict[str, Any],
                      candidate: Dict[str, Any],
                      threshold: float = 1.3,
                      min_seconds: float = 0.05
                      ) -> List[Dict[str, Any]]:
    """Metric-by-metric comparison of two bench artifacts.

    Returns one row per compared metric with ``regressed`` set when
    the candidate is worse than ``threshold`` times the baseline AND
    the absolute change clears the noise floor (``min_seconds`` for
    wall times, :data:`_MIN_COUNT` for solver counters).  The
    ``encode_speedup`` headline is higher-is-better: it regresses when
    the candidate drops below ``baseline / threshold``.
    """
    rows: List[Dict[str, Any]] = []

    def row(metric: str, base: float, cand: float, regressed: bool,
            higher_better: bool = False) -> None:
        ratio = (cand / base) if base else None
        rows.append({"metric": metric, "baseline": base,
                     "candidate": cand, "ratio": ratio,
                     "regressed": regressed,
                     "higher_better": higher_better})

    base_seconds = _seconds_metrics(baseline)
    cand_seconds = _seconds_metrics(candidate)
    for metric in sorted(base_seconds):
        if metric not in cand_seconds:
            continue
        base, cand = base_seconds[metric], cand_seconds[metric]
        regressed = (cand > base * threshold
                     and cand - base > min_seconds)
        row(metric, base, cand, regressed)

    base_solver = baseline.get("solver", {})
    cand_solver = candidate.get("solver", {})
    for key in _SOLVER_KEYS:
        base, cand = base_solver.get(key), cand_solver.get(key)
        if not isinstance(base, (int, float)) or \
                not isinstance(cand, (int, float)):
            continue
        regressed = (base > 0 and cand > base * threshold
                     and cand - base > _MIN_COUNT)
        row(f"solver.{key}", float(base), float(cand), regressed)

    base_speedup = baseline.get("sections", {}) \
        .get("encode", {}).get("encode_speedup")
    cand_speedup = candidate.get("sections", {}) \
        .get("encode", {}).get("encode_speedup")
    if isinstance(base_speedup, (int, float)) and \
            isinstance(cand_speedup, (int, float)):
        regressed = cand_speedup < base_speedup / threshold
        row("encode.encode_speedup", float(base_speedup),
            float(cand_speedup), regressed, higher_better=True)

    base_simp = baseline.get("sections", {}) \
        .get("simplify", {}).get("speedup")
    cand_simp = candidate.get("sections", {}) \
        .get("simplify", {}).get("speedup")
    if isinstance(base_simp, (int, float)) and \
            isinstance(cand_simp, (int, float)):
        regressed = cand_simp < base_simp / threshold
        row("simplify.speedup", float(base_simp),
            float(cand_simp), regressed, higher_better=True)

    base_cube = baseline.get("sections", {}) \
        .get("cube", {}).get("speedup")
    cand_cube = candidate.get("sections", {}) \
        .get("cube", {}).get("speedup")
    if isinstance(base_cube, (int, float)) and \
            isinstance(cand_cube, (int, float)):
        regressed = cand_cube < base_cube / threshold
        row("cube.speedup", float(base_cube),
            float(cand_cube), regressed, higher_better=True)
    return rows


def _cmd_regress(args: argparse.Namespace) -> int:
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.candidate) as handle:
        candidate = json.load(handle)
    rows = compare_artifacts(baseline, candidate,
                             threshold=args.threshold,
                             min_seconds=args.min_seconds)
    base_rev = baseline.get("rev", args.baseline)
    cand_rev = candidate.get("rev", args.candidate)
    print(f"bench regress: {base_rev} -> {cand_rev} "
          f"(threshold {args.threshold:g}x, "
          f"noise floor {args.min_seconds:g} s / {_MIN_COUNT} counts)")
    regressions = [r for r in rows if r["regressed"]]
    for r in rows:
        mark = "REGRESSED" if r["regressed"] else "ok"
        ratio = f"{r['ratio']:.2f}x" if r["ratio"] is not None \
            else "  n/a"
        arrow = "^" if r["higher_better"] else ""
        print(f"  {mark:<9} {ratio:>7}{arrow}  "
              f"{r['baseline']:>12.3f} -> {r['candidate']:>12.3f}  "
              f"{r['metric']}")
    print(f"{len(regressions)} regression(s) over {len(rows)} metrics")
    if regressions and not args.report_only:
        return 1
    return 0


# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="repro.tools.trace",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser(
        "summary", help="top spans/counters of a stitched trace")
    p_summary.add_argument("trace", help="trace file (workers at "
                                         "<trace>.<pid> auto-included)")
    p_summary.add_argument("--top", type=int, default=15)
    p_summary.set_defaults(fn=_cmd_summary)

    p_export = sub.add_parser(
        "export", help="export a stitched trace for visualization")
    p_export.add_argument("trace")
    p_export.add_argument("--format", choices=["chrome", "jsonl"],
                          default="chrome")
    p_export.add_argument("--out", default=None)
    p_export.set_defaults(fn=_cmd_export)

    p_flame = sub.add_parser(
        "flame", help="collapsed-stack flamegraph input from a trace")
    p_flame.add_argument("trace", help="trace file (workers at "
                                       "<trace>.<pid> auto-included)")
    p_flame.add_argument("--out", default=None,
                         help="write stacks here instead of stdout")
    p_flame.set_defaults(fn=_cmd_flame)

    p_diff = sub.add_parser(
        "diff", help="span self-time and counter deltas of two traces")
    p_diff.add_argument("trace_a")
    p_diff.add_argument("trace_b")
    p_diff.add_argument("--top", type=int, default=20)
    p_diff.set_defaults(fn=_cmd_diff)

    p_traj = sub.add_parser(
        "trajectory",
        help="markdown bench trend across committed BENCH_*.json")
    p_traj.add_argument("--dir", default="benchmarks")
    p_traj.add_argument("--out", default=None)
    p_traj.set_defaults(fn=_cmd_trajectory)

    p_regress = sub.add_parser(
        "regress", help="compare two BENCH_*.json artifacts")
    p_regress.add_argument("baseline")
    p_regress.add_argument("candidate")
    p_regress.add_argument("--threshold", type=float, default=1.3,
                           help="worse-than ratio that fails a metric "
                                "(default 1.3)")
    p_regress.add_argument("--min-seconds", type=float, default=0.05,
                           help="absolute wall-time noise floor "
                                "(default 0.05 s)")
    p_regress.add_argument("--report-only", action="store_true",
                           help="always exit 0 (informational runs)")
    p_regress.set_defaults(fn=_cmd_regress)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
