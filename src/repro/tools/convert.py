"""CLI: convert netlists between BENCH and ASCII AIGER.

Usage::

    python -m repro.tools.convert in.bench out.aag [--transform COM]

Optionally applies a transformation strategy before writing (handy for
shipping a COM-reduced netlist to another tool).
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..core import TBVEngine
from .io import load_netlist, save_netlist


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("source", help="input .bench or .aag file")
    parser.add_argument("destination", help="output .bench or .aag file")
    parser.add_argument("--transform", default="",
                        help="optional strategy to apply first")
    args = parser.parse_args(argv)

    net = load_netlist(args.source)
    print(f"loaded {net}")
    if args.transform:
        chain = TBVEngine(args.transform).transform(net)
        net = chain.netlist
        print(f"after {args.transform}: {net}")
    save_netlist(net, args.destination)
    print(f"wrote {args.destination}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
