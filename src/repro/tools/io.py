"""Shared netlist-file loading/saving for the command-line tools.

Formats are selected by extension: ``.bench`` (ISCAS89), ``.aag``
(ASCII AIGER), ``.aig`` (binary AIGER) and ``.blif``.
"""

from __future__ import annotations

import os
from typing import Tuple

from ..netlist import (
    Netlist,
    NetlistError,
    aig_to_netlist,
    netlist_to_aig,
    parse_aiger,
    parse_bench,
    parse_blif,
    write_aiger,
    write_bench,
    write_blif,
)


def load_netlist(path: str) -> Netlist:
    """Load a netlist from a ``.bench``, ``.aag``, ``.aig`` or
    ``.blif`` file."""
    name = os.path.splitext(os.path.basename(path))[0]
    ext = os.path.splitext(path)[1].lower()
    if ext == ".aig":
        # Binary AIGER is not text; hand the raw bytes to the parser.
        with open(path, "rb") as handle:
            net, _ = aig_to_netlist(parse_aiger(handle.read(),
                                                name=name))
            return net
    with open(path) as handle:
        text = handle.read()
    if ext == ".bench":
        return parse_bench(text, name=name)
    if ext == ".aag":
        net, _ = aig_to_netlist(parse_aiger(text, name=name))
        return net
    if ext == ".blif":
        return parse_blif(text, name=name)
    raise NetlistError(f"unsupported netlist format: {path!r} "
                       f"(expected .bench, .blif, .aag or .aig)")


def save_netlist(net: Netlist, path: str) -> None:
    """Save a netlist to a ``.bench`` or ``.aag`` file."""
    ext = os.path.splitext(path)[1].lower()
    if ext == ".bench":
        text = write_bench(net)
    elif ext == ".blif":
        text = write_blif(net)
    elif ext == ".aag":
        aig, _ = netlist_to_aig(net)
        text = write_aiger(aig)
    else:
        raise NetlistError(f"unsupported netlist format: {path!r}")
    with open(path, "w") as handle:
        handle.write(text)
