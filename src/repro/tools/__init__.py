"""Command-line tools and trace utilities.

* ``python -m repro.tools.bound``   — per-target diameter bounds
* ``python -m repro.tools.check``   — complete bounded verification
* ``python -m repro.tools.convert`` — BENCH <-> AIGER conversion
* ``python -m repro.tools.bench``   — fixed perf workload, emits
  ``BENCH_<rev>.json`` (see EXPERIMENTS.md)
* :mod:`repro.tools.vcd`            — VCD waveform dumping
"""

from .io import load_netlist, save_netlist
from .vcd import counterexample_to_vcd, trace_to_vcd

__all__ = [
    "counterexample_to_vcd",
    "load_netlist",
    "save_netlist",
    "trace_to_vcd",
]
