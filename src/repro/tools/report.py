"""CLI: render a bench artifact (+ optional trace) as one HTML file.

Usage::

    python -m repro.tools.report BENCH_pr10.json [--trace run.trace]
        [--baseline BENCH_pr9.json] [--out report.html] [--top 10]

The output is a **single self-contained HTML file** — no external
assets, scripts, stylesheets or network references — so it can be
attached to a PR, archived next to the bench artifact, or opened from
a mail attachment years later and still render.  Sections:

* run header (rev, host, workload) and per-section wall time;
* encode/solve **time-split bars** and the solve-phase breakdown;
* an **inline SVG flamegraph** of where the time went — from the
  stitched trace's span records when ``--trace`` is given (covering
  worker processes too), otherwise from the artifact's own ``timers``
  (the same hierarchy, minus cross-process detail);
* **latency histograms** (the artifact's log-bucket ``metrics``
  section: solve latency plus the per-engine step distributions) with
  p50/p90/p99 markers;
* the **top-N slowest queries** from the per-query ledger;
* a **regress table** against ``--baseline`` (same comparison as
  ``repro-trace regress``).

Everything here is presentation: the numbers come verbatim from the
artifact produced by :mod:`repro.tools.bench` and the trace written
under ``REPRO_TRACE`` (see :mod:`repro.obs.trace`).
"""

from __future__ import annotations

import argparse
import html as _html
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .trace import _self_times, _span_totals, compare_artifacts

#: Flamegraph geometry (SVG user units == px).
_FRAME_H = 18
_MIN_W = 0.5
_WIDTH = 960

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 1000px; color: #1a1a2e;
       background: #fafafa; }
h1 { font-size: 1.5em; border-bottom: 2px solid #16213e; }
h2 { font-size: 1.15em; margin-top: 1.8em; color: #16213e; }
table { border-collapse: collapse; margin: 0.6em 0; font-size: 0.9em; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.6em; }
th { background: #eef; text-align: left; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.ok { color: #1a7f37; }
.bad { color: #b3261e; font-weight: bold; }
.bar { margin: 2px 0; }
svg text { font-family: inherit; }
.muted { color: #666; font-size: 0.85em; }
"""


def _esc(value: Any) -> str:
    return _html.escape(str(value), quote=True)


def _color(name: str) -> str:
    """A deterministic warm fill per span name (flamegraph style)."""
    h = 0
    for ch in name:
        h = (h * 31 + ord(ch)) & 0xFFFFFF
    r = 205 + (h % 50)
    g = 90 + ((h >> 8) % 110)
    b = 40 + ((h >> 16) % 40)
    return f"rgb({r},{g},{b})"


# ----------------------------------------------------------------------
# Flamegraph
# ----------------------------------------------------------------------
def _flame_tree(totals: Dict[str, float]
                ) -> Tuple[Dict[str, list], List[str], float]:
    """(children-by-path, root paths, total root seconds)."""
    children: Dict[str, list] = {path: [] for path in totals}
    roots: List[str] = []
    for path in sorted(totals):
        head, _, _ = path.rpartition("/")
        if head and head in children:
            children[head].append(path)
        else:
            roots.append(path)
    total = sum(totals[path] for path in roots)
    return children, roots, total


def flame_svg(totals: Dict[str, float], title: str = "") -> str:
    """An inline SVG flamegraph of hierarchical span totals.

    Width is proportional to total seconds; each nesting level is one
    row; every frame carries a ``<title>`` tooltip with the exact
    path, seconds and share.  Pure SVG — no scripts, no links.
    """
    children, roots, total = _flame_tree(totals)
    if total <= 0.0:
        return "<p class='muted'>(no span data)</p>"

    depth_of: Dict[str, int] = {}

    def depth(path: str) -> int:
        if path not in depth_of:
            head, _, _ = path.rpartition("/")
            depth_of[path] = depth(head) + 1 \
                if head and head in children else 0
        return depth_of[path]

    max_depth = max(depth(path) for path in totals)
    height = (max_depth + 1) * _FRAME_H + 4
    scale = _WIDTH / total
    rects: List[str] = []

    def emit(path: str, x: float) -> None:
        seconds = totals[path]
        w = seconds * scale
        if w < _MIN_W:
            return
        y = depth(path) * _FRAME_H + 2
        name = path.rpartition("/")[2]
        share = 100.0 * seconds / total
        label = (f"<text x='{x + 3:.1f}' y='{y + 13}' "
                 f"font-size='11'>{_esc(name)}</text>"
                 if w > 8 * len(name) * 0.8 else "")
        rects.append(
            f"<g><rect x='{x:.2f}' y='{y}' width='{w:.2f}' "
            f"height='{_FRAME_H - 1}' fill='{_color(name)}' "
            f"rx='2'><title>{_esc(path)}: {seconds:.4f} s "
            f"({share:.1f}%)</title></rect>{label}</g>")
        cx = x
        for child in children[path]:
            emit(child, cx)
            cx += totals[child] * scale

    x = 0.0
    for root in roots:
        emit(root, x)
        x += totals[root] * scale
    caption = f"<p class='muted'>{_esc(title)}</p>" if title else ""
    return (f"{caption}<svg width='{_WIDTH}' height='{height}' "
            f"viewBox='0 0 {_WIDTH} {height}' role='img'>"
            + "".join(rects) + "</svg>")


# ----------------------------------------------------------------------
# Bars and histograms
# ----------------------------------------------------------------------
def _split_bar(parts: List[Tuple[str, float]], width: int = _WIDTH
               ) -> str:
    """One horizontal stacked bar with a legend."""
    total = sum(seconds for _, seconds in parts)
    if total <= 0:
        return "<p class='muted'>(no time-split data)</p>"
    x = 0.0
    rects = []
    legend = []
    for name, seconds in parts:
        w = width * seconds / total
        rects.append(
            f"<rect x='{x:.2f}' y='0' width='{w:.2f}' height='22' "
            f"fill='{_color(name)}'><title>{_esc(name)}: "
            f"{seconds:.3f} s ({100 * seconds / total:.1f}%)</title>"
            f"</rect>")
        legend.append(
            f"<span style='color:{_color(name)}'>&#9632;</span> "
            f"{_esc(name)} {seconds:.3f}&nbsp;s")
        x += w
    return (f"<div class='bar'><svg width='{width}' height='22'>"
            + "".join(rects) + "</svg><br/>"
            + " &nbsp; ".join(legend) + "</div>")


def _histogram_svg(name: str, snap: Dict[str, Any]) -> str:
    """Log-bucket bars for one histogram snapshot, with quantiles."""
    hist = _metrics.Histogram.from_snapshot(snap)
    if not hist.count:
        return ""
    buckets = sorted(hist.buckets)
    if not buckets:
        return ""
    lo, hi = buckets[0], buckets[-1]
    span = hi - lo + 1
    bar_w = max(3.0, min(28.0, (_WIDTH - 120) / span))
    peak = max(hist.buckets.values())
    height = 70
    bars = []
    for i, idx in enumerate(range(lo, hi + 1)):
        n = hist.buckets.get(idx, 0)
        if not n:
            continue
        h = max(2.0, (height - 16) * n / peak)
        x = i * bar_w
        blo, bhi = _metrics.bucket_bounds(idx)
        bars.append(
            f"<rect x='{x:.1f}' y='{height - h:.1f}' "
            f"width='{bar_w - 1:.1f}' height='{h:.1f}' "
            f"fill='{_color(name)}'><title>[{blo:.2e}, {bhi:.2e}) s: "
            f"{n}</title></rect>")
    qs = hist.quantiles()
    stats = (f"n={hist.count} &nbsp; p50={qs['p50'] * 1e3:.3f} ms "
             f"&nbsp; p90={qs['p90'] * 1e3:.3f} ms "
             f"&nbsp; p99={qs['p99'] * 1e3:.3f} ms "
             f"&nbsp; max={(hist.max or 0) * 1e3:.3f} ms")
    return (f"<h3>{_esc(name)}</h3><p class='muted'>{stats}</p>"
            f"<svg width='{max(60, span * bar_w):.0f}' "
            f"height='{height}'>" + "".join(bars) + "</svg>")


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def _sections_table(artifact: Dict[str, Any]) -> str:
    rows = []
    for name, section in artifact.get("sections", {}).items():
        seconds = section.get("seconds")
        if isinstance(seconds, (int, float)):
            rows.append(f"<tr><td>{_esc(name)}</td>"
                        f"<td class='num'>{seconds:.3f}</td></tr>")
    if not rows:
        return ""
    return ("<table><tr><th>section</th><th>seconds</th></tr>"
            + "".join(rows) + "</table>")


def _ledger_table(artifact: Dict[str, Any], top: int) -> str:
    records = artifact.get("metrics", {}).get("ledger_top", [])[:top]
    if not records:
        return "<p class='muted'>(no ledger records)</p>"
    keys = ["engine", "frame", "k", "verdict", "conflicts", "seconds",
            "source"]
    used = [key for key in keys
            if any(rec.get(key) is not None for rec in records)]
    head = "".join(f"<th>{_esc(key)}</th>" for key in used)
    body = []
    for rec in records:
        cells = []
        for key in used:
            value = rec.get(key)
            if key == "seconds" and isinstance(value, (int, float)):
                cells.append(f"<td class='num'>{value * 1e3:.3f} ms"
                             f"</td>")
            elif isinstance(value, (int, float)):
                cells.append(f"<td class='num'>{_esc(value)}</td>")
            else:
                cells.append(f"<td>{_esc(value) if value is not None else ''}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    dropped = artifact.get("metrics", {}).get("ledger_dropped", 0)
    note = (f"<p class='muted'>(+{dropped} older records evicted from "
            f"the ring)</p>" if dropped else "")
    return (f"<table><tr>{head}</tr>" + "".join(body) + "</table>"
            + note)


def _regress_table(baseline: Dict[str, Any],
                   artifact: Dict[str, Any]) -> str:
    rows = compare_artifacts(baseline, artifact)
    if not rows:
        return "<p class='muted'>(no comparable metrics)</p>"
    body = []
    for r in rows:
        mark = ("<span class='bad'>REGRESSED</span>" if r["regressed"]
                else "<span class='ok'>ok</span>")
        ratio = f"{r['ratio']:.2f}x" if r["ratio"] is not None else "-"
        arrow = " &uarr;" if r["higher_better"] else ""
        body.append(
            f"<tr><td>{_esc(r['metric'])}{arrow}</td>"
            f"<td class='num'>{r['baseline']:.4g}</td>"
            f"<td class='num'>{r['candidate']:.4g}</td>"
            f"<td class='num'>{ratio}</td><td>{mark}</td></tr>")
    regressions = sum(1 for r in rows if r["regressed"])
    verdict = (f"<p class='bad'>{regressions} regression(s)</p>"
               if regressions
               else "<p class='ok'>0 regressions</p>")
    return ("<table><tr><th>metric</th><th>baseline</th>"
            "<th>candidate</th><th>ratio</th><th></th></tr>"
            + "".join(body) + "</table>" + verdict)


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------
def build_report(artifact: Dict[str, Any],
                 trace_base: Optional[str] = None,
                 baseline: Optional[Dict[str, Any]] = None,
                 top: int = 10) -> str:
    """The full self-contained HTML document as a string."""
    rev = artifact.get("rev", "?")
    host = artifact.get("host", {})
    workload = artifact.get("workload", {})
    parts: List[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'/>",
        f"<title>bench report — {_esc(rev)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Bench report — <code>{_esc(rev)}</code></h1>",
        f"<p class='muted'>{_esc(host.get('implementation', '?'))} "
        f"{_esc(host.get('python', '?'))} on "
        f"{_esc(host.get('system', '?'))}/"
        f"{_esc(host.get('machine', '?'))} &nbsp;&middot;&nbsp; "
        f"profile {_esc(workload.get('profile', '?'))}, designs "
        f"{_esc(', '.join(workload.get('designs', [])))}</p>",
        "<h2>Section wall time</h2>",
        _sections_table(artifact),
    ]

    split = artifact.get("time_split", {})
    encode = split.get("encode_seconds")
    solve = split.get("solve_seconds")
    if isinstance(encode, (int, float)) and \
            isinstance(solve, (int, float)):
        parts += ["<h2>Time split</h2>",
                  _split_bar([("encode", encode), ("solve", solve)])]
        phases = [(key[len("solve_"):-len("_seconds")],
                   split.get(key))
                  for key in ("solve_propagate_seconds",
                              "solve_decide_seconds",
                              "solve_analyze_seconds",
                              "solve_other_seconds")]
        phases = [(name, value) for name, value in phases
                  if isinstance(value, (int, float))]
        if phases:
            parts.append(_split_bar(phases))

    # Flame: stitched trace when given (covers workers), else the
    # artifact's own timer hierarchy.
    parts.append("<h2>Flamegraph</h2>")
    totals: Dict[str, float] = {}
    source = ""
    if trace_base:
        paths = _trace.discover_trace_files(trace_base)
        if paths:
            records = _trace.stitch_files(paths)
            totals, _ = _span_totals(records)
            source = (f"from trace {trace_base} "
                      f"({len(paths)} file(s))")
    if not totals:
        totals = {path: stat.get("total_s", 0.0)
                  for path, stat in artifact.get("timers", {}).items()}
        source = "from artifact timers"
    parts.append(flame_svg(totals, title=source))

    histograms = artifact.get("metrics", {}).get("histograms", {})
    if histograms:
        parts.append("<h2>Latency distributions</h2>")
        for name in sorted(histograms):
            parts.append(_histogram_svg(name, histograms[name]))

    parts.append(f"<h2>Top {top} slowest queries (ledger)</h2>")
    parts.append(_ledger_table(artifact, top))

    if baseline is not None:
        parts.append(
            f"<h2>Regressions vs {_esc(baseline.get('rev', '?'))}"
            f"</h2>")
        parts.append(_regress_table(baseline, artifact))

    parts.append("</body></html>")
    return "\n".join(parts)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="repro.tools.report",
                                     description=__doc__)
    parser.add_argument("artifact",
                        help="bench artifact (BENCH_<rev>.json)")
    parser.add_argument("--trace", default=None,
                        help="trace base path (workers at "
                             "<trace>.<pid> auto-included)")
    parser.add_argument("--baseline", default=None,
                        help="baseline artifact for the regress table")
    parser.add_argument("--out", default=None,
                        help="output path (default: "
                             "report_<rev>.html)")
    parser.add_argument("--top", type=int, default=10,
                        help="ledger rows to show (default 10)")
    args = parser.parse_args(argv)
    with open(args.artifact) as handle:
        artifact = json.load(handle)
    baseline = None
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    document = build_report(artifact, trace_base=args.trace,
                            baseline=baseline, top=args.top)
    out = args.out or f"report_{artifact.get('rev', 'run')}.html"
    with open(out, "w") as handle:
        handle.write(document)
    print(f"wrote {out} ({len(document)} bytes, self-contained)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
