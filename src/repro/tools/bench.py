"""CLI: a small fixed benchmark workload seeding the perf trajectory.

Usage::

    python -m repro.tools.bench [--rev <label>] [--out <path>]
                                [--profile full|smoke]

Runs a deterministic micro-workload through every engine layer under
an isolated :mod:`repro.obs` registry and writes ``BENCH_<rev>.json``:
per-engine wall-time, SAT-solver effort (conflicts / decisions /
propagations / restarts), the per-design, per-pipeline experiment
timings of the Table 1 harness, and (schema v2) an ``encode`` section
timing frame *encoding* on the largest profile three ways — direct
``encode_frame``, template cold (includes the one-off compile), and
template warm — whose ``encode_speedup`` figure is the headline number
of the compiled-frame-template work, plus a ``time_split`` giving the
total encode-vs-solve seconds across the whole run and — since the
flat-solver work — the solve side broken down into propagation,
decision and conflict-analysis seconds (the run enables the solver's
search-phase profiling).  The ``cube`` section measures the
cube-and-conquer race (:mod:`repro.sat.cube`) on a fixed pigeonhole
pair across a ``jobs`` grid — its ``speedup`` and ``cancel_latency``
are the headline numbers of the work-stealing/first-win work.
``<rev>`` defaults to the current git short hash (``dev`` outside a
checkout).

Every optimisation PR reruns this and commits the new artifact next to
``benchmarks/BENCH_seed.json``; comparing the ``timers`` sections of
two revisions is how a perf claim is proven.  The default ``full``
profile runs in well under a minute; the ``smoke`` profile shrinks
every section to seconds and is exercised by the tier-1 suite to keep
the artifact schema honest.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import subprocess
from typing import Any, Dict, List, Optional, Sequence

from .. import obs
from ..core.prove import prove
from ..diameter.qbf import qbf_initial_diameter
from ..diameter.recurrence import recurrence_diameter
from ..diameter.structural import StructuralAnalysis
from ..experiments.runner import PIPELINES, evaluate_design
from ..gen import iscas89
from ..netlist import s27
from ..resilience import Budget, FaultPlan, inject
from ..obs import metrics as _metrics
from ..sat.solver import PROFILE_PHASES, use_sat_profile, use_simplify
from ..sat.template import clear_template_cache, use_templates
from ..unroll import Unrolling, bmc, k_induction

#: The fixed experiment slice: small-to-medium profiles at full scale
#: so the SAT sweep and the LP actually work, while the whole run
#: stays far below the 60 s budget.
BENCH_DESIGNS = ("S27", "S298", "S386", "S641", "S820", "S1488",
                 "S3330", "S5378")
BENCH_SCALE = 1.0

#: Workload profiles.  ``full`` is the committed-artifact
#: configuration; ``smoke`` shrinks every knob so a complete run
#: (including the ``encode`` section) finishes in a few seconds — it
#: exists purely so the tier-1 suite can validate the artifact schema
#: end-to-end on every test run.
BENCH_PROFILES: Dict[str, Dict[str, Any]] = {
    "full": {
        "designs": BENCH_DESIGNS,
        "scale": BENCH_SCALE,
        "recurrence_design": "S298", "recurrence_max_k": 12,
        "bmc_design": "S641", "bmc_depth": 24,
        "qbf_max_k": 8,
        "kind_bits": 8,
        "encode_design": "S5378", "encode_frames": 16,
        "cube_holes": 7, "cube_jobs": (1, 2, 4, 8),
    },
    "smoke": {
        "designs": ("S27", "S298"),
        "scale": 0.5,
        "recurrence_design": "S27", "recurrence_max_k": 4,
        "bmc_design": "S298", "bmc_depth": 6,
        "qbf_max_k": 3,
        "kind_bits": 3,
        "encode_design": "S298", "encode_frames": 4,
        "cube_holes": 5, "cube_jobs": (1, 2),
    },
}


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False)
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "dev"
    except OSError:
        return "dev"


def _encode_section(reg: obs.Registry, design: str, frames: int,
                    scale: float) -> Dict[str, Any]:
    """Time frame encoding three ways on one design.

    Each measurement builds a fresh :class:`Unrolling` and forces
    ``frames`` frames — pure encoding, no solving.  ``direct`` walks
    the netlist through ``encode_frame`` per frame; ``template_cold``
    starts from an empty template cache (so it pays the one-off
    compile); ``template_warm`` reuses the cached compilation — the
    steady state every engine actually runs in.  ``direct`` and
    ``warm`` are best-of-5 (scheduler/allocator noise otherwise
    dominates sub-10ms samples; ``cold`` is necessarily a single pass
    because only the first pass pays the compile).  ``encode_speedup``
    is ``direct / warm``.
    """
    net = iscas89.generate(design, scale=scale)

    def encode_all(label: str) -> float:
        # The Unrolling constructor (solver setup + initial-state
        # load) is identical untemplated work in both paths, so it
        # stays outside the measured window: the figure is *frame*
        # encoding, which is what the template layer accelerates.
        unroll = Unrolling(net)
        with reg.span(f"bench/encode/{label}") as sp:
            unroll.frame(frames - 1)
        return sp.seconds

    def best_of(label: str, reps: int = 5) -> float:
        return min(encode_all(label) for _ in range(reps))

    hits_before = reg.counter_value("template.hits")
    compiles_before = reg.counter_value("template.compiles")
    # Pause the cyclic GC while sampling (applied identically to all
    # three measurements): a collection landing inside one sub-10ms
    # window otherwise skews the ratio by tens of percent.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        with use_templates(False):
            direct = best_of("direct")
        clear_template_cache()
        with use_templates(True):
            cold = encode_all("template_cold")
            warm = best_of("template_warm")
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "design": design,
        "frames": frames,
        "direct_seconds": direct,
        "template_cold_seconds": cold,
        "template_warm_seconds": warm,
        "encode_speedup": direct / warm if warm else None,
        "template_compiles": reg.counter_value("template.compiles")
        - compiles_before,
        "template_hits": reg.counter_value("template.hits")
        - hits_before,
    }


def _php_clauses(holes: int) -> List[List[int]]:
    """Pigeonhole clauses PHP(holes+1, holes) — the classic UNSAT
    family: variable ``i*holes + j`` means pigeon ``i`` sits in hole
    ``j``.  Resolution-hard, so it stays a genuinely hard query for a
    CDCL solver at small sizes — the stable workload the cube section
    needs (netlist queries of comparable difficulty would dominate the
    whole bench run)."""
    from ..sat import neg, pos

    pigeons = holes + 1
    clauses: List[List[int]] = [
        [pos(i * holes + j) for j in range(holes)]
        for i in range(pigeons)
    ]
    for j in range(holes):
        for a in range(pigeons):
            for b in range(a + 1, pigeons):
                clauses.append([neg(a * holes + j),
                                neg(b * holes + j)])
    return clauses


def _cube_section(reg: obs.Registry, holes: int,
                  jobs_grid: Sequence[int]) -> Dict[str, Any]:
    """Cube-and-conquer scaling on a pigeonhole pair.

    Two fixed instances: pure ``PHP(holes+1, holes)`` (UNSAT — every
    cube must finish, so the curve shows the join cost) and a
    *backdoored* SAT variant (every clause weakened with a backdoor
    literal ``B``, plus one ``¬B`` clause so the simplifier cannot
    eliminate ``B`` as pure).  Both are split on ``B`` and the first
    two pigeon variables — 8 cubes in the negative-first order, so
    cube 0 fixes ``¬B`` and grinds a pigeonhole subspace while every
    odd cube (``B`` true) is satisfiable within milliseconds.

    That makes the SAT race the honest first-win demonstration this
    host (single core) allows: at ``jobs=1`` the cubes drain in order
    and the grinder runs to completion before a SAT cube is reached;
    at ``jobs>1`` a SAT cube wins almost immediately and the pool-wide
    cancel event stops the grinder mid-search — the wall-clock gap is
    cancellation, not core count.  ``speedup`` is jobs=1 over the
    largest jobs value (the artifact's scaling headline);
    ``cancel_latency`` the win-to-drained gap of that run.
    """
    from ..sat import SAT, UNSAT, Solver, neg, pos
    from ..sat import cube as cube_mod

    unsat_clauses = _php_clauses(holes)
    backdoor = (holes + 1) * holes
    sat_clauses = [clause + [pos(backdoor)]
                   for clause in unsat_clauses]
    sat_clauses.append([neg(backdoor), pos(backdoor + 1)])
    def enumerate_cubes(split_vars: List[int]):
        return [tuple((v << 1) | (0 if (mask >> i) & 1 else 1)
                      for i, v in enumerate(split_vars))
                for mask in range(1 << len(split_vars))]

    cubes = enumerate_cubes([backdoor, 0, 1])
    unsat_cubes = enumerate_cubes([0, 1])  # no backdoor variable

    def plain(clauses: List[List[int]], label: str) -> Dict[str, Any]:
        solver = Solver()
        for clause in clauses:
            solver.add_clause(list(clause))
        with reg.span(f"bench/cube/plain-{label}") as sp:
            result = solver.solve()
        return {"seconds": sp.seconds, "result": result}

    def race(clauses: List[List[int]], cube_set, jobs: int,
             label: str) -> Dict[str, Any]:
        payload = {"mode": "cnf", "clauses": clauses}
        with reg.span(f"bench/cube/{label}-jobs{jobs}") as sp:
            join = cube_mod.solve_cubes(payload, cube_set, jobs=jobs,
                                        name="bench.cube")
        return {
            "seconds": sp.seconds,
            "result": join.result,
            "winner": join.winner,
            "cancel_latency": join.cancel_latency,
        }

    # The race's solver effort is nondeterministic by design (losers
    # burn a cancellation-timing-dependent amount of work), so the
    # whole section runs under a scratch registry: its conflicts and
    # search-phase nanoseconds must not contaminate the artifact's
    # global solver counters / time_split, which regress compares
    # run-to-run.  The section's own spans target the outer ``reg``
    # explicitly and are unaffected.
    with obs.scoped(obs.Registry("bench.cube")):
        sat_plain = plain(sat_clauses, "sat")
        unsat_plain = plain(unsat_clauses, "unsat")
        sat_runs = {str(j): race(sat_clauses, cubes, j, "sat")
                    for j in jobs_grid}
        unsat_jobs = (jobs_grid[0], jobs_grid[-1])
        unsat_runs = {str(j): race(unsat_clauses, unsat_cubes, j,
                                   "unsat")
                      for j in unsat_jobs}
    lo, hi = str(jobs_grid[0]), str(jobs_grid[-1])
    verdicts_match = (
        sat_plain["result"] == SAT
        and all(run["result"] == SAT for run in sat_runs.values())
        and unsat_plain["result"] == UNSAT
        and all(run["result"] == UNSAT for run in unsat_runs.values())
    )
    hi_seconds = sat_runs[hi]["seconds"]
    return {
        "holes": holes,
        "cubes": len(cubes),
        "sat_plain_seconds": sat_plain["seconds"],
        "unsat_plain_seconds": unsat_plain["seconds"],
        "sat_jobs": sat_runs,
        "unsat_jobs": unsat_runs,
        "verdicts_match": verdicts_match,
        "speedup": sat_runs[lo]["seconds"] / hi_seconds
        if hi_seconds else None,
        "cancel_latency": sat_runs[hi]["cancel_latency"],
    }


def _time_split(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Aggregate encode-vs-solve seconds from a registry snapshot.

    Encoding is everything recorded under a leaf ``encode`` span plus
    the one-off ``encode.compile`` spans (template compilation —
    emitted outside ``encode`` spans by construction, so nothing is
    double-counted); solving is the ``sat.solve`` leaves.  The solve
    side is further broken down from the solver's own search-phase
    profiling (the ``sat.propagate_ns``/``sat.decide_ns``/
    ``sat.analyze_ns`` counters, published because the bench run
    enables :func:`repro.sat.use_sat_profile`): seconds spent in
    unit propagation, decision picking and conflict analysis, with
    the remainder (restart bookkeeping, learnt recording, DB
    reduction, the control loop itself) as ``solve_other_seconds``.
    """
    encode = solve = 0.0
    for path, stat in snapshot["timers"].items():
        leaf = path.rsplit("/", 1)[-1]
        if leaf in ("encode", "encode.compile"):
            encode += stat["total_s"]
        elif leaf == "sat.solve":
            solve += stat["total_s"]
    total = encode + solve
    counters = snapshot["counters"]
    split: Dict[str, Any] = {
        "encode_seconds": encode,
        "solve_seconds": solve,
        "encode_fraction": encode / total if total else None,
    }
    phases = 0.0
    for phase in PROFILE_PHASES:
        seconds = counters.get(f"sat.{phase}_ns", 0) / 1e9
        split[f"solve_{phase}_seconds"] = seconds
        phases += seconds
    split["solve_other_seconds"] = max(0.0, solve - phases)
    return split


def run_workload(reg: obs.Registry,
                 budget: Optional[Budget] = None,
                 jobs: int = 1,
                 profile: str = "full") -> Dict[str, Any]:
    """Execute the fixed workload; returns the per-section summary.

    ``budget`` (from ``--timeout``) bounds the experiment-harness
    section only — the fixed engine sections stay unbudgeted so their
    timings remain comparable across revisions.  ``jobs > 1`` adds a
    ``parallel`` section: the experiment slice reruns through the
    process pool and reports per-worker wall time plus the speedup
    over the sequential section just measured.  ``profile`` selects a
    :data:`BENCH_PROFILES` entry sizing every section.
    """
    cfg = BENCH_PROFILES[profile]
    bench_designs: Sequence[str] = cfg["designs"]
    bench_scale: float = cfg["scale"]
    sections: Dict[str, Any] = {}
    net = s27()

    # Diameter engines on the golden s27 netlist.
    with reg.span("bench/structural") as sp:
        analysis = StructuralAnalysis(net)
        bounds = analysis.bounds()
    sections["structural"] = {
        "seconds": sp.seconds,
        "bounds": {str(t): b for t, b in bounds.items()},
    }
    rec_net = iscas89.generate(cfg["recurrence_design"],
                               scale=bench_scale)
    with reg.span("bench/recurrence") as sp:
        rec = recurrence_diameter(rec_net, from_init=True,
                                  max_k=cfg["recurrence_max_k"],
                                  conflict_budget=5000)
    sections["recurrence"] = {
        "seconds": sp.seconds, "bound": rec.bound, "exact": rec.exact,
    }
    with reg.span("bench/qbf") as sp:
        qbf = qbf_initial_diameter(net, max_k=cfg["qbf_max_k"])
    sections["qbf"] = {
        "seconds": sp.seconds, "bound": qbf.bound, "exact": qbf.exact,
    }

    # BMC to a fixed window on a generated mid-size design (exercises
    # the unrolling + solver far beyond what s27 can).
    bmc_net = iscas89.generate(cfg["bmc_design"], scale=bench_scale)
    with reg.span("bench/bmc") as sp:
        check = bmc(bmc_net, max_depth=cfg["bmc_depth"])
    sections["bmc"] = {
        "seconds": sp.seconds,
        "status": check.status,
        "depth_checked": check.depth_checked,
    }

    # The full decision procedure on the golden netlist.
    with reg.span("bench/prove") as sp:
        verdict = prove(net)
    sections["prove"] = {
        "seconds": sp.seconds,
        "status": verdict.status,
        "method": verdict.method,
    }

    # The three-pipeline experiment harness on a small design slice.
    designs: Dict[str, Dict[str, float]] = {}
    with reg.span("bench/experiments") as sp:
        for name in bench_designs:
            design = iscas89.generate(name, scale=bench_scale)
            row = evaluate_design(design, budget=budget)
            designs[name] = {
                pipeline: row.columns[pipeline].seconds
                for pipeline in PIPELINES
            }
    sections["experiments"] = {"seconds": sp.seconds,
                               "per_design": designs}

    # k-induction encoding-size markers: the persistent step unrolling
    # accumulates O(k²) difference clauses over a run (the rebuilt-
    # per-round encoding was O(k³)); ``induction.diff_clauses`` /
    # ``induction.step_vars`` land in the artifact so the reduction is
    # visible revision over revision.  An 8-bit counter targeting its
    # max value keeps every step round inconclusive (the simple path
    # 254 -> 255 always exists), so all ``max_k`` rounds run.
    from ..netlist import NetlistBuilder

    bits = cfg["kind_bits"]
    builder = NetlistBuilder(f"bench-counter{bits}")
    regs = builder.registers(bits, prefix="c")
    builder.connect_word(regs, builder.increment(regs))
    kind_target = builder.buf(
        builder.word_eq(regs, builder.word_const(2 ** bits - 1, bits)),
        name="t")
    builder.net.add_target(kind_target)
    with reg.span("bench/k-induction") as sp:
        kind = k_induction(builder.net, kind_target, max_k=bits,
                           conflict_budget=20000)
    counters = reg.snapshot()["counters"]
    sections["k_induction"] = {
        "seconds": sp.seconds,
        "status": kind.status,
        "depth_checked": kind.depth_checked,
        "diff_clause_pairs": counters.get("induction.diff_clauses", 0),
        "step_vars": counters.get("induction.step_vars", 0),
    }

    # The same experiment slice through the process pool: per-worker
    # wall time plus the speedup over the sequential section above.
    if jobs > 1:
        from ..parallel import ParallelExecutor
        from ..parallel.workers import run_design

        payloads = [{"generate": iscas89.generate, "name": name,
                     "scale": bench_scale, "sweep_config": None}
                    for name in bench_designs]
        with reg.span("bench/parallel") as sp:
            outcomes = ParallelExecutor(jobs=jobs, name="bench").map(
                run_design, payloads, labels=list(bench_designs))
        sequential = sections["experiments"]["seconds"]
        sections["parallel"] = {
            "jobs": jobs,
            "seconds": sp.seconds,
            "sequential_seconds": sequential,
            "speedup": sequential / sp.seconds if sp.seconds else None,
            "per_worker": {outcome.label: outcome.seconds
                           for outcome in outcomes},
        }

    # Cube-and-conquer scaling on a fixed pigeonhole pair: the SAT
    # race (first-win cancellation) and the all-cubes UNSAT join, at
    # every grid point plus the plain cubes-off baselines.
    with reg.span("bench/cube") as sp:
        cube = _cube_section(reg, cfg["cube_holes"],
                             cfg["cube_jobs"])
    cube["seconds"] = sp.seconds
    sections["cube"] = cube

    # Resource-governance micro-workload: a pre-exhausted budget and an
    # injected timeout fault drive the degradation paths every run, so
    # their counters and outcomes are tracked revision over revision.
    with reg.span("bench/resilience") as sp:
        starved = prove(net, budget=Budget(conflicts=0,
                                           name="bench-starved"))
        with inject(FaultPlan(at={0: "timeout"})):
            aborted = bmc(net, max_depth=4)
    sections["resilience"] = {
        "seconds": sp.seconds,
        "prove_status": starved.status,
        "prove_method": starved.method,
        "prove_degraded": starved.degraded,
        "prove_bound": starved.bound,
        "prove_exhaustion": starved.exhaustion_reason,
        "bmc_status": aborted.status,
        "bmc_exhaustion": aborted.exhaustion_reason,
    }

    # Certification A/B: the same BMC window uncertified, then with
    # the cert layer armed (proof logging + DRAT check + witness
    # replay).  The verdict and depth must match exactly —
    # certification observes, never steers — and the overhead ratio
    # tracks the checker's cost revision over revision.
    from ..cert import use_certification

    cert_keys = ("cert.checked", "cert.failed", "cert.lemmas_checked",
                 "cert.lemmas_trimmed")
    cert_before = {key: reg.counter_value(key) for key in cert_keys}
    with reg.span("bench/certification/plain") as plain_sp:
        plain = bmc(bmc_net, max_depth=cfg["bmc_depth"])
    with reg.span("bench/certification/certified") as cert_sp:
        with use_certification(True):
            certified = bmc(bmc_net, max_depth=cfg["bmc_depth"])
    cert_deltas = {key.split(".", 1)[1]:
                   reg.counter_value(key) - cert_before[key]
                   for key in cert_keys}
    sections["certification"] = {
        "seconds": plain_sp.seconds + cert_sp.seconds,
        "design": cfg["bmc_design"],
        "depth": cfg["bmc_depth"],
        "uncertified_seconds": plain_sp.seconds,
        "certified_seconds": cert_sp.seconds,
        "overhead_ratio": cert_sp.seconds / plain_sp.seconds
        if plain_sp.seconds else None,
        "status": certified.status,
        "verdict_match": plain.status == certified.status
        and plain.depth_checked == certified.depth_checked,
        **cert_deltas,
    }

    # Inprocessing A/B: the same (unbudgeted) BMC window with the
    # simplifier disabled, then enabled — solve-entry rounds eliminate
    # most Tseitin gate variables before search.  Verdict and depth
    # must match exactly; the counter deltas record how much work the
    # simplifier did.
    simp_keys = ("simplify.rounds", "simplify.subsumed",
                 "simplify.strengthened", "simplify.eliminated_vars",
                 "simplify.restored_vars")
    simp_before = {key: reg.counter_value(key) for key in simp_keys}
    with reg.span("bench/simplify/off") as off_sp:
        with use_simplify(False):
            simp_off = bmc(bmc_net, max_depth=cfg["bmc_depth"])
    with reg.span("bench/simplify/on") as on_sp:
        with use_simplify(True):
            simp_on = bmc(bmc_net, max_depth=cfg["bmc_depth"])
    simp_deltas = {key.split(".", 1)[1]:
                   reg.counter_value(key) - simp_before[key]
                   for key in simp_keys}
    sections["simplify"] = {
        "seconds": off_sp.seconds + on_sp.seconds,
        "design": cfg["bmc_design"],
        "depth": cfg["bmc_depth"],
        "off_seconds": off_sp.seconds,
        "on_seconds": on_sp.seconds,
        "speedup": off_sp.seconds / on_sp.seconds
        if on_sp.seconds else None,
        "status": simp_on.status,
        "verdict_match": simp_off.status == simp_on.status
        and simp_off.depth_checked == simp_on.depth_checked,
        **simp_deltas,
    }

    # Frame-encoding A/B on the profile's largest design: the direct
    # netlist walk vs cold/warm compiled-template stamping.
    with reg.span("bench/encode") as sp:
        encode = _encode_section(reg, cfg["encode_design"],
                                 cfg["encode_frames"], bench_scale)
    encode["seconds"] = sp.seconds
    sections["encode"] = encode
    return sections


def _metrics_section(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The artifact's ``metrics`` section from a registry snapshot.

    Solve-latency quantiles (p50/p90/p99 over every ``Solver.solve``
    in the workload, workers merged in bucket-wise), the top-5
    slowest ledger queries, and the raw histograms so ``repro-report``
    can draw the distributions without re-running anything.
    """
    data = snapshot.get("metrics", {})
    histograms = data.get("histograms", {})
    section: Dict[str, Any] = {"histograms": histograms}
    solve = histograms.get("sat.solve_seconds")
    if solve:
        hist = _metrics.Histogram.from_snapshot(solve)
        section["solve_latency"] = dict(
            count=hist.count, mean=hist.mean, **hist.quantiles())
    ledger = data.get("ledger", {})
    led = _metrics.Ledger.from_snapshot(ledger) if ledger \
        else _metrics.Ledger()
    section["ledger_top"] = [
        {key: rec.get(key) for key in
         ("engine", "frame", "k", "verdict", "conflicts", "seconds",
          "source")
         if rec.get(key) is not None}
        for rec in led.top(5)]
    section["ledger_dropped"] = led.dropped
    return section


def run_bench(rev: str, timeout: float = 0,
              jobs: int = 1, profile: str = "full") -> Dict[str, Any]:
    """Run the workload in a scoped registry; returns the artifact."""
    budget = Budget(wall_seconds=timeout, name="bench") \
        if timeout else None
    with obs.scoped(obs.Registry(f"bench-{rev}")) as reg:
        # Search-phase profiling feeds the time_split breakdown; the
        # toggle applies to every solver the workload constructs.
        # Distribution metrics feed the artifact's latency quantiles
        # and ledger top-5 (workers inherit both via the environment).
        with use_sat_profile(True), _metrics.use_metrics(True):
            sections = run_workload(reg, budget=budget, jobs=jobs,
                                    profile=profile)
            snapshot = reg.snapshot()
    solver_keys = ("sat.conflicts", "sat.decisions", "sat.propagations",
                   "sat.restarts", "sat.solve_calls")
    resilience_prefixes = ("resilience.", "faults.", "bmc.budget",
                           "com.budget", "portfolio.budget",
                           "portfolio.failures", "runner.",
                           "structural.refinement_skips")
    cfg = BENCH_PROFILES[profile]
    return {
        "schema": "repro-bench-v2",
        "rev": rev,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "system": platform.system(),
            "machine": platform.machine(),
        },
        "workload": {"designs": list(cfg["designs"]),
                     "scale": cfg["scale"],
                     "profile": profile},
        "sections": sections,
        "metrics": _metrics_section(snapshot),
        "time_split": _time_split(snapshot),
        "solver": {key: snapshot["counters"].get(key, 0)
                   for key in solver_keys},
        "resilience": {key: value for key, value
                       in sorted(snapshot["counters"].items())
                       if key.startswith(resilience_prefixes)},
        "timers": snapshot["timers"],
        "counters": snapshot["counters"],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rev", default=None,
                        help="revision label (default: git short hash)")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_<rev>.json)")
    parser.add_argument("--timeout", type=float, default=0,
                        help="wall-clock budget in seconds for the "
                             "experiment-harness section (0 = "
                             "unlimited); exhausted pipelines show up "
                             "in the resilience stats")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the parallel "
                             "section (default 1 = skip it)")
    parser.add_argument("--profile", default="full",
                        choices=sorted(BENCH_PROFILES),
                        help="workload size (default: full; smoke is "
                             "the tier-1 schema check)")
    parser.add_argument("--cubes", action="store_true",
                        help="arm the cube-and-conquer path for the "
                             "engine sections too (the dedicated cube "
                             "section always runs)")
    parser.add_argument("--progress", action="store_true",
                        help="report live engine progress on stderr")
    args = parser.parse_args(argv)
    obs.trace.setup_cli(progress_flag=args.progress)
    if args.cubes:
        from ..sat import cube as _cube

        _cube.set_cubes_enabled(True)
        _cube.set_cube_config(jobs=max(1, args.jobs))
    rev = args.rev or _git_rev()
    artifact = run_bench(rev, timeout=args.timeout, jobs=args.jobs,
                         profile=args.profile)
    path = args.out or f"BENCH_{rev}.json"
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=False)
        handle.write("\n")
    lines: List[str] = [f"wrote {path}"]
    for name, section in artifact["sections"].items():
        lines.append(f"  {name:<12} {section['seconds']:8.3f} s")
    solver = artifact["solver"]
    lines.append(f"  solver: {solver['sat.solve_calls']} calls, "
                 f"{solver['sat.conflicts']} conflicts, "
                 f"{solver['sat.decisions']} decisions")
    encode = artifact["sections"]["encode"]
    if encode.get("encode_speedup"):
        lines.append(f"  encode speedup ({encode['design']}): "
                     f"{encode['encode_speedup']:.1f}x "
                     f"(direct {encode['direct_seconds']:.3f} s -> "
                     f"warm {encode['template_warm_seconds']:.3f} s)")
    cert = artifact["sections"].get("certification", {})
    if cert.get("overhead_ratio") is not None:
        lines.append(f"  certification ({cert['design']}): "
                     f"verdict_match={cert['verdict_match']}, "
                     f"overhead {cert['overhead_ratio']:.2f}x, "
                     f"{cert['checked']} check(s), "
                     f"{cert['lemmas_checked']} lemma(s) verified")
    simp = artifact["sections"].get("simplify", {})
    if simp.get("speedup") is not None:
        lines.append(f"  simplify ({simp['design']}): "
                     f"verdict_match={simp['verdict_match']}, "
                     f"{simp['speedup']:.2f}x (off "
                     f"{simp['off_seconds']:.3f} s -> on "
                     f"{simp['on_seconds']:.3f} s), "
                     f"{simp['rounds']} round(s), "
                     f"{simp['eliminated_vars']} var(s) eliminated")
    cube = artifact["sections"].get("cube", {})
    if cube.get("speedup") is not None:
        jobs_curve = ", ".join(
            f"jobs={j} {run['seconds']:.3f} s"
            for j, run in cube["sat_jobs"].items())
        latency = cube.get("cancel_latency")
        lines.append(f"  cube race (PHP backdoor, "
                     f"{cube['holes']} holes): "
                     f"verdicts_match={cube['verdicts_match']}, "
                     f"{cube['speedup']:.2f}x ({jobs_curve})"
                     + (f", cancel latency {latency * 1000:.0f} ms"
                        if latency is not None else ""))
    latency = artifact.get("metrics", {}).get("solve_latency")
    if latency:
        lines.append(
            f"  solve latency: p50 {latency['p50'] * 1e3:.3f} ms / "
            f"p90 {latency['p90'] * 1e3:.3f} ms / "
            f"p99 {latency['p99'] * 1e3:.3f} ms "
            f"over {latency['count']} solves")
    split = artifact["time_split"]
    lines.append(f"  time split: encode {split['encode_seconds']:.3f} s"
                 f" / solve {split['solve_seconds']:.3f} s")
    lines.append(
        "  solve split: "
        f"propagate {split['solve_propagate_seconds']:.3f} s / "
        f"decide {split['solve_decide_seconds']:.3f} s / "
        f"analyze {split['solve_analyze_seconds']:.3f} s / "
        f"other {split['solve_other_seconds']:.3f} s")
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
