"""CLI: a small fixed benchmark workload seeding the perf trajectory.

Usage::

    python -m repro.tools.bench [--rev <label>] [--out <path>]

Runs a deterministic micro-workload through every engine layer under
an isolated :mod:`repro.obs` registry and writes ``BENCH_<rev>.json``:
per-engine wall-time, SAT-solver effort (conflicts / decisions /
propagations / restarts), and the per-design, per-pipeline experiment
timings of the Table 1 harness.  ``<rev>`` defaults to the current git
short hash (``dev`` outside a checkout).

Every optimisation PR reruns this and commits the new artifact next to
``benchmarks/BENCH_seed.json``; comparing the ``timers`` sections of
two revisions is how a perf claim is proven.  Runs in well under a
minute — the workload is intentionally small and fixed, chosen to
touch every hot path rather than to stress any one of them.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
from typing import Any, Dict, List, Optional, Sequence

from .. import obs
from ..core.prove import prove
from ..diameter.qbf import qbf_initial_diameter
from ..diameter.recurrence import recurrence_diameter
from ..diameter.structural import StructuralAnalysis
from ..experiments.runner import PIPELINES, evaluate_design
from ..gen import iscas89
from ..netlist import s27
from ..resilience import Budget, FaultPlan, inject
from ..unroll import bmc, k_induction

#: The fixed experiment slice: small-to-medium profiles at full scale
#: so the SAT sweep and the LP actually work, while the whole run
#: stays far below the 60 s budget.
BENCH_DESIGNS = ("S27", "S298", "S386", "S641", "S820", "S1488",
                 "S3330", "S5378")
BENCH_SCALE = 1.0


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False)
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "dev"
    except OSError:
        return "dev"


def run_workload(reg: obs.Registry,
                 budget: Optional[Budget] = None,
                 jobs: int = 1) -> Dict[str, Any]:
    """Execute the fixed workload; returns the per-section summary.

    ``budget`` (from ``--timeout``) bounds the experiment-harness
    section only — the fixed engine sections stay unbudgeted so their
    timings remain comparable across revisions.  ``jobs > 1`` adds a
    ``parallel`` section: the experiment slice reruns through the
    process pool and reports per-worker wall time plus the speedup
    over the sequential section just measured.
    """
    sections: Dict[str, Any] = {}
    net = s27()

    # Diameter engines on the golden s27 netlist.
    with reg.span("bench/structural") as sp:
        analysis = StructuralAnalysis(net)
        bounds = analysis.bounds()
    sections["structural"] = {
        "seconds": sp.seconds,
        "bounds": {str(t): b for t, b in bounds.items()},
    }
    rec_net = iscas89.generate("S298", scale=1.0)
    with reg.span("bench/recurrence") as sp:
        rec = recurrence_diameter(rec_net, from_init=True, max_k=12,
                                  conflict_budget=5000)
    sections["recurrence"] = {
        "seconds": sp.seconds, "bound": rec.bound, "exact": rec.exact,
    }
    with reg.span("bench/qbf") as sp:
        qbf = qbf_initial_diameter(net, max_k=8)
    sections["qbf"] = {
        "seconds": sp.seconds, "bound": qbf.bound, "exact": qbf.exact,
    }

    # BMC to a fixed window on a generated mid-size design (exercises
    # the unrolling + solver far beyond what s27 can).
    bmc_net = iscas89.generate("S641", scale=1.0)
    with reg.span("bench/bmc") as sp:
        check = bmc(bmc_net, max_depth=24)
    sections["bmc"] = {
        "seconds": sp.seconds,
        "status": check.status,
        "depth_checked": check.depth_checked,
    }

    # The full decision procedure on the golden netlist.
    with reg.span("bench/prove") as sp:
        verdict = prove(net)
    sections["prove"] = {
        "seconds": sp.seconds,
        "status": verdict.status,
        "method": verdict.method,
    }

    # The three-pipeline experiment harness on a small design slice.
    designs: Dict[str, Dict[str, float]] = {}
    with reg.span("bench/experiments") as sp:
        for name in BENCH_DESIGNS:
            profile = iscas89.profile(name).scaled(BENCH_SCALE)
            design = iscas89.generate(profile.name, scale=BENCH_SCALE)
            row = evaluate_design(design, budget=budget)
            designs[name] = {
                pipeline: row.columns[pipeline].seconds
                for pipeline in PIPELINES
            }
    sections["experiments"] = {"seconds": sp.seconds,
                               "per_design": designs}

    # k-induction encoding-size markers: the persistent step unrolling
    # accumulates O(k²) difference clauses over a run (the rebuilt-
    # per-round encoding was O(k³)); ``induction.diff_clauses`` /
    # ``induction.step_vars`` land in the artifact so the reduction is
    # visible revision over revision.  An 8-bit counter targeting its
    # max value keeps every step round inconclusive (the simple path
    # 254 -> 255 always exists), so all ``max_k`` rounds run.
    from ..netlist import NetlistBuilder

    builder = NetlistBuilder("bench-counter8")
    regs = builder.registers(8, prefix="c")
    builder.connect_word(regs, builder.increment(regs))
    kind_target = builder.buf(
        builder.word_eq(regs, builder.word_const(255, 8)), name="t")
    builder.net.add_target(kind_target)
    with reg.span("bench/k-induction") as sp:
        kind = k_induction(builder.net, kind_target, max_k=8,
                           conflict_budget=20000)
    counters = reg.snapshot()["counters"]
    sections["k_induction"] = {
        "seconds": sp.seconds,
        "status": kind.status,
        "depth_checked": kind.depth_checked,
        "diff_clause_pairs": counters.get("induction.diff_clauses", 0),
        "step_vars": counters.get("induction.step_vars", 0),
    }

    # The same experiment slice through the process pool: per-worker
    # wall time plus the speedup over the sequential section above.
    if jobs > 1:
        from ..parallel import ParallelExecutor
        from ..parallel.workers import run_design

        payloads = [{"generate": iscas89.generate, "name": name,
                     "scale": BENCH_SCALE, "sweep_config": None}
                    for name in BENCH_DESIGNS]
        with reg.span("bench/parallel") as sp:
            outcomes = ParallelExecutor(jobs=jobs, name="bench").map(
                run_design, payloads, labels=list(BENCH_DESIGNS))
        sequential = sections["experiments"]["seconds"]
        sections["parallel"] = {
            "jobs": jobs,
            "seconds": sp.seconds,
            "sequential_seconds": sequential,
            "speedup": sequential / sp.seconds if sp.seconds else None,
            "per_worker": {outcome.label: outcome.seconds
                           for outcome in outcomes},
        }

    # Resource-governance micro-workload: a pre-exhausted budget and an
    # injected timeout fault drive the degradation paths every run, so
    # their counters and outcomes are tracked revision over revision.
    with reg.span("bench/resilience") as sp:
        starved = prove(net, budget=Budget(conflicts=0,
                                           name="bench-starved"))
        with inject(FaultPlan(at={0: "timeout"})):
            aborted = bmc(net, max_depth=4)
    sections["resilience"] = {
        "seconds": sp.seconds,
        "prove_status": starved.status,
        "prove_method": starved.method,
        "prove_degraded": starved.degraded,
        "prove_bound": starved.bound,
        "prove_exhaustion": starved.exhaustion_reason,
        "bmc_status": aborted.status,
        "bmc_exhaustion": aborted.exhaustion_reason,
    }
    return sections


def run_bench(rev: str, timeout: float = 0,
              jobs: int = 1) -> Dict[str, Any]:
    """Run the workload in a scoped registry; returns the artifact."""
    budget = Budget(wall_seconds=timeout, name="bench") \
        if timeout else None
    with obs.scoped(obs.Registry(f"bench-{rev}")) as reg:
        sections = run_workload(reg, budget=budget, jobs=jobs)
        snapshot = reg.snapshot()
    solver_keys = ("sat.conflicts", "sat.decisions", "sat.propagations",
                   "sat.restarts", "sat.solve_calls")
    resilience_prefixes = ("resilience.", "faults.", "bmc.budget",
                           "com.budget", "portfolio.budget",
                           "portfolio.failures", "runner.",
                           "structural.refinement_skips")
    return {
        "schema": "repro-bench-v1",
        "rev": rev,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "system": platform.system(),
            "machine": platform.machine(),
        },
        "workload": {"designs": list(BENCH_DESIGNS),
                     "scale": BENCH_SCALE},
        "sections": sections,
        "solver": {key: snapshot["counters"].get(key, 0)
                   for key in solver_keys},
        "resilience": {key: value for key, value
                       in sorted(snapshot["counters"].items())
                       if key.startswith(resilience_prefixes)},
        "timers": snapshot["timers"],
        "counters": snapshot["counters"],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rev", default=None,
                        help="revision label (default: git short hash)")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_<rev>.json)")
    parser.add_argument("--timeout", type=float, default=0,
                        help="wall-clock budget in seconds for the "
                             "experiment-harness section (0 = "
                             "unlimited); exhausted pipelines show up "
                             "in the resilience stats")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the parallel "
                             "section (default 1 = skip it)")
    args = parser.parse_args(argv)
    rev = args.rev or _git_rev()
    artifact = run_bench(rev, timeout=args.timeout, jobs=args.jobs)
    path = args.out or f"BENCH_{rev}.json"
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=False)
        handle.write("\n")
    lines: List[str] = [f"wrote {path}"]
    for name, section in artifact["sections"].items():
        lines.append(f"  {name:<12} {section['seconds']:8.3f} s")
    solver = artifact["solver"]
    lines.append(f"  solver: {solver['sat.solve_calls']} calls, "
                 f"{solver['sat.conflicts']} conflicts, "
                 f"{solver['sat.decisions']} decisions")
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
