"""The flat-array CDCL core.

:class:`FlatSolver` is the default :class:`~repro.sat.solver.Solver`
core.  It executes the exact same search as the legacy object core
(the control loop is shared — see ``Solver._search``) but lays the hot
state out as contiguous flat arrays instead of per-clause Python
objects:

* **Clause arena** — one flat integer list.  A clause is a *reference*
  (``cref``), the index of its inline header: ``arena[cref]`` is the
  literal count, ``arena[cref + 1]`` the clause's index into the
  learnt-activity table (``-1`` for problem clauses), and the literals
  follow at ``arena[cref + 2:]``.  The arena starts with a two-word
  pad so that ``0`` is never a valid reference.
* **Watcher lists** — per literal, a flat interleaved integer list
  ``[cref0, blocker0, cref1, blocker1, ...]``; the blocker is a
  literal of the clause whose truth lets propagation skip the clause
  without touching the arena at all.
* **Assignment / reason / level** — plain integer tables:
  ``_assign[v]`` is ``-1`` (unassigned), ``0`` (false) or ``1``
  (true); ``_reason[v]`` is a cref or ``-1``; a literal ``p`` is true
  iff ``_assign[p >> 1] == (p & 1) ^ 1``.

Removing a learnt clause only unlinks it from the watcher lists; the
arena words become garbage and are reclaimed by :meth:`_compact` once
they outnumber the live words.  Compaction rewrites crefs in place
(watchers, reasons, clause indices) and is invisible to the search.

The layout removes object allocation and attribute dispatch from the
propagation/analysis inner loops, which profile as the solver's hot
path (see ``time_split`` in the bench artifacts).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from .solver import Solver, debug_checks_enabled

#: Words of header before a clause's literals in the arena.
_HDR = 2


class FlatSolver(Solver):
    """The arena-backed CDCL core (see the module docstring)."""

    def __init__(self) -> None:
        super().__init__()
        #: Clause arena; pad so cref 0 is never valid (reason table
        #: uses -1 as "no reason", watcher code may treat 0 as falsy).
        self._arena: List[int] = [0, 0]
        #: Activities of learnt clauses, indexed by the header's
        #: activity slot (problem clauses carry -1 there).
        self._cla_act: List[float] = []
        #: Problem / learnt clause references, insertion-ordered.
        self._clauses: List[int] = []
        self._learnts: List[int] = []
        #: Per-literal interleaved [cref, blocker, ...] watcher lists.
        self._watches: List[List[int]] = []
        self._assign: List[int] = []
        self._level: List[int] = []
        self._reason: List[int] = []
        self._polarity: List[int] = []
        #: Dead arena words left behind by removed learnt clauses.
        self._garbage = 0

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        var = self.num_vars
        self.num_vars += 1
        self._watches.append([])
        self._watches.append([])
        self._assign.append(-1)
        self._level.append(0)
        self._reason.append(-1)
        self._polarity.append(0)
        self._activity.append(0.0)
        heapq.heappush(self._heap, (0.0, var))
        return var

    def new_vars(self, n: int) -> int:
        """Allocate ``n`` fresh variables at once; returns the first.

        State-identical to ``n`` :meth:`new_var` calls — the template
        stamping fast path uses it to skip per-variable call overhead.
        """
        base = self.num_vars
        if n <= 0:
            return base
        self.num_vars = base + n
        self._watches.extend([] for _ in range(2 * n))
        self._assign.extend([-1] * n)
        self._level.extend([0] * n)
        self._reason.extend([-1] * n)
        self._polarity.extend([0] * n)
        self._activity.extend([0.0] * n)
        heap = self._heap
        for var in range(base, base + n):
            heapq.heappush(heap, (0.0, var))
        return base

    def _alloc_clause(self, lits: List[int], learnt: bool) -> int:
        arena = self._arena
        cref = len(arena)
        if learnt:
            act_idx = len(self._cla_act)
            self._cla_act.append(0.0)
        else:
            act_idx = -1
        arena.append(len(lits))
        arena.append(act_idx)
        arena.extend(lits)
        return cref

    def _store_problem_clause(self, clause: List[int]) -> None:
        cref = self._alloc_clause(clause, learnt=False)
        self._clauses.append(cref)
        self._attach(cref)

    def add_clauses_bulk(self, clauses: Iterable[List[int]]) -> bool:
        """Bulk-load pre-validated clauses, skipping normalisation.

        Same caller contract and semantics as
        :meth:`LegacySolver.add_clauses_bulk` — at least two literals
        per clause, pairwise-distinct variables, ownership transfer —
        producing an element-wise identical clause database.
        """
        if not self._ok:
            return False
        if self._elim_count:
            clauses = self._restore_for_bulk(clauses)
            if not self._ok:
                return False
        self._cancel_until(0)
        assign = self._assign
        arena = self._arena
        watches = self._watches
        out = self._clauses
        append = out.append
        slow = self._add_clause_raw
        proof = self._proof
        for lits in clauses:
            if proof is not None:
                # Original literals, before any normalisation or
                # watched-literal reordering mutates the list.
                proof.input(lits)
            for lit in lits:
                if assign[lit >> 1] >= 0:
                    break
            else:
                cref = len(arena)
                arena.append(len(lits))
                arena.append(-1)
                arena.extend(lits)
                append(cref)
                ws = watches[lits[0] ^ 1]
                ws.append(cref)
                ws.append(lits[1])
                ws = watches[lits[1] ^ 1]
                ws.append(cref)
                ws.append(lits[0])
                continue
            # Level-0 normalisation, inline (mirrors the legacy core).
            keep = []
            kappend = keep.append
            sat = False
            for lit in lits:
                v = assign[lit >> 1]
                if v < 0:
                    kappend(lit)
                elif v != (lit & 1):
                    sat = True
                    break
            if sat:
                continue
            if len(keep) >= 2:
                if proof is not None and len(keep) < len(lits):
                    # Stored residue differs from the logged input
                    # (level-0-false literals stripped): log it as a
                    # RUP lemma so a later deletion of the stored
                    # form matches a live instance in the checker.
                    proof.learnt(keep)
                cref = len(arena)
                arena.append(len(keep))
                arena.append(-1)
                arena.extend(keep)
                append(cref)
                ws = watches[keep[0] ^ 1]
                ws.append(cref)
                ws.append(keep[1])
                ws = watches[keep[1] ^ 1]
                ws.append(cref)
                ws.append(keep[0])
            elif not slow(keep):  # empty or unit: rare, delegate
                return False
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> Optional[bool]:
        v = self._assign[lit >> 1]
        if v < 0:
            return None
        return v == (lit & 1) ^ 1

    def _attach(self, cref: int) -> None:
        arena = self._arena
        l0 = arena[cref + 2]
        l1 = arena[cref + 3]
        ws = self._watches[l0 ^ 1]
        ws.append(cref)
        ws.append(l1)
        ws = self._watches[l1 ^ 1]
        ws.append(cref)
        ws.append(l0)

    def _enqueue(self, lit: int, reason: int = -1) -> bool:
        var = lit >> 1
        v = self._assign[var]
        sign_flip = (lit & 1) ^ 1
        if v >= 0:
            return v == sign_flip
        self._assign[var] = sign_flip
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._polarity[var] = sign_flip
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[int]:
        trail = self._trail
        arena = self._arena
        assign = self._assign
        level = self._level
        reason = self._reason
        polarity = self._polarity
        trail_append = trail.append
        watches = self._watches
        qhead = self._qhead
        propagations = 0
        conflict = -1
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            propagations += 1
            ws = watches[lit]
            false_lit = lit ^ 1
            cur_level = len(self._trail_lim)
            i = 0
            j = 0
            n = len(ws)
            while i < n:
                cref = ws[i]
                blocker = ws[i + 1]
                i += 2
                # Blocker fast path: clause already satisfied.
                if assign[blocker >> 1] == (blocker & 1) ^ 1:
                    ws[j] = cref
                    ws[j + 1] = blocker
                    j += 2
                    continue
                base = cref + 2
                # Ensure the falsified literal is in slot 1.
                l0 = arena[base]
                if l0 == false_lit:
                    l0 = arena[base + 1]
                    arena[base] = l0
                    arena[base + 1] = false_lit
                v0 = assign[l0 >> 1]
                if v0 == (l0 & 1) ^ 1:
                    ws[j] = cref
                    ws[j + 1] = l0
                    j += 2
                    continue
                # Search for a new watch.
                end = base + arena[cref]
                found = False
                for k in range(base + 2, end):
                    lk = arena[k]
                    if assign[lk >> 1] != lk & 1:  # not false
                        arena[base + 1] = lk
                        arena[k] = false_lit
                        nws = watches[lk ^ 1]
                        nws.append(cref)
                        nws.append(l0)
                        found = True
                        break
                if found:
                    continue
                # Unit or conflicting.
                ws[j] = cref
                ws[j + 1] = l0
                j += 2
                if v0 >= 0:  # l0 false (not-true and assigned): conflict
                    while i < n:
                        ws[j] = ws[i]
                        ws[j + 1] = ws[i + 1]
                        i += 2
                        j += 2
                    del ws[j:]
                    qhead = len(trail)
                    conflict = cref
                    break
                var = l0 >> 1
                assign[var] = (l0 & 1) ^ 1
                level[var] = cur_level
                reason[var] = cref
                polarity[var] = assign[var]
                trail_append(l0)
            else:
                del ws[j:]
                continue
            break
        self._qhead = qhead
        self.propagations += propagations
        return conflict if conflict >= 0 else None

    def _analyze(self, conflict: int) -> tuple:
        arena = self._arena
        trail = self._trail
        level = self._level
        reasons = self._reason
        learnt: List[int] = [0]  # slot 0 for the asserting literal
        seen = [False] * self.num_vars
        counter = 0
        lit = None
        reason = conflict
        idx = len(trail) - 1
        cur_level = len(self._trail_lim)
        cla_act = self._cla_act
        cla_inc = self._cla_inc
        while True:
            act_idx = arena[reason + 1]
            if act_idx >= 0:
                cla_act[act_idx] += cla_inc
            size = arena[reason]
            lits = arena[reason + 2: reason + 2 + size]
            start = 0 if lit is None else 1
            if lit is not None and lits[0] != lit:
                # Reason clause stores the implied literal first; if
                # not, locate it and skip it.
                lits = [lit] + [x for x in lits if x != lit]
            for q in lits[start:]:
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if level[var] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[trail[idx] >> 1]:
                idx -= 1
            lit = trail[idx]
            idx -= 1
            var = lit >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            reason = reasons[var]
        learnt[0] = lit ^ 1
        learnt = self._minimize(learnt, seen)
        if len(learnt) == 1:
            back_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if level[learnt[i] >> 1] > level[learnt[max_i] >> 1]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = level[learnt[1] >> 1]
        return learnt, back_level

    def _minimize(self, learnt: List[int], seen: List[bool]) -> List[int]:
        arena = self._arena
        level = self._level
        reasons = self._reason
        for lit in learnt[1:]:
            seen[lit >> 1] = True
        out = [learnt[0]]
        for lit in learnt[1:]:
            reason = reasons[lit >> 1]
            if reason < 0:
                out.append(lit)
                continue
            var = lit >> 1
            redundant = True
            for k in range(reason + 2, reason + 2 + arena[reason]):
                q = arena[k]
                if (q >> 1) != var and not seen[q >> 1] \
                        and level[q >> 1] != 0:
                    redundant = False
                    break
            if not redundant:
                out.append(lit)
        for lit in learnt[1:]:
            seen[lit >> 1] = False
        return out

    def _record_learnt(self, learnt: List[int]) -> None:
        if self._proof is not None:
            # Post-minimization literals (minimization preserves RUP);
            # unit learnts are logged too — they never enter _learnts,
            # only the level-0 trail.
            self._proof.learnt(learnt)
        if len(learnt) == 1:
            self._enqueue(learnt[0])
            return
        cref = self._alloc_clause(learnt, learnt=True)
        self._cla_act[self._arena[cref + 1]] = self._cla_inc
        self._learnts.append(cref)
        self._attach(cref)
        self._enqueue(learnt[0], cref)

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        bound = self._trail_lim[level]
        trail = self._trail
        assign = self._assign
        reason = self._reason
        act = self._activity
        heap = self._heap
        push = heapq.heappush
        for i in range(len(trail) - 1, bound - 1, -1):
            var = trail[i] >> 1
            assign[var] = -1
            reason[var] = -1
            push(heap, (-act[var], var))
        del trail[bound:]
        del self._trail_lim[level:]
        self._qhead = bound

    def _pick_branch(self) -> Optional[int]:
        heap = self._heap
        assign = self._assign
        polarity = self._polarity
        while heap:
            _, var = heapq.heappop(heap)
            if assign[var] < 0:
                return (var << 1) | (polarity[var] ^ 1)
        for var in range(self.num_vars):
            if assign[var] < 0:
                return (var << 1) | (polarity[var] ^ 1)
        return None

    def _reduce_db(self) -> None:
        # Lock detection matches the legacy core: a learnt clause must
        # be kept while it is the reason of its slot-0 literal's
        # variable — one table probe, no variable scan.
        arena = self._arena
        cla_act = self._cla_act
        reason = self._reason
        learnts = self._learnts
        learnts.sort(key=lambda c: cla_act[arena[c + 1]])
        keep_from = len(learnts) // 2
        kept = []
        garbage = self._garbage
        proof = self._proof
        for i, cref in enumerate(learnts):
            size = arena[cref]
            if i < keep_from and size > 2 \
                    and reason[arena[cref + 2] >> 1] != cref:
                if proof is not None:
                    # Snapshot the (watch-permuted) literals before
                    # the arena words become garbage.
                    proof.delete(arena[cref + 2: cref + 2 + size])
                self._detach(cref)
                garbage += size + _HDR
            else:
                kept.append(cref)
        self._learnts = kept
        self._garbage = garbage
        if garbage * 2 > len(arena):
            self._compact()
        if debug_checks_enabled():
            self._debug_check_watches()

    def _detach(self, cref: int) -> None:
        arena = self._arena
        for lit in (arena[cref + 2], arena[cref + 3]):
            ws = self._watches[lit ^ 1]
            for i in range(0, len(ws), 2):
                if ws[i] == cref:
                    del ws[i:i + 2]
                    break
            else:
                # Unlike the legacy core's historical silent pass,
                # the flat core always treats a detach miss as the
                # watcher corruption it is.
                raise RuntimeError(
                    f"watcher corruption: clause ref {cref} missing "
                    f"from the watch list of literal {lit ^ 1}")

    def _compact(self) -> None:
        """Reclaim garbage arena words left by removed learnt clauses.

        Copies live clauses (problem first, then learnts, preserving
        order) into a fresh arena, rewrites every stored cref
        (clause indices, watcher lists, reason table) and rebuilds the
        learnt-activity table densely.  Watcher order is preserved, so
        the search is completely unaffected.
        """
        old = self._arena
        old_act = self._cla_act
        new: List[int] = [0, 0]
        new_act: List[float] = []
        remap: Dict[int, int] = {}
        for group in (self._clauses, self._learnts):
            for idx, cref in enumerate(group):
                size = old[cref]
                act_idx = old[cref + 1]
                ncref = len(new)
                remap[cref] = ncref
                new.append(size)
                if act_idx >= 0:
                    new.append(len(new_act))
                    new_act.append(old_act[act_idx])
                else:
                    new.append(-1)
                new.extend(old[cref + 2: cref + 2 + size])
                group[idx] = ncref
        for ws in self._watches:
            for i in range(0, len(ws), 2):
                ws[i] = remap[ws[i]]
        reason = self._reason
        for var in range(self.num_vars):
            r = reason[var]
            if r >= 0:
                # Reasons are always live: problem clauses are never
                # removed and locked learnts are kept by _reduce_db.
                reason[var] = remap[r]
        self._arena = new
        self._cla_act = new_act
        self._garbage = 0

    # ------------------------------------------------------------------
    # Inprocessing primitives (driven by repro.sat.simplify)
    # ------------------------------------------------------------------
    def _simp_lits(self, cref: int) -> List[int]:
        arena = self._arena
        return arena[cref + 2: cref + 2 + arena[cref]]

    def _simp_shrink(self, cref: int, new_lits: List[int]) -> None:
        # Detach on the OLD watched literals before rewriting the
        # arena words, then re-attach on the new first two — a
        # strengthened clause's watchers are rebuilt, never inherited.
        # The tail words between the new and old size become arena
        # garbage (reclaimed by _compact).
        self._detach(cref)
        arena = self._arena
        old_size = arena[cref]
        size = len(new_lits)
        arena[cref] = size
        arena[cref + 2: cref + 2 + size] = new_lits
        self._garbage += old_size - size
        self._attach(cref)

    def _simp_remove(self, cref: int) -> None:
        self._detach(cref)
        self._garbage += self._arena[cref] + _HDR

    def _simp_gc(self) -> None:
        if self._garbage * 2 > len(self._arena):
            self._compact()

    def _simp_clear_reasons(self) -> None:
        reason = self._reason
        for lit in self._trail:
            reason[lit >> 1] = -1

    def _debug_check_watches(self) -> None:
        """Assert every watcher entry is consistent: the watched
        literal sits in its clause's first two arena slots and the
        blocker occurs in the clause.  Debug-only (full sweep)."""
        arena = self._arena
        for idx, ws in enumerate(self._watches):
            lit = idx ^ 1
            for i in range(0, len(ws), 2):
                cref = ws[i]
                lits = arena[cref + 2: cref + 2 + arena[cref]]
                if lit not in lits[:2] or ws[i + 1] not in lits:
                    raise RuntimeError(
                        "watcher corruption: literal "
                        f"{lit} watches clause ref {cref} "
                        f"{tuple(lits)} (blocker {ws[i + 1]})")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _lits_of(self, cref: int) -> Tuple[int, ...]:
        arena = self._arena
        return tuple(arena[cref + 2: cref + 2 + arena[cref]])

    def clause_lits(self) -> List[Tuple[int, ...]]:
        return [self._lits_of(c) for c in self._clauses]

    def learnt_lits(self) -> List[Tuple[int, ...]]:
        return [self._lits_of(c) for c in self._learnts]

    def assignment(self) -> List[Optional[bool]]:
        return [None if v < 0 else bool(v) for v in self._assign]
