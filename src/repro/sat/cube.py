"""Cube-and-conquer: split one hard SAT query into a cube set.

The PR 3 pool parallelizes *across* designs and strategies; a single
hard BMC or k-induction query still serializes everything.  This
module attacks that query directly, in the cube-and-conquer style
(Heule et al.): pick the most influential decision variables by a
lookahead score (VSIDS activity accumulated by the incremental solver
so far, with occurrence counts over the stamped formula as the cold
tie-break), and split the search space into the ``2^k`` sign
combinations of the top ``k`` variables.  Each *cube* is an assumption
list; the union of the cubes is a tautology over the split variables,
so

* the original query is SAT  iff  **some** cube is SAT, and
* the original query is UNSAT iff  **every** cube is UNSAT,

which is exactly the join rule :func:`join_cubes` implements.  Cubes
are fanned across :class:`~repro.parallel.ParallelExecutor` workers in
work-stealing mode with first-win cancellation: a SAT cube sets the
pool-wide cancel event (threaded through the worker budgets, so losers
abort at their next per-conflict budget check), while UNSAT requires
every cube to complete.

Determinism contract: cubes are generated, labelled and *joined* in a
fixed order (negative phase first — the subspace the sequential solver
would explore first under the default decision phase), and the winner
of a SAT race is reported by cube index, so verdicts and bounds are
identical at any ``jobs`` value.  Which satisfying assignment backs a
FALSIFIED verdict may differ between runs (any cube's model is a valid
witness; each is certified by replay).

Error precedence at the join (the rule the first satellite pins): a
*verdict* always beats a loser's bookkeeping — a cube cancelled by the
first-win event or resourced-out after another cube went SAT never
masks the SAT verdict, and a :class:`CertificationFailure` always
surfaces (it must reach ``prove()``'s cross-core arbitration).

Everything is opt-in behind ``REPRO_CUBE`` / :func:`use_cubes` and
engages only when a query proves *hard*: the caller first runs the
plain incremental solve under a conflict threshold
(``REPRO_CUBE_CONFLICTS``), and only a query that exhausts the
threshold is split — easy queries never pay the fan-out tax.
"""

from __future__ import annotations

import multiprocessing
import os
from contextlib import contextmanager
from contextlib import nullcontext as _nullcontext
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .. import obs
from ..obs import metrics as _metrics
from ..resilience import Budget, Cancelled, CertificationFailure, \
    EngineFailure, ResourceExhausted
from ..resilience.errors import EXHAUSTED_CONFLICTS
from .solver import SAT, UNKNOWN, UNSAT, Solver, use_proofs

__all__ = [
    "CubeAttempt",
    "CubeConfig",
    "CubeJoin",
    "cube_config",
    "cube_solve",
    "cubes_enabled",
    "generate_cubes",
    "join_cubes",
    "run_cube_task",
    "score_variables",
    "set_cube_config",
    "set_cubes_enabled",
    "solve_cubes",
    "use_cube_config",
    "use_cubes",
]

# ----------------------------------------------------------------------
# Toggles (same idiom as use_flat / use_proofs / use_simplify).
# ----------------------------------------------------------------------
_CUBE_ENV = "REPRO_CUBE"
_cubes_enabled = os.environ.get(_CUBE_ENV, "").strip().lower() \
    in ("1", "true", "yes", "on")


def cubes_enabled() -> bool:
    """True when hard queries are split into cube sets by default."""
    return _cubes_enabled


def set_cubes_enabled(enabled: bool) -> bool:
    """Set the global cube toggle; returns the previous value."""
    global _cubes_enabled
    previous = _cubes_enabled
    _cubes_enabled = bool(enabled)
    return previous


@contextmanager
def use_cubes(enabled: bool = True) -> Iterator[None]:
    """Scoped override of the cube toggle."""
    previous = set_cubes_enabled(enabled)
    try:
        yield
    finally:
        set_cubes_enabled(previous)


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


@dataclass(frozen=True)
class CubeConfig:
    """Tuning knobs of the cube path (all env-overridable).

    ``cube_vars`` — split on the top ``k`` variables (``2^k`` cubes);
    ``conflict_threshold`` — a query is *hard* (and split) only after
    the plain solve burns this many conflicts inconclusively;
    ``jobs`` — worker processes for the cube race (1 = in-process,
    still deterministic; nested pools are always clamped to 1);
    ``share_learned`` — feed short learnt clauses from an all-UNSAT
    cube join back into the parent solver (sound: assumption-based
    CDCL only learns consequences of the clause database; disabled
    automatically while certifying, because injected lemmas are not
    axioms of the DRAT log);
    ``share_max_len`` / ``share_max_clauses`` — what "short" means.
    """

    cube_vars: int = _env_int("REPRO_CUBE_VARS", 3)
    conflict_threshold: int = _env_int("REPRO_CUBE_CONFLICTS", 1500)
    jobs: int = _env_int("REPRO_CUBE_JOBS", 1)
    share_learned: bool = os.environ.get(
        "REPRO_CUBE_SHARE", "").strip().lower() in ("1", "true", "yes",
                                                    "on")
    share_max_len: int = 4
    share_max_clauses: int = 64


_config = CubeConfig()


def cube_config() -> CubeConfig:
    """The active cube configuration."""
    return _config


def set_cube_config(**overrides: Any) -> CubeConfig:
    """Replace fields of the active config; returns the previous one."""
    global _config
    previous = _config
    _config = replace(_config, **overrides)
    return previous


@contextmanager
def use_cube_config(**overrides: Any) -> Iterator[None]:
    """Scoped override of cube configuration fields."""
    global _config
    previous = set_cube_config(**overrides)
    try:
        yield
    finally:
        _config = previous


# ----------------------------------------------------------------------
# Lookahead: variable scoring and cube generation
# ----------------------------------------------------------------------
def score_variables(solver: Solver,
                    exclude: Sequence[int] = ()) -> List[int]:
    """Variables of ``solver``'s formula, best split candidate first.

    Primary key is the solver's VSIDS activity — on an incremental
    solver (a BMC unrolling whose earlier frames already ran) this is
    a genuine lookahead signal pointing at the variables driving
    recent conflicts.  Occurrence count over the problem clauses
    breaks cold-start ties (a fresh solver has all-zero activity), and
    the variable index breaks exact ties, so the ranking is fully
    deterministic.  ``exclude`` removes variables already fixed by the
    caller's assumptions; variables with no clause occurrence
    (eliminated, pure bookkeeping) never qualify.
    """
    occs = [0] * solver.num_vars
    for clause in solver.clause_lits():
        for lit in clause:
            occs[lit >> 1] += 1
    activity = solver._activity  # core-independent VSIDS table
    banned = set(exclude)
    candidates = [v for v in range(solver.num_vars)
                  if occs[v] > 0 and v not in banned]
    candidates.sort(key=lambda v: (-activity[v], -occs[v], v))
    return candidates


def generate_cubes(solver: Solver,
                   count_vars: Optional[int] = None,
                   exclude: Sequence[int] = ()
                   ) -> List[Tuple[int, ...]]:
    """A balanced cube set over the top split variables.

    Emits all ``2^k`` sign combinations of the ``k`` best-scored
    variables as assumption tuples — a partition of the search space,
    so the union of the cubes is equivalent to the original query.
    Cube 0 takes every variable on its *negative* phase (the default
    decision phase, i.e. the subspace the plain sequential search
    enters first), and enumeration counts up in binary with variable
    rank as bit position — a fixed, jobs-independent order.
    """
    k = cube_config().cube_vars if count_vars is None else count_vars
    top = score_variables(solver, exclude=exclude)[:max(0, k)]
    if not top:
        return []
    cubes = []
    for mask in range(1 << len(top)):
        cube = tuple(
            (v << 1) | (0 if (mask >> i) & 1 else 1)
            for i, v in enumerate(top))
        cubes.append(cube)
    return cubes


# ----------------------------------------------------------------------
# The worker-side task body (shipped by repro.parallel.workers.run_cube)
# ----------------------------------------------------------------------
def _rebuild_and_solve(payload: Dict[str, Any],
                       budget: Optional[Budget]) -> tuple:
    """Reconstruct the query of ``payload`` and solve one cube.

    Returns ``(solver, result, cex, unroll)`` where ``cex`` is a
    decoded :class:`~repro.unroll.bmc.Counterexample` for a SAT
    ``bmc`` cube (other modes return None).  Variable numbering is
    deterministic, so the worker's formula matches the parent's
    stamped formula literal-for-literal — the property both cube
    assumptions and learnt-clause sharing rely on.
    """
    mode = payload["mode"]
    cube = [int(lit) for lit in payload["cube"]]
    conflict_budget = payload.get("conflict_budget")
    do_cert = bool(payload.get("certify"))
    with use_proofs(True) if do_cert else _nullcontext():
        if mode == "cnf":
            solver = Solver()
            for clause in payload["clauses"]:
                solver.add_clause(list(clause))
            assumptions = list(payload.get("assumptions", ())) + cube
            result = solver.solve(assumptions,
                                  conflict_budget=conflict_budget,
                                  budget=budget)
            return solver, result, None, None
        if mode == "bmc":
            from ..unroll.bmc import Counterexample
            from ..unroll.unroller import Unrolling
            net, t = payload["net"], payload["frame"]
            unroll = Unrolling(net, constrain_init=True,
                               use_template=payload.get("use_template"))
            lit = unroll.literal(payload["target"], t)
            result = unroll.solver.solve(
                [lit] + cube, conflict_budget=conflict_budget,
                budget=budget)
            cex = None
            if result == SAT:
                model = unroll.solver.model
                cex = Counterexample(
                    depth=t,
                    inputs=[unroll.input_values(model, i)
                            for i in range(t + 1)],
                    initial_state=unroll.state_values(model, 0),
                )
            return unroll.solver, result, cex, unroll
        if mode == "induction":
            from ..sat import lit_not
            from ..unroll.induction import add_state_difference
            from ..unroll.unroller import Unrolling
            net, k = payload["net"], payload["k"]
            step = Unrolling(net, constrain_init=False,
                             use_template=payload.get("use_template"))
            for j in range(1, k + 1):
                step.frame(j)
                for i in range(j):
                    add_state_difference(step.sink, step.state_lits[i],
                                         step.state_lits[j])
            target = payload["target"]
            assumptions = [lit_not(step.literal(target, i))
                           for i in range(k)]
            assumptions.append(step.literal(target, k))
            result = step.solver.solve(
                assumptions + cube, conflict_budget=conflict_budget,
                budget=budget)
            return step.solver, result, None, None
    raise ValueError(f"unknown cube payload mode {mode!r}")


def run_cube_task(payload: Dict[str, Any],
                  budget: Optional[Budget]) -> Dict[str, Any]:
    """Solve one cube of a split query (worker entry body).

    Certification happens *inside* the worker, where the live solver
    and unrolling are: an UNSAT cube DRAT-checks its own proof, a SAT
    ``bmc`` cube replays its counterexample against the netlist
    semantics.  A failed check raises
    :class:`~repro.resilience.CertificationFailure`, which the pool
    returns as a typed outcome and the join re-raises.
    """
    reg = obs.get_registry()
    index = payload.get("cube_index", 0)
    total = payload.get("cube_of", 1)
    do_cert = bool(payload.get("certify"))
    with reg.span("cube.task"):
        solver, result, cex, unroll = _rebuild_and_solve(payload,
                                                         budget)
        if do_cert:
            from ..cert import certify_unsat, certify_witness
            if result == UNSAT:
                certify_unsat(solver, f"cube[{index}]")
            elif result == SAT and payload["mode"] == "bmc":
                certify_witness(payload["net"], payload["target"], cex,
                                model=solver.model, unroll=unroll,
                                engine=f"cube[{index}]")
        learned: List[Tuple[int, ...]] = []
        share_max_len = payload.get("share_max_len")
        if share_max_len and result == UNSAT:
            limit = payload.get("share_max_clauses", 64)
            for clause in solver.learnt_lits():
                if 0 < len(clause) <= share_max_len:
                    learned.append(tuple(clause))
                    if len(learned) >= limit:
                        break
    reg.event("cube.done", index=index, of=total, result=result)
    obs.progress("cube", index=index, of=total, result=result)
    return {
        "result": result,
        "exhaustion": solver.last_exhaustion,
        "cex": cex,
        "learned": learned,
        "num_vars": solver.num_vars,
    }


# ----------------------------------------------------------------------
# The join: typed-error precedence over a cube outcome list
# ----------------------------------------------------------------------
@dataclass
class CubeJoin:
    """The verdict of a cube set, joined in submission order."""

    result: str  # SAT / UNSAT / UNKNOWN (solver result strings)
    winner: Optional[int] = None  # index of the winning SAT cube
    cex: Any = None
    exhaustion: Optional[str] = None
    learned: List[Tuple[int, ...]] = field(default_factory=list)
    num_vars: Optional[int] = None
    cancel_latency: Optional[float] = None
    cubes: int = 0


def join_cubes(outcomes: Sequence[Any],
               budget: Optional[Budget] = None) -> CubeJoin:
    """Join per-cube outcomes into one verdict.

    Precedence (most definitive first — the regression-pinned rule):

    1. any SAT cube ⇒ SAT, winner = the lowest-index SAT cube;
       losers' ``Cancelled`` / ``ResourceExhausted`` are bookkeeping
       of the first-win cancellation and never mask the verdict;
    2. a :class:`CertificationFailure` (no SAT winner) re-raises —
       certified verdicts must stay arbitrable;
    3. every cube UNSAT ⇒ UNSAT (learnt clauses collected in cube
       order, de-duplicated);
    4. a cancelled parent budget re-raises :class:`Cancelled`;
    5. a worker crash (:class:`EngineFailure`) re-raises — a missing
       cube is a hole in an UNSAT argument, not a weaker answer;
    6. otherwise UNKNOWN, with the first cube's structured
       exhaustion reason.
    """
    sat_indices = [o.index for o in outcomes
                   if o.ok and o.value["result"] == SAT]
    if sat_indices:
        winner = min(sat_indices)
        value = next(o.value for o in outcomes if o.index == winner)
        return CubeJoin(SAT, winner=winner, cex=value["cex"],
                        num_vars=value["num_vars"],
                        cubes=len(outcomes))
    for outcome in outcomes:
        if isinstance(outcome.error, CertificationFailure):
            raise outcome.error
    if all(o.ok and o.value["result"] == UNSAT for o in outcomes):
        learned: List[Tuple[int, ...]] = []
        seen = set()
        num_vars = 0
        for outcome in outcomes:
            num_vars = max(num_vars, outcome.value["num_vars"])
            for clause in outcome.value["learned"]:
                if clause not in seen:
                    seen.add(clause)
                    learned.append(clause)
        return CubeJoin(UNSAT, learned=learned, num_vars=num_vars,
                        cubes=len(outcomes))
    if budget is not None and budget.cancelled:
        raise Cancelled(budget_name=budget.name)
    for outcome in outcomes:
        if isinstance(outcome.error, EngineFailure):
            raise outcome.error
    reason: Optional[str] = None
    for outcome in outcomes:
        if outcome.ok and outcome.value["result"] == UNKNOWN:
            reason = outcome.value["exhaustion"]
            break
        if isinstance(outcome.error, ResourceExhausted):
            reason = outcome.error.reason
            break
    return CubeJoin(UNKNOWN, exhaustion=reason, cubes=len(outcomes))


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
def _is_sat_result(value: Any) -> bool:
    """First-win predicate: a cube result value that ends the race."""
    return isinstance(value, dict) and value.get("result") == SAT


def solve_cubes(payload: Dict[str, Any],
                cubes: Sequence[Tuple[int, ...]],
                jobs: Optional[int] = None,
                budget: Optional[Budget] = None,
                name: str = "cube") -> CubeJoin:
    """Fan ``cubes`` of the query described by ``payload`` across the
    work-stealing pool and join the verdicts.

    ``payload`` is the cube-independent rebuild recipe (see
    :func:`run_cube_task`); each cube gets a copy extended with its
    assumption tuple and index.  Workers run under a *shared* budget
    view — one wall deadline, one cross-process conflict/query pool —
    and the first SAT cube cancels the rest through the pool-wide
    cancel event.  Inside an existing pool worker the fan-out degrades
    to ``jobs=1`` (no nested process pools), which changes wall clock
    only, never the verdict.
    """
    from ..parallel import ParallelExecutor, workers

    cfg = cube_config()
    if jobs is None:
        jobs = cfg.jobs
    if multiprocessing.parent_process() is not None:
        jobs = 1  # never nest process pools inside a pool worker
    payloads = [dict(payload, cube=list(cube), cube_index=i,
                     cube_of=len(cubes))
                for i, cube in enumerate(cubes)]
    labels = [f"c{i}" for i in range(len(cubes))]
    reg = obs.get_registry()
    reg.counter("cube.splits")
    reg.counter("cube.cubes", len(cubes))
    executor = ParallelExecutor(jobs=max(1, min(jobs, len(cubes))),
                                name=name, stealing=True)
    with reg.span("cube.race"):
        outcomes = executor.map(workers.run_cube, payloads,
                                budget=budget, labels=labels,
                                first_win=_is_sat_result)
    join = join_cubes(outcomes, budget=budget)
    join.cancel_latency = executor.last_race.get("cancel_latency")
    if join.result == SAT:
        reg.counter("cube.sat_wins")
        if join.cancel_latency is not None:
            reg.event("cube.first_win", winner=join.winner,
                      latency_s=round(join.cancel_latency, 6))
    elif join.result == UNSAT:
        reg.counter("cube.unsat_joins")
    obs.progress("cube.join", result=join.result, cubes=len(cubes),
                 winner=join.winner)
    return join


@dataclass
class CubeAttempt:
    """What a threshold-gated solve actually did.

    ``used_cubes`` False means the plain incremental solve concluded
    (or resourced out on the caller's own limits) and the solver's
    model / ``last_exhaustion`` are authoritative, exactly as if the
    cube path did not exist.  True means the verdict came from a cube
    join: ``cex`` carries a worker-built counterexample for SAT ``bmc``
    queries, ``exhaustion`` the structured reason for UNKNOWN.
    """

    used_cubes: bool
    result: str
    cex: Any = None
    exhaustion: Optional[str] = None
    join: Optional[CubeJoin] = None


def cube_solve(solver: Solver,
               assumptions: Sequence[int],
               payload: Dict[str, Any],
               conflict_budget: Optional[int] = None,
               budget: Optional[Budget] = None,
               name: str = "cube") -> CubeAttempt:
    """Threshold-gated cube solve of one query.

    Runs the plain incremental solve first, capped at the configured
    conflict threshold.  Conclusive (or resourced-out on the caller's
    *own* limits — a tighter ``conflict_budget`` or an exhausted
    ``budget``) means no split: behaviour is byte-identical to the
    sequential path.  Only a query that burns the whole threshold
    inconclusively is scored, split and raced.
    """
    cfg = cube_config()
    threshold = cfg.conflict_threshold
    trial_cap = threshold if conflict_budget is None \
        else min(threshold, conflict_budget)
    result = solver.solve(assumptions, conflict_budget=trial_cap,
                          budget=budget)
    if result != UNKNOWN:
        return CubeAttempt(False, result)
    if solver.last_exhaustion != EXHAUSTED_CONFLICTS:
        return CubeAttempt(False, result,
                           exhaustion=solver.last_exhaustion)
    if conflict_budget is not None and trial_cap >= conflict_budget:
        # The caller's own cap was the binding limit, not our
        # threshold: report exactly what the plain path would have.
        return CubeAttempt(False, result,
                           exhaustion=solver.last_exhaustion)
    if budget is not None and budget.exhausted() is not None:
        return CubeAttempt(False, result,
                           exhaustion=solver.last_exhaustion)
    reg = obs.get_registry()
    reg.counter("cube.engaged")
    cubes = generate_cubes(solver,
                           exclude=[lit >> 1 for lit in assumptions])
    if len(cubes) <= 1:
        # Nothing worth splitting on: finish the solve in place.
        result = solver.solve(assumptions,
                              conflict_budget=conflict_budget,
                              budget=budget)
        return CubeAttempt(False, result,
                           exhaustion=solver.last_exhaustion)
    share = cfg.share_learned and not payload.get("certify")
    work = dict(payload, conflict_budget=conflict_budget)
    if share:
        work["share_max_len"] = cfg.share_max_len
        work["share_max_clauses"] = cfg.share_max_clauses
    race = obs.stopwatch()
    join = solve_cubes(work, cubes, budget=budget, name=name)
    _metrics.record_query(
        engine=name, cube=True, verdict=join.result,
        cubes=len(cubes), winner=join.winner,
        seconds=race.elapsed, exhausted=join.exhaustion)
    if share and join.result == UNSAT and join.learned and \
            join.num_vars == solver.num_vars:
        # Assumption-based CDCL only learns consequences of the clause
        # database, and the worker's deterministic rebuild matches our
        # variable numbering (guarded above) — so feeding the short
        # lemmas back is sound and speeds the remaining frames.
        for clause in join.learned:
            solver.add_clause(list(clause))
        reg.counter("cube.shared_clauses", len(join.learned))
    return CubeAttempt(True, join.result, cex=join.cex,
                       exhaustion=join.exhaustion, join=join)
