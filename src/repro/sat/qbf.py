"""A CEGAR solver for 2QBF formulas ``forall X exists Y . phi(X, Y)``.

General diameter calculation "relies upon quantified Boolean formulae
(QBF), thus is PSPACE-complete" (Section 1); the paper's conclusion
names speeding up QBF-based diameter calculation as future work.  This
module provides the required machinery: a counterexample-guided
abstraction-refinement loop in the style of Janota/Marques-Silva's
2QBF algorithm, built on the project's CDCL solver.

``phi`` is supplied as an *encoding callback*
``encode(sink, x_lits, y_lits) -> output_literal`` so arbitrary
circuit-shaped matrices (e.g. netlist unrollings) plug in without a
prenex-CNF detour:

* the **verifier** solver carries one copy of ``phi(x, y)`` with both
  blocks free; a universal candidate ``X*`` is checked by assuming its
  literals and asking for *some* ``Y``;
* the **abstraction** solver searches for a candidate ``X`` refuting
  the formula; each discovered witness ``Y*`` refines it with a copy
  of ``phi(X, Y*)`` constrained false (``X`` must beat every collected
  witness).

UNSAT abstraction means no refuting ``X`` exists: the formula is valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..resilience import Budget, Cancelled
from .cnf import lit_not, pos
from .solver import UNKNOWN, UNSAT, Solver
from .tseitin import CnfSink

#: ``encode(sink, x_lits, y_lits) -> literal`` of the matrix phi.
MatrixEncoder = Callable[[CnfSink, List[int], List[int]], int]


@dataclass
class QBFResult:
    """Outcome of a 2QBF query.

    ``valid`` is True when ``forall X exists Y . phi`` holds;
    ``counterexample`` carries the refuting universal assignment
    otherwise; ``iterations`` counts CEGAR refinements; ``exact`` is
    False if the solver gave up on a resource budget (treat as
    unknown), with the structured cause in ``exhaustion_reason``
    (None for an iteration-cap exit or spurious solver unknown).
    """

    valid: bool
    counterexample: Optional[List[bool]] = None
    iterations: int = 0
    exact: bool = True
    exhaustion_reason: Optional[str] = None


def solve_forall_exists(
    num_x: int,
    num_y: int,
    encode: MatrixEncoder,
    max_iterations: int = 10000,
    conflict_budget: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> QBFResult:
    """Decide ``forall X exists Y . phi(X, Y)`` by CEGAR.

    ``conflict_budget`` follows the ``Solver.solve`` contract per
    inner query; ``budget`` is checked per CEGAR iteration and inside
    both solvers (exhaustion yields an inexact result, cancellation
    raises).
    """
    # Verifier: one shared copy of phi with free X and Y.
    verifier = Solver()
    v_sink = CnfSink(verifier)
    vx = [pos(verifier.new_var()) for _ in range(num_x)]
    vy = [pos(verifier.new_var()) for _ in range(num_y)]
    v_phi = encode(v_sink, vx, vy)
    verifier.add_clause([v_phi])

    # Abstraction: searches for X refuting every collected witness.
    abstraction = Solver()
    a_sink = CnfSink(abstraction)
    ax = [pos(abstraction.new_var()) for _ in range(num_x)]

    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        if budget is not None:
            if budget.cancelled:
                raise Cancelled(budget_name=budget.name)
            reason = budget.exhausted()
            if reason is not None:
                return QBFResult(valid=False, iterations=iterations,
                                 exact=False, exhaustion_reason=reason)
        status = abstraction.solve(conflict_budget=conflict_budget,
                                   budget=budget)
        if status == UNKNOWN:
            return QBFResult(
                valid=False, iterations=iterations, exact=False,
                exhaustion_reason=abstraction.last_exhaustion)
        if status == UNSAT:
            return QBFResult(valid=True, iterations=iterations)
        candidate = [abstraction.model[lit >> 1] for lit in ax]
        assumptions = [lit if value else lit_not(lit)
                       for lit, value in zip(vx, candidate)]
        status = verifier.solve(assumptions,
                                conflict_budget=conflict_budget,
                                budget=budget)
        if status == UNKNOWN:
            return QBFResult(
                valid=False, iterations=iterations, exact=False,
                exhaustion_reason=verifier.last_exhaustion)
        if status == UNSAT:
            # No Y exists for this X: genuine counterexample.
            return QBFResult(valid=False, counterexample=candidate,
                             iterations=iterations)
        witness = [verifier.model[lit >> 1] for lit in vy]
        # Refine: X must also refute phi(., witness).
        wy = [a_sink.true_lit if value else a_sink.false_lit
              for value in witness]
        refute = encode(a_sink, ax, wy)
        abstraction.add_clause([lit_not(refute)])
    return QBFResult(valid=False, iterations=iterations, exact=False)


def solve_exists_forall(
    num_x: int,
    num_y: int,
    encode: MatrixEncoder,
    max_iterations: int = 10000,
    conflict_budget: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> QBFResult:
    """Decide ``exists X forall Y . phi(X, Y)``.

    Dual of :func:`solve_forall_exists`: valid iff the negated
    ``forall X exists Y . not phi`` is invalid, and the refuting
    assignment of that query is exactly the existential witness.
    """

    def negated(sink: CnfSink, xs: List[int], ys: List[int]) -> int:
        return lit_not(encode(sink, xs, ys))

    inner = solve_forall_exists(num_x, num_y, negated,
                                max_iterations=max_iterations,
                                conflict_budget=conflict_budget,
                                budget=budget)
    return QBFResult(valid=not inner.valid and inner.exact,
                     counterexample=inner.counterexample,
                     iterations=inner.iterations,
                     exact=inner.exact,
                     exhaustion_reason=inner.exhaustion_reason)
