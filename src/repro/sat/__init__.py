"""CDCL SAT solving, CNF containers, and Tseitin netlist encoding."""

from .cnf import (
    CNF,
    from_dimacs_lit,
    lit_not,
    lit_sign,
    lit_var,
    neg,
    pos,
    to_dimacs_lit,
)
from .solver import SAT, UNKNOWN, UNSAT, Solver
from .qbf import QBFResult, solve_exists_forall, solve_forall_exists
from .template import (
    FrameTemplate,
    clear_template_cache,
    compile_template,
    get_template,
    netlist_has_const0,
    set_templates_enabled,
    templates_enabled,
    use_templates,
)
from .tseitin import (
    CnfSink,
    encode_and,
    encode_equiv,
    encode_frame,
    encode_init_state,
    encode_mux,
    encode_or,
    encode_xor2,
)

__all__ = [
    "CNF",
    "CnfSink",
    "FrameTemplate",
    "QBFResult",
    "SAT",
    "Solver",
    "UNKNOWN",
    "UNSAT",
    "clear_template_cache",
    "compile_template",
    "get_template",
    "netlist_has_const0",
    "set_templates_enabled",
    "templates_enabled",
    "use_templates",
    "encode_and",
    "encode_equiv",
    "encode_frame",
    "encode_init_state",
    "encode_mux",
    "encode_or",
    "encode_xor2",
    "from_dimacs_lit",
    "lit_not",
    "lit_sign",
    "lit_var",
    "neg",
    "pos",
    "solve_exists_forall",
    "solve_forall_exists",
    "to_dimacs_lit",
]
