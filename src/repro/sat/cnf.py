"""CNF formula container and DIMACS I/O.

Literal convention (shared with :mod:`repro.sat.solver`): variables are
0-based integers; the literal of variable ``v`` is ``2*v`` for the
positive phase and ``2*v + 1`` for the negative phase.  DIMACS uses
1-based signed integers; converters are provided for interchange.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


def pos(var: int) -> int:
    """Positive literal of ``var``."""
    return var << 1


def neg(var: int) -> int:
    """Negative literal of ``var``."""
    return (var << 1) | 1


def lit_not(lit: int) -> int:
    """Negation of a literal."""
    return lit ^ 1


def lit_var(lit: int) -> int:
    """Variable of a literal."""
    return lit >> 1


def lit_sign(lit: int) -> bool:
    """True iff the literal is negative."""
    return bool(lit & 1)


def to_dimacs_lit(lit: int) -> int:
    """Internal literal to DIMACS signed integer."""
    var = lit_var(lit) + 1
    return -var if lit_sign(lit) else var


def from_dimacs_lit(dlit: int) -> int:
    """DIMACS signed integer to internal literal."""
    if dlit == 0:
        raise ValueError("DIMACS literal 0 is the clause terminator")
    var = abs(dlit) - 1
    return neg(var) if dlit < 0 else pos(var)


class CNF:
    """A conjunction of clauses over 0-based variables."""

    def __init__(self) -> None:
        self.clauses: List[Tuple[int, ...]] = []
        self.num_vars = 0

    def new_var(self) -> int:
        """Allocate a fresh variable."""
        var = self.num_vars
        self.num_vars += 1
        return var

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause of internal literals."""
        clause = tuple(lits)
        for lit in clause:
            if lit_var(lit) >= self.num_vars:
                self.num_vars = lit_var(lit) + 1
        self.clauses.append(clause)

    def to_dimacs(self) -> str:
        """Serialize to DIMACS CNF text."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(
                " ".join(str(to_dimacs_lit(lit)) for lit in clause) + " 0"
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse DIMACS CNF text."""
        cnf = cls()
        declared_vars = None
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"bad DIMACS header: {raw!r}")
                declared_vars = int(parts[2])
                continue
            lits = [int(tok) for tok in line.split()]
            if lits and lits[-1] == 0:
                lits = lits[:-1]
            if lits:
                cnf.add_clause(from_dimacs_lit(x) for x in lits)
        if declared_vars is not None:
            cnf.num_vars = max(cnf.num_vars, declared_vars)
        return cnf

    def __len__(self) -> int:
        return len(self.clauses)
