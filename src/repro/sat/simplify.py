"""Inprocessing between restarts: subsumption, self-subsuming
resolution, and bounded variable elimination — every step certified.

The driver here is shared verbatim by both CDCL cores: it operates
only through the small ``_simp_*`` primitive layer each core exposes
(:meth:`_simp_lits`, :meth:`_simp_shrink`, :meth:`_simp_remove`,
:meth:`_simp_gc`, :meth:`_simp_clear_reasons`) plus the shared
``_value`` / ``_enqueue`` / ``_propagate`` / ``_store_problem_clause``
slow paths, so :class:`~repro.sat.solver.LegacySolver` and
:class:`~repro.sat.flat.FlatSolver` execute identical rounds and the
dual-path oracle's exact-equivalence contract extends over the
simplifier by construction.

A round runs at a restart boundary (decision level 0, propagation at
fixpoint) and performs, in order:

1. **Level-0 cleanup** — clauses satisfied at level 0 are deleted;
   level-0-false literals are stripped (the stripped clause is a
   one-step RUP lemma: the dropped literals' negations are derivable
   units).
2. **Backward subsumption / self-subsuming resolution** — via
   variable-indexed occurrence lists and 64-bit clause signatures.
   For each clause ``C`` the occurrence list of its rarest variable is
   scanned once; a candidate ``D`` with ``C ⊆ D`` is deleted, and a
   candidate where exactly one literal of ``C`` appears negated in
   ``D`` is *strengthened* (``D`` loses that negation — the resolvent
   of ``C`` and ``D``, which subsumes ``D``).  The strengthened clause
   is emitted as an ``a`` lemma before the ``d`` of its parent, so it
   is RUP at its emission point.
3. **Bounded variable elimination** (SatELite-style) — an unfrozen,
   unassigned variable whose resolvent set does not grow the formula
   is eliminated: all resolvents are emitted as ``a`` lemmas (each is
   one-step RUP while its parents are live), then every clause
   mentioning the variable is deleted (``d``), with learnt clauses
   over the variable dropped too.  The smaller polarity side's clauses
   plus a unit marker of the opposite literal are pushed onto the
   solver's *elimination stack*; ``Solver._extend_model`` walks it
   backward after a SAT answer to reconstruct values for eliminated
   variables (MiniSat ``extendModel`` semantics), so ``Solver.model``
   and witness replay always see full assignments.  The removed
   problem clauses are kept in ``_elim_clauses`` for restoration when
   ``add_clause``/``add_clauses_bulk`` re-introduce the variable.

Every mutation is proof-logged through the existing
:class:`~repro.cert.proof.ProofLog`, keeping ``repro-check --certify``
and the backward RUP checker sound with inprocessing on.  This module
deliberately imports nothing from :mod:`repro.sat.solver` (the solver
imports *it*); the only dependency is :mod:`repro.obs` for counters.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from .. import obs

__all__ = ["simplify_round", "BVE_MAX_OCC", "BVE_GROW",
           "BVE_MAX_RESOLVENT"]

#: Variables occurring in more problem clauses than this are never
#: eliminated (their resolvent sets are quadratic and rarely shrink).
BVE_MAX_OCC = 14

#: A variable is eliminated only if its non-tautological resolvent
#: count does not exceed the clause count it removes, plus this slack.
BVE_GROW = 0

#: Abort eliminating a variable if any resolvent would be longer than
#: this (long resolvents propagate poorly and bloat the proof).
BVE_MAX_RESOLVENT = 12

_SATISFIED = "sat"
_KEPT = "ok"


def _signature(lits) -> int:
    """A 64-bit Bloom signature over the clause's variables; a
    necessary condition for ``C ⊆ D`` is ``sig(C) & ~sig(D) == 0``."""
    sig = 0
    for lit in lits:
        sig |= 1 << ((lit >> 1) & 63)
    return sig


def _match(lits, other_set) -> int:
    """Subsumption test of ``lits`` against a clause's literal set,
    allowing one flipped literal.  Returns ``-1`` (strict subsumption),
    a literal ``p`` (self-subsuming resolution: ``p`` appears negated
    in the other clause, the rest is a subset), or ``-2`` (neither)."""
    flip = -1
    for lit in lits:
        if lit in other_set:
            continue
        if flip < 0 and (lit ^ 1) in other_set:
            flip = lit
            continue
        return -2
    return flip


def _resolve(pos_lits, neg_lits, var) -> Optional[List[int]]:
    """The resolvent of two clauses on ``var`` (``pos_lits`` contains
    the positive literal, ``neg_lits`` the negative); None when it is
    a tautology.  Deduplicates literals, preserving first-seen order."""
    plit = var << 1
    nlit = plit | 1
    out: List[int] = []
    seen = set()
    for lit in pos_lits:
        if lit != plit and lit not in seen:
            seen.add(lit)
            out.append(lit)
    for lit in neg_lits:
        if lit == nlit or lit in seen:
            continue
        if lit ^ 1 in seen:
            return None  # tautological resolvent
        seen.add(lit)
        out.append(lit)
    return out


def _normalize(value, lits) -> Tuple[str, Optional[List[int]]]:
    """Strip level-0-false literals; detect satisfied-at-level-0."""
    kept: List[int] = []
    for lit in lits:
        v = value(lit)
        if v is True:
            return _SATISFIED, None
        if v is None:
            kept.append(lit)
    return _KEPT, kept


def simplify_round(solver) -> bool:
    """Run one inprocessing round; returns False when the round
    refuted the formula (the caller concludes UNSAT).

    Preconditions (the restart boundary guarantees both): decision
    level 0, unit propagation at fixpoint.
    """
    reg = obs.get_registry()
    with reg.span("sat.simplify"):
        ok, subsumed, strengthened, eliminated = _run(solver)
    solver._simp_count("simplify_rounds")
    reg.counter("simplify.rounds")
    if subsumed:
        solver._simp_count("simplify_subsumed", subsumed)
        reg.counter("simplify.subsumed", subsumed)
    if strengthened:
        solver._simp_count("simplify_strengthened", strengthened)
        reg.counter("simplify.strengthened", strengthened)
    if eliminated:
        solver._simp_count("simplify_eliminated_vars", eliminated)
        reg.counter("simplify.eliminated_vars", eliminated)
    return ok


def _run(solver) -> Tuple[bool, int, int, int]:
    proof = solver._proof
    value = solver._value
    # Level-0 facts never need explaining (conflict analysis skips
    # level-0 variables), but a stale reason pointing at a clause this
    # round deletes would dangle — and the flat core's compaction
    # remaps every live reason reference.  Drop them all up front.
    solver._simp_clear_reasons()

    elim = solver._elim
    if len(elim) < solver.num_vars:
        elim.extend([0] * (solver.num_vars - len(elim)))

    # Per-clause records: ref -> [lits, literal set, signature].
    # Refs are core-specific (arena indices / _Clause objects) but the
    # driver only ever uses them as ordered handles and dict/set keys,
    # so both cores traverse identical positions in identical order.
    recs = {}
    order: List = []
    dead = set()
    subsumed = 0
    strengthened = 0
    eliminated = 0

    def remove(ref) -> None:
        dead.add(ref)
        if proof is not None:
            proof.delete(recs[ref][0])
        solver._simp_remove(ref)

    def assert_unit(lit) -> bool:
        # The literal is unassigned at level 0 (normalization strips
        # assigned ones), so the enqueue cannot fail — only the
        # follow-up propagation can, by refuting the formula.
        solver._enqueue(lit)
        return solver._propagate() is None

    for ref in solver._clauses:
        lits = solver._simp_lits(ref)
        recs[ref] = [lits, set(lits), _signature(lits)]
        order.append(ref)

    # ---- phase 1: level-0 cleanup ------------------------------------
    for ref in order:
        lits = recs[ref][0]
        status, kept = _normalize(value, lits)
        if status is _SATISFIED:
            remove(ref)
            subsumed += 1
            continue
        if len(kept) == len(lits):
            continue
        # The stripped residue is RUP: the dropped literals' negations
        # are level-0 units, themselves derivable by propagation over
        # the active clauses.  Emit it before deleting the parent.
        if not kept:
            # Every literal false at level 0 — unreachable while the
            # solver's own propagation is sound (it would have
            # conflicted before restarting), kept as a safety net.
            if proof is not None:
                proof.learnt(())
            return False, subsumed, strengthened, eliminated
        if proof is not None:
            proof.learnt(kept)
        strengthened += 1
        if len(kept) == 1:
            remove(ref)
            if not assert_unit(kept[0]):
                return False, subsumed, strengthened, eliminated
        else:
            solver._simp_shrink(ref, kept)
            recs[ref] = [kept, set(kept), _signature(kept)]

    # ---- phase 2: backward subsumption / self-subsuming resolution ---
    occ = {}
    queue = deque()
    in_queue = set()
    for ref in order:
        if ref in dead:
            continue
        for lit in recs[ref][0]:
            occ.setdefault(lit >> 1, []).append(ref)
        queue.append(ref)
        in_queue.add(ref)
    while queue:
        ref = queue.popleft()
        in_queue.discard(ref)
        if ref in dead:
            continue
        lits, _, sig = recs[ref]
        # Scan the occurrence list of the clause's rarest variable:
        # any D with C ⊆ D (or C resolving into a subset of D) must
        # mention every variable of C, this one included.
        pivot = min(lits, key=lambda l: len(occ.get(l >> 1, ())))
        for other in occ.get(pivot >> 1, ()):
            if other == ref or other in dead or ref in dead:
                continue
            olits, oset, osig = recs[other]
            if len(olits) < len(lits) or sig & ~osig:
                continue
            hit = _match(lits, oset)
            if hit == -2:
                continue
            if hit == -1:
                remove(other)
                subsumed += 1
                continue
            # Self-subsuming resolution: D loses ¬hit.  The result is
            # the resolvent of C and D, RUP while both are live; it is
            # additionally re-normalized against any units derived
            # earlier in this round.
            status, kept = _normalize(
                value, [l for l in olits if l != hit ^ 1])
            if status is _SATISFIED:
                remove(other)
                subsumed += 1
                continue
            if not kept:
                if proof is not None:
                    proof.learnt(())
                return False, subsumed, strengthened, eliminated
            if proof is not None:
                proof.learnt(kept)
            strengthened += 1
            if len(kept) == 1:
                remove(other)
                if not assert_unit(kept[0]):
                    return False, subsumed, strengthened, eliminated
            else:
                solver._simp_shrink(other, kept)
                recs[other] = [kept, set(kept), _signature(kept)]
                if other not in in_queue:
                    queue.append(other)
                    in_queue.add(other)

    # ---- phase 3: bounded variable elimination -----------------------
    pos_occ, neg_occ = {}, {}
    for ref in order:
        if ref in dead:
            continue
        for lit in recs[ref][0]:
            side = neg_occ if lit & 1 else pos_occ
            side.setdefault(lit >> 1, []).append(ref)
    learnt_occ = {}
    learnt_dead = set()
    for lref in solver._learnts:
        for lit in solver._simp_lits(lref):
            learnt_occ.setdefault(lit >> 1, []).append(lref)
    frozen = solver._frozen
    candidates = sorted(
        set(pos_occ) | set(neg_occ),
        key=lambda v: (len(pos_occ.get(v, ()))
                       + len(neg_occ.get(v, ())), v))
    for var in candidates:
        if var in frozen or elim[var] or value(var << 1) is not None:
            continue
        plit = var << 1
        nlit = plit | 1
        # Occurrence lists go stale as strengthening/elimination
        # rewrites clauses; filter on liveness and actual membership.
        pos = [r for r in pos_occ.get(var, ())
               if r not in dead and plit in recs[r][1]]
        neg = [r for r in neg_occ.get(var, ())
               if r not in dead and nlit in recs[r][1]]
        if not pos and not neg:
            continue
        if len(pos) + len(neg) > BVE_MAX_OCC:
            continue
        resolvents: List[List[int]] = []
        aborted = False
        for pref in pos:
            for nref in neg:
                res = _resolve(recs[pref][0], recs[nref][0], var)
                if res is None:
                    continue
                if len(res) > BVE_MAX_RESOLVENT:
                    aborted = True
                    break
                resolvents.append(res)
            if aborted:
                break
        if aborted:
            continue
        uniq = {}
        for res in resolvents:
            uniq.setdefault(tuple(sorted(res)), res)
        resolvents = list(uniq.values())
        if len(resolvents) > len(pos) + len(neg) + BVE_GROW:
            continue
        # Commit.  Proof order matters: every resolvent is a one-step
        # RUP lemma only while both of its parents are still active,
        # so all `a` lines precede the parents' `d` lines.
        if proof is not None:
            for res in resolvents:
                proof.learnt(res)
        # Elimination stack (MiniSat extendModel convention): store
        # the smaller side's clauses with the variable's own literal
        # first, then a unit marker of the *other* polarity.  Model
        # reconstruction walks backward: the marker pre-satisfies the
        # larger (un-stored) side, each stored clause flips the
        # variable only if its remaining literals are all false.
        if len(pos) <= len(neg):
            side, designated, marker = pos, plit, nlit
        else:
            side, designated, marker = neg, nlit, plit
        stack = solver._elim_stack
        for ref in side:
            rest = [l for l in recs[ref][0] if l != designated]
            stack.append((var, (designated, *rest)))
        stack.append((var, (marker,)))
        solver._elim_clauses[var] = \
            [list(recs[r][0]) for r in pos + neg]
        for ref in pos + neg:
            remove(ref)
        for lref in learnt_occ.get(var, ()):
            if lref in learnt_dead:
                continue
            learnt_dead.add(lref)
            if proof is not None:
                proof.delete(solver._simp_lits(lref))
            solver._simp_remove(lref)
        elim[var] = 1
        solver._elim_count += 1
        eliminated += 1
        for res in resolvents:
            status, kept = _normalize(value, res)
            if status is _SATISFIED:
                continue
            if not kept:
                return False, subsumed, strengthened, eliminated
            if proof is not None and len(kept) < len(res):
                proof.learnt(kept)
            if len(kept) == 1:
                if not assert_unit(kept[0]):
                    return False, subsumed, strengthened, eliminated
                continue
            solver._store_problem_clause(list(kept))
            ref = solver._clauses[-1]
            recs[ref] = [kept, set(kept), _signature(kept)]
            order.append(ref)
            for lit in kept:
                side_occ = neg_occ if lit & 1 else pos_occ
                side_occ.setdefault(lit >> 1, []).append(ref)

    # ---- commit: rebuild clause lists, reclaim arena garbage ---------
    if dead:
        solver._clauses = [r for r in solver._clauses if r not in dead]
    if learnt_dead:
        solver._learnts = [r for r in solver._learnts
                           if r not in learnt_dead]
    # Propagation during the round assigned fresh level-0 reasons that
    # may reference deleted clauses; clear them again before GC.
    solver._simp_clear_reasons()
    solver._simp_gc()
    return True, subsumed, strengthened, eliminated
