"""A CDCL SAT solver with two interchangeable cores.

Implements the standard conflict-driven clause-learning architecture —
two-watched-literal propagation with blocker literals, first-UIP
conflict analysis with recursive clause minimization, VSIDS decision
heuristics with phase saving, Luby restarts, and learnt-clause database
reduction — in pure Python.  It is the reasoning engine behind SAT
sweeping (Section 3.1), BMC, k-induction, and the recurrence-diameter
computation.

Two cores share one search loop (:meth:`Solver._search`) and differ
only in how the hot state is laid out:

* :class:`FlatSolver` (the default) keeps clauses in a flat integer
  *arena* with inline headers, watcher lists as flat interleaved
  ``[clause-ref, blocker, ...]`` integer arrays, and plain integer
  assignment/reason/level tables — no per-clause Python objects on the
  hot path (see :mod:`repro.sat.flat`).
* :class:`LegacySolver` keeps the original per-clause ``_Clause``
  objects.  It exists as the independent reference implementation for
  the randomized dual-path oracle suite: both cores execute the exact
  same search (decision for decision), so verdicts, models, trails and
  statistics must match *exactly* — any divergence is a bug in one of
  the cores.

The active core is selected at construction time by the
``REPRO_FLAT_SOLVER`` environment variable (default: flat) or the
scoped :func:`use_flat` / :func:`set_flat_enabled` toggles, mirroring
the ``REPRO_FRAME_TEMPLATES`` switch of :mod:`repro.sat.template`;
``Solver()`` transparently builds whichever core is enabled, and
``isinstance(x, Solver)`` holds for both.

Literals use the 0-based encoding of :mod:`repro.sat.cnf` (variable
``v`` gives positive literal ``2*v``, negative ``2*v + 1``).
"""

from __future__ import annotations

import heapq
import os
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, \
    Tuple

from .. import obs
from ..obs import metrics as _metrics
from ..cert.proof import ProofLog
from ..resilience import Budget, Cancelled, EngineFailure, \
    EXHAUSTED_CONFLICTS, EXHAUSTED_DEADLINE
from ..resilience import faults as _faults
from .cnf import CNF, lit_not, lit_sign, lit_var
from .simplify import simplify_round

#: Tri-state results of :meth:`Solver.solve`.
SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


# ----------------------------------------------------------------------
# Core-selection toggle (mirrors repro.sat.template's toggle shape)
# ----------------------------------------------------------------------
_FLAT_ENV = "REPRO_FLAT_SOLVER"
_flat_enabled = os.environ.get(_FLAT_ENV, "1").strip().lower() \
    not in ("0", "false", "off", "no")


def flat_enabled() -> bool:
    """Whether ``Solver()`` builds the flat-array core."""
    return _flat_enabled


def set_flat_enabled(enabled: bool) -> bool:
    """Set the global core toggle; returns the previous value."""
    global _flat_enabled
    previous = _flat_enabled
    _flat_enabled = bool(enabled)
    return previous


@contextmanager
def use_flat(enabled: bool) -> Iterator[None]:
    """Scoped override of the core toggle (A/B testing, the oracle)."""
    previous = set_flat_enabled(enabled)
    try:
        yield
    finally:
        set_flat_enabled(previous)


# ----------------------------------------------------------------------
# Debug-checks toggle: watcher-integrity violations become loud
# ----------------------------------------------------------------------
_DEBUG_ENV = "REPRO_SAT_DEBUG"
_debug_checks = os.environ.get(_DEBUG_ENV, "0").strip().lower() \
    not in ("0", "false", "off", "no", "")


def debug_checks_enabled() -> bool:
    """Whether internal-consistency violations raise instead of pass."""
    return _debug_checks


def set_debug_checks(enabled: bool) -> bool:
    """Set the debug-checks toggle; returns the previous value."""
    global _debug_checks
    previous = _debug_checks
    _debug_checks = bool(enabled)
    return previous


# ----------------------------------------------------------------------
# Search-time profiling toggle (the bench tool's time_split breakdown)
# ----------------------------------------------------------------------
_PROFILE_ENV = "REPRO_SAT_PROFILE"
_profile_enabled = os.environ.get(_PROFILE_ENV, "0").strip().lower() \
    not in ("0", "false", "off", "no", "")


def profile_enabled() -> bool:
    """Whether new solvers time propagation/analysis/decisions."""
    return _profile_enabled


def set_profile_enabled(enabled: bool) -> bool:
    """Set the profiling toggle; returns the previous value.

    Only affects solvers constructed afterwards.
    """
    global _profile_enabled
    previous = _profile_enabled
    _profile_enabled = bool(enabled)
    return previous


@contextmanager
def use_sat_profile(enabled: bool) -> Iterator[None]:
    """Scoped override of the profiling toggle (the bench tool)."""
    previous = set_profile_enabled(enabled)
    try:
        yield
    finally:
        set_profile_enabled(previous)


# ----------------------------------------------------------------------
# Proof-logging toggle (the certification layer, repro.cert)
# ----------------------------------------------------------------------
_PROOF_ENV = "REPRO_SAT_PROOF"


def _parse_proof_env(value: str) -> Tuple[bool, Optional[str]]:
    """``REPRO_SAT_PROOF``: off / in-memory ("1") / also stream to a
    path (any other value is taken as a file name)."""
    text = value.strip()
    lowered = text.lower()
    if lowered in ("", "0", "false", "off", "no"):
        return False, None
    if lowered in ("1", "true", "on", "yes"):
        return True, None
    return True, text


_proof_enabled, _proof_stream_path = \
    _parse_proof_env(os.environ.get(_PROOF_ENV, ""))


def proofs_enabled() -> bool:
    """Whether new solvers log DRAT-style proof events.

    Like profiling, the toggle is read at construction time only:
    a solver either carries a :class:`~repro.cert.proof.ProofLog`
    for its whole life or never pays a single hot-path branch.
    """
    return _proof_enabled


def set_proofs_enabled(enabled: bool) -> bool:
    """Set the proof-logging toggle; returns the previous value.

    Only affects solvers constructed afterwards.
    """
    global _proof_enabled
    previous = _proof_enabled
    _proof_enabled = bool(enabled)
    return previous


@contextmanager
def use_proofs(enabled: bool) -> Iterator[None]:
    """Scoped override of the proof-logging toggle (certified runs)."""
    previous = set_proofs_enabled(enabled)
    try:
        yield
    finally:
        set_proofs_enabled(previous)


# ----------------------------------------------------------------------
# Inprocessing toggle (repro.sat.simplify: subsumption / SSR / BVE)
# ----------------------------------------------------------------------
_SIMPLIFY_ENV = "REPRO_SAT_SIMPLIFY"
_simplify_enabled = os.environ.get(_SIMPLIFY_ENV, "1").strip().lower() \
    not in ("0", "false", "off", "no")


def simplify_enabled() -> bool:
    """Whether new solvers run inprocessing between restarts.

    Read at construction time only, like the profiling and proof
    toggles: a solver either schedules simplification rounds for its
    whole life or never checks the schedule at all.
    """
    return _simplify_enabled


def set_simplify_enabled(enabled: bool) -> bool:
    """Set the inprocessing toggle; returns the previous value.

    Only affects solvers constructed afterwards.
    """
    global _simplify_enabled
    previous = _simplify_enabled
    _simplify_enabled = bool(enabled)
    return previous


@contextmanager
def use_simplify(enabled: bool) -> Iterator[None]:
    """Scoped override of the inprocessing toggle (A/B testing)."""
    previous = set_simplify_enabled(enabled)
    try:
        yield
    finally:
        set_simplify_enabled(previous)


#: Profiled search phases, in ``time_breakdown()`` key order.
PROFILE_PHASES = ("propagate", "analyze", "decide")


def _timed(fn, acc: Dict[str, float], key: str):
    """Wrap ``fn`` to accumulate its wall time into ``acc[key]``."""
    def wrapper(*args):
        t0 = perf_counter()
        try:
            return fn(*args)
        finally:
            acc[key] += perf_counter() - t0
    return wrapper


class _Clause:
    """A clause of the legacy object core."""

    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits: List[int], learnt: bool) -> None:
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0


class Solver:
    """An incremental CDCL SAT solver with assumption support.

    ``Solver()`` is a facade: it constructs the flat-array core
    (:class:`FlatSolver`) or the legacy object core
    (:class:`LegacySolver`) depending on the :func:`use_flat` toggle.
    This base class carries everything core-independent — the search
    control loop, budget governance, statistics, and the normalising
    slow-path clause loader — while the cores implement the data-layout
    primitives (propagation, analysis, attach/detach, VSIDS tables).
    """

    def __new__(cls, *args, **kwargs):
        if cls is Solver:
            from .flat import FlatSolver
            cls = FlatSolver if _flat_enabled else LegacySolver
        return object.__new__(cls)

    def __init__(self) -> None:
        self.num_vars = 0
        #: Shared across cores: activity table, lazy-deletion binary
        #: heap of ``(-activity, var)`` entries, trail of literals,
        #: decision-level marks.
        self._activity: List[float] = []
        self._heap: List[tuple] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._ok = True
        #: The satisfying assignment of the last ``solve()`` call,
        #: indexed by variable — valid ONLY when that call returned
        #: :data:`SAT`.  Cleared at the start of every ``solve()``, so
        #: after an UNSAT/UNKNOWN call it is empty rather than the
        #: previous call's stale assignment; :meth:`value` then raises
        #: ``IndexError``.
        self.model: List[bool] = []
        # Statistics.  Semantics: *lifetime totals*, monotonically
        # non-decreasing across incremental solve() calls (MiniSat
        # convention).  Never read these expecting per-call values;
        # use stats() for a snapshot or last_call_stats for the deltas
        # of the most recent solve().
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        #: Per-call deltas of the last :meth:`solve` invocation.
        self.last_call_stats: Dict[str, int] = {}
        #: Why the last :meth:`solve` returned ``unknown``: one of the
        #: :data:`repro.resilience.EXHAUSTION_REASONS`, or None when
        #: the call was conclusive (or inconclusive for a non-resource
        #: reason, e.g. an injected spurious unknown).
        self.last_exhaustion: Optional[str] = None
        #: Lifetime seconds spent in each search phase, or None when
        #: profiling was off at construction (the default — the hot
        #: path then carries no timing overhead at all).
        self._profile: Optional[Dict[str, float]] = \
            {phase: 0.0 for phase in PROFILE_PHASES} \
            if _profile_enabled else None
        #: DRAT-style proof event log (repro.cert), or None when proof
        #: logging was off at construction — the hot paths then guard
        #: on a single ``is not None`` per batch/conflict/solve, the
        #: same zero-cost-when-off contract as the profile wrappers.
        self._proof: Optional[ProofLog] = \
            ProofLog(stream_path=_proof_stream_path) \
            if _proof_enabled else None
        #: Inprocessing (repro.sat.simplify).  The schedule is
        #: conflict-driven: a round runs at the first restart whose
        #: lifetime conflict count reaches ``_simp_next``, then the
        #: gap doubles.  All of this state lives in the base class so
        #: both cores share it bit-for-bit.
        self._use_simplify = _simplify_enabled
        self._simp_next = 0
        self._simp_interval = 2000
        #: Variables that must never be eliminated: assumption
        #: variables (frozen automatically at every solve) and any the
        #: caller froze explicitly via :meth:`freeze`.
        self._frozen: set = set()
        #: Eliminated-variable flags (lazily padded to num_vars by the
        #: simplifier; always index-guard before reading).
        self._elim: List[int] = []
        self._elim_count = 0
        #: Model-reconstruction stack of ``(var, lits)`` records, the
        #: designated literal first; walked backward by _extend_model.
        self._elim_stack: List[Tuple[int, Tuple[int, ...]]] = []
        #: Removed problem clauses per eliminated variable, kept for
        #: restoration when the variable is re-introduced.
        self._elim_clauses: Dict[int, List[List[int]]] = {}
        #: Lifetime simplify counters; keys appear lazily on first
        #: use, so stats() stays four-key until a round actually runs.
        self._simp_counters: Dict[str, int] = {}

    def stats(self) -> Dict[str, int]:
        """A snapshot of the lifetime statistic totals.

        Always carries the four core counters; the ``simplify_*``
        counters join lazily once inprocessing has done any work, so
        consumers must treat absent keys as zero (solve()'s delta
        computation does exactly that).
        """
        out = {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
        }
        if self._simp_counters:
            out.update(self._simp_counters)
        return out

    def time_breakdown(self) -> Optional[Dict[str, float]]:
        """Lifetime seconds per search phase (propagate / analyze /
        decide), or None when profiling was off at construction."""
        return dict(self._profile) if self._profile is not None \
            else None

    # ------------------------------------------------------------------
    # Problem construction (core-independent slow paths)
    # ------------------------------------------------------------------
    def _ensure_var(self, var: int) -> None:
        while self.num_vars <= var:
            self.new_var()

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT.

        May be called between :meth:`solve` calls (the solver first
        backtracks to decision level 0).
        """
        if not self._ok:
            return False
        if self._elim_count:
            # Re-introducing an eliminated variable invalidates its
            # elimination: restore its removed clauses (and, by
            # cascade, those of any eliminated variable they mention)
            # before this clause joins the database.
            lits = list(lits)
            self._restore_eliminated(lits)
            if not self._ok:
                return False
        if self._proof is not None:
            # Log the *original* clause — the checker's trust base is
            # exactly what the caller asserted, not the level-0
            # normalised residue (dropped literals are re-derived by
            # unit propagation from the logged unit clauses).
            lits = list(lits)
            self._proof.input(lits)
        return self._add_clause_raw(lits)

    def _add_clause_raw(self, lits: Iterable[int]) -> bool:
        """The normalising clause loader, *without* proof logging —
        internal callers (bulk-load delegation) log the original
        clause themselves and must not log its normalised residue as
        a second input."""
        if not self._ok:
            return False
        self._cancel_until(0)
        seen: Dict[int, int] = {}
        clause: List[int] = []
        dropped = False
        for lit in lits:
            self._ensure_var(lit_var(lit))
            if self._value(lit) is True:
                return True  # satisfied at level 0
            if self._value(lit) is False:
                dropped = True
                continue  # falsified at level 0: drop literal
            if lit in seen:
                continue
            if lit_not(lit) in seen:
                return True  # tautology
            seen[lit] = 1
            clause.append(lit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0]):
                self._ok = False
                return False
            self._ok = self._propagate() is None
            return self._ok
        if dropped and self._proof is not None:
            # The stored residue differs from the logged input by the
            # stripped level-0-false literals.  Log it as a lemma (it
            # is RUP: the dropped literals' negations are derivable
            # units) so later deletions of the *stored* form — the
            # inprocessing pass emits those — match a live instance in
            # the checker's bookkeeping.
            self._proof.learnt(clause)
        self._store_problem_clause(clause)
        return True

    def add_cnf(self, cnf: CNF) -> bool:
        """Load all clauses of a :class:`~repro.sat.cnf.CNF`.

        Pre-validated clauses — at least two literals over pairwise
        distinct variables (no duplicate literals, no tautologies) —
        are routed through the :meth:`add_clauses_bulk` fast path in
        maximal runs; anything else (units, empties, duplicates,
        tautologies) takes the normalising :meth:`add_clause` slow
        path at its original stream position, so the resulting solver
        state is element-wise identical to loading every clause
        individually.
        """
        if cnf.num_vars:
            self._ensure_var(cnf.num_vars - 1)
        batch: List[List[int]] = []
        for clause in cnf.clauses:
            if len(clause) >= 2 and \
                    len({lit >> 1 for lit in clause}) == len(clause):
                # Bulk-eligible; the bulk loader re-checks level-0
                # assignments per clause, so interleaved units are
                # still normalised correctly.
                batch.append(list(clause))
                continue
            if batch:
                if not self.add_clauses_bulk(batch):
                    return False
                batch = []
            if not self.add_clause(clause):
                return False
        if batch:
            return self.add_clauses_bulk(batch)
        return True

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> str:
        """Solve under ``assumptions``; returns ``sat``/``unsat``/``unknown``.

        ``conflict_budget`` contract (shared verbatim by every caller
        that forwards the knob — BMC, k-induction, the recurrence and
        QBF engines, and ``SweepConfig.conflict_budget``):

        * ``None`` — unlimited: search until conclusive;
        * ``n >= 0`` — explore at most ``n`` conflicts, then give up
          with ``unknown`` (``0`` therefore aborts at the *first*
          conflict; conflict-free instances still conclude);
        * negative — a :class:`ValueError` (it used to silently mean
          "unlimited", which callers confused with ``0``).

        ``budget`` is a cooperative :class:`repro.resilience.Budget`
        checked at call entry and then once per conflict (and
        periodically per decision, for conflict-free instances): on a
        wall-clock deadline or pool exhaustion the call returns
        ``unknown`` with the structured reason in
        :attr:`last_exhaustion`; a cancelled budget raises
        :class:`~repro.resilience.Cancelled`.  On ``sat``,
        :attr:`model` holds a satisfying assignment indexed by
        variable; on any other result it is cleared to the empty list
        (it previously retained the prior SAT call's assignment, so an
        incremental SAT-then-UNSAT sequence silently exposed a stale
        model), and :meth:`value` raises ``IndexError``.

        Statistic counters accumulate across calls (lifetime totals);
        the per-call deltas land in :attr:`last_call_stats` and are
        published to the active :mod:`repro.obs` registry under the
        ``sat.*`` counters and the ``sat.solve`` span.
        """
        if conflict_budget is not None and conflict_budget < 0:
            raise ValueError("conflict_budget must be None or >= 0, "
                             f"got {conflict_budget}")
        self.model = []  # never expose a stale assignment (see above)
        before = self.stats()
        profile_before = dict(self._profile) \
            if self._profile is not None else None
        reg = obs.get_registry()
        with reg.span("sat.solve") as solve_span:
            result = self._solve_governed(assumptions, conflict_budget,
                                          budget)
        # Delta over whatever keys exist *now*: a counter that first
        # appeared mid-call (the lazily-created simplify_* family) has
        # no "before" entry — its baseline is zero, not a KeyError.
        delta = {key: total - before.get(key, 0)
                 for key, total in self.stats().items()}
        self.last_call_stats = delta
        reg.counter("sat.solve_calls")
        reg.counter(f"sat.result.{result}")
        for key, value in delta.items():
            if value and not key.startswith("simplify_"):
                # simplify_* deltas are published by the simplifier
                # itself under the simplify.* counter namespace.
                reg.counter(f"sat.{key}", value)
        if profile_before is not None:
            for phase in PROFILE_PHASES:
                ns = int((self._profile[phase]
                          - profile_before[phase]) * 1e9)
                if ns:
                    reg.counter(f"sat.{phase}_ns", ns)
        if _metrics._enabled:
            # One module-attribute load when disabled (the line
            # above); everything below runs only under REPRO_METRICS.
            _metrics.observe("sat.solve_seconds", solve_span.seconds)
            _metrics.gauge_set("sat.vars", self.num_vars)
            _metrics.mark("sat.solves")
            conflicts = delta.get("conflicts", 0)
            if conflicts:
                _metrics.mark("sat.conflicts", conflicts)
            _metrics.record_query(
                engine=_metrics.current_context().get("engine", "sat"),
                verdict=result,
                conflicts=conflicts,
                propagations=delta.get("propagations", 0),
                decisions=delta.get("decisions", 0),
                seconds=solve_span.seconds,
                budget_charged=conflicts if budget is not None else 0,
                exhausted=self.last_exhaustion,
            )
        return result

    def _solve_governed(
        self,
        assumptions: Sequence[int],
        conflict_budget: Optional[int],
        budget: Optional[Budget],
    ) -> str:
        """Fault-injection and budget gatekeeping around the search."""
        self.last_exhaustion = None
        try:
            fault = _faults.on_solve()
        except EngineFailure:
            obs.counter("faults.crash")
            raise
        if fault is not None:
            obs.counter(f"faults.{fault}")
            if fault == _faults.FAULT_TIMEOUT:
                # Behave exactly like a blown wall-clock deadline.
                self.last_exhaustion = EXHAUSTED_DEADLINE
            if fault != _faults.FAULT_CORRUPT_MODEL:
                return UNKNOWN
            # corrupt_model runs the search normally and falsifies
            # the *answer* afterwards (see below).
        if budget is not None:
            if budget.cancelled:
                raise Cancelled(budget_name=budget.name)
            reason = budget.exhausted()
            if reason is not None:
                self.last_exhaustion = reason
                return UNKNOWN
            budget.charge_query()
        result = self._search(assumptions, conflict_budget, budget)
        if fault == _faults.FAULT_CORRUPT_MODEL and result == SAT \
                and self.model:
            # The scripted decode/transport fault: the search was
            # sound, but the reported model carries one flipped bit.
            # Only witness replay (repro.cert) can notice.
            self.model[0] = not self.model[0]
        return result

    def _budget_stop(self, budget: Budget) -> Optional[str]:
        """Cooperative in-search budget check; raises on cancellation,
        returns the exhaustion reason (None to keep searching)."""
        if budget.cancelled:
            self._cancel_until(0)
            raise Cancelled(budget_name=budget.name)
        reason = budget.exhausted()
        if reason is not None:
            self._cancel_until(0)
            self.last_exhaustion = reason
        return reason

    def _search(
        self,
        assumptions: Sequence[int],
        conflict_budget: Optional[int],
        budget: Optional[Budget] = None,
    ) -> str:
        """The CDCL control loop, shared verbatim by both cores.

        Only data-layout primitives (``_propagate``, ``_analyze``,
        ``_pick_branch``, ...) are core-specific; keeping the loop
        itself in one place is what makes the dual-path oracle's
        exact-equivalence contract (identical decisions, conflicts,
        models, trails) hold by construction.
        """
        if self._use_simplify and assumptions:
            # Assumption variables are part of the caller's interface:
            # freeze them against elimination, and un-eliminate any
            # that a previous call's inprocessing already removed
            # (an assumption over a clause-free variable would pin it
            # unsoundly).
            assumptions = list(assumptions)
            frozen = self._frozen
            for lit in assumptions:
                frozen.add(lit >> 1)
            if self._elim_count:
                self._restore_eliminated(assumptions)
        if not self._ok:
            self._conclude_unsat(())
            return UNSAT
        self._cancel_until(0)
        propagate = self._propagate
        analyze = self._analyze
        pick_branch = self._pick_branch
        if self._profile is not None:
            acc = self._profile
            propagate = _timed(propagate, acc, "propagate")
            analyze = _timed(analyze, acc, "analyze")
            pick_branch = _timed(pick_branch, acc, "decide")
        fault_plan = _faults.active_plan()
        if propagate() is not None:
            self._ok = False
            self._conclude_unsat(())
            return UNSAT
        if self._use_simplify and conflict_budget is None \
                and budget is None \
                and self.conflicts >= self._simp_next:
            # Solve-entry round: SatELite-style preprocessing on a
            # solver's first call (Tseitin gate variables resolve
            # away), periodic pickup for long-lived incremental
            # callers.  Same preconditions as the restart-boundary
            # round — level 0, propagation at fixpoint — and
            # assumption variables were frozen above.  Budgeted calls
            # skip it: a round can refute outright, and the governance
            # contract (budget 0 + a conflicted instance = UNKNOWN,
            # exhaustion accounted to search effort) must not change
            # with the simplifier on.
            if not self._run_simplify():
                self._ok = False
                self._conclude_unsat(())
                return UNSAT
        assumptions = list(assumptions)
        budget_start = self.conflicts
        restart_idx = 1
        limit = 128 * self._luby(restart_idx)
        conflicts_here = 0
        max_learnts = max(1000, 2 * len(self._clauses))
        while True:
            conflict = propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if self._decision_level() == 0:
                    self._ok = False
                    # A level-0 conflict refutes the formula outright
                    # (no assumption decision is involved).
                    self._conclude_unsat(())
                    return UNSAT
                learnt, back_level = analyze(conflict)
                if fault_plan is not None \
                        and fault_plan.next_learnt(learnt):
                    # Scripted soundness fault: the corrupted clause
                    # is recorded, proof-logged and *used* exactly as
                    # if conflict analysis had miscompiled it.
                    obs.counter("faults.corrupt_learnt")
                # Backtracking may unwind assumption levels; the decision
                # loop below re-applies them (and reports UNSAT if one
                # has become falsified by learned clauses).
                self._cancel_until(back_level)
                self._record_learnt(learnt)
                self._decay_activities()
                if (self.conflicts & 2047) == 0:
                    # Heartbeat every 2048 conflicts: one mask test on
                    # the hot path, a progress record only when due.
                    obs.progress("sat", conflicts=self.conflicts,
                                 decisions=self.decisions,
                                 learnts=len(self._learnts))
                if budget is not None:
                    budget.charge_conflicts()
                    if self._budget_stop(budget) is not None:
                        return UNKNOWN
                if conflict_budget is not None and \
                        self.conflicts - budget_start >= conflict_budget:
                    self._cancel_until(0)
                    self.last_exhaustion = EXHAUSTED_CONFLICTS
                    return UNKNOWN
                if conflicts_here >= limit:
                    self.restarts += 1
                    restart_idx += 1
                    limit = 128 * self._luby(restart_idx)
                    conflicts_here = 0
                    self._cancel_until(0)
                    if self._use_simplify \
                            and self.conflicts >= self._simp_next:
                        # Inprocessing at the restart boundary (level
                        # 0, propagation at fixpoint) — shared by both
                        # cores, so the dual-path oracle's equality
                        # contract covers the simplifier too.
                        if not self._run_simplify():
                            self._ok = False
                            self._conclude_unsat(())
                            return UNSAT
                        max_learnts = max(1000, 2 * len(self._clauses))
                if len(self._learnts) >= max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
                continue
            # No conflict: extend with assumption or decision.
            if self._decision_level() < len(assumptions):
                lit = assumptions[self._decision_level()]
                self._ensure_var(lit_var(lit))
                val = self._value(lit)
                if val is True:
                    # Already implied: open an empty decision level so
                    # level bookkeeping still tracks assumption count.
                    self._trail_lim.append(len(self._trail))
                    continue
                if val is False:
                    # Refuted *under these assumptions*: everything on
                    # the trail is unit-propagation-derivable from the
                    # clause DB plus the assumption literals, so the
                    # checker re-derives this conflict from the logged
                    # clauses and the recorded assumptions alone.
                    self._conclude_unsat(tuple(assumptions))
                    return UNSAT
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit)
                continue
            lit = pick_branch()
            if lit is None:
                self.model = [bool(v) for v in self._assign]
                if self._elim_stack:
                    # Eliminated variables carry arbitrary search
                    # values (they occur in no clause); overwrite them
                    # with reconstructed ones so callers — and witness
                    # replay — see a model of the *original* formula.
                    self._extend_model()
                self._cancel_until(0)
                return SAT
            self.decisions += 1
            # Deadline/cancellation probe for conflict-free instances
            # (pure propagation never reaches the conflict-side check).
            if budget is not None and (self.decisions & 255) == 0 \
                    and self._budget_stop(budget) is not None:
                return UNKNOWN
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit)

    def value(self, var: int) -> bool:
        """Value of ``var`` in the last model.

        Only meaningful after a :data:`SAT` result; any other result
        clears the model, so this raises ``IndexError``.
        """
        return self.model[var]

    # ------------------------------------------------------------------
    # Shared internals
    # ------------------------------------------------------------------
    def _conclude_unsat(self, assumptions: Tuple[int, ...]) -> None:
        """Close the proof on an UNSAT return (no-op when logging is
        off).  Every UNSAT exit of ``_search`` calls this with the
        assumption literals the refutation is conditional on (the
        empty tuple for an unconditional one)."""
        if self._proof is not None:
            self._proof.conclude_unsat(assumptions)

    # ------------------------------------------------------------------
    # Inprocessing support (repro.sat.simplify drives the per-core
    # _simp_* primitives; everything here is core-independent)
    # ------------------------------------------------------------------
    def freeze(self, var: int) -> None:
        """Protect ``var`` from variable elimination.

        Assumption variables are frozen automatically at every
        :meth:`solve`; call this for interface variables that must
        stay addressable (e.g. literals a later call will assume or
        add clauses over) without paying the restore path.
        """
        self._frozen.add(var)

    def _simp_count(self, key: str, n: int = 1) -> None:
        counters = self._simp_counters
        counters[key] = counters.get(key, 0) + n

    def _run_simplify(self) -> bool:
        """One scheduled inprocessing round; False means the round
        refuted the formula.  Doubles the conflict gap to the next
        round (cheap instances simplify once, hard ones keep going)."""
        ok = simplify_round(self)
        self._simp_next = self.conflicts + self._simp_interval
        self._simp_interval = min(self._simp_interval * 2, 1 << 20)
        if _debug_checks:
            self._debug_check_watches()
        return ok

    def _restore_eliminated(self, lits: Iterable[int]) -> None:
        """Un-eliminate every eliminated variable in ``lits`` and
        re-add its removed clauses (cascading: restored clauses may
        mention further eliminated variables, so the whole closure is
        un-marked *before* any clause is re-added).

        The restored variables' model-reconstruction records are
        dropped — the live search values must stand for them now.
        Re-added clauses re-enter through :meth:`add_clause`, which
        re-logs them as inputs (sound: they were original axioms).
        """
        elim = self._elim
        batch: List[int] = []
        seen = set()
        work = [lit >> 1 for lit in lits]
        while work:
            var = work.pop()
            if var in seen or var >= len(elim) or not elim[var]:
                continue
            seen.add(var)
            batch.append(var)
            for clause in self._elim_clauses[var]:
                for lit in clause:
                    work.append(lit >> 1)
        if not batch:
            return
        for var in batch:
            elim[var] = 0
        self._elim_count -= len(batch)
        self._elim_stack = [record for record in self._elim_stack
                            if record[0] not in seen]
        restored: List[List[int]] = []
        for var in batch:
            restored.extend(self._elim_clauses.pop(var))
        self._simp_count("simplify_restored_vars", len(batch))
        obs.counter("simplify.restored_vars", len(batch))
        for clause in restored:
            if not self.add_clause(clause):
                return

    def _restore_for_bulk(self, clauses: Iterable[List[int]]) \
            -> List[List[int]]:
        """Bulk-path guard: materialize the clause stream and restore
        any eliminated variable it re-introduces (template stamping
        hits this when a new frame references eliminated state
        literals).  Only runs when eliminations exist, so the common
        bulk path stays zero-overhead."""
        materialized = [list(lits) for lits in clauses]
        elim = self._elim
        for lits in materialized:
            for lit in lits:
                var = lit >> 1
                if var < len(elim) and elim[var]:
                    self._restore_eliminated(lits)
                    break
            if not self._ok:
                break
        return materialized

    def _extend_model(self) -> None:
        """Reconstruct model values for eliminated variables by
        walking the elimination stack backward (MiniSat extendModel):
        the unit marker fires first and pre-satisfies the un-stored
        polarity side; each stored clause then sets its designated
        literal true iff its remaining literals are all false in the
        model.  Records of restored (no-longer-eliminated) variables
        are skipped — their live search values stand."""
        model = self.model
        elim = self._elim
        for var, lits in reversed(self._elim_stack):
            if not elim[var]:
                continue
            for lit in lits[1:]:
                if model[lit >> 1] != (lit & 1):  # literal is true
                    break
            else:
                designated = lits[0]
                model[designated >> 1] = (designated & 1) == 0

    def _debug_check_watches(self) -> None:
        """Core-specific watcher-integrity sweep (debug builds)."""
        raise NotImplementedError

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _bump_var(self, var: int) -> None:
        act = self._activity
        act[var] += self._var_inc
        if act[var] > 1e100:
            for v in range(self.num_vars):
                act[v] *= 1e-100
            self._var_inc *= 1e-100
            # Rescaling invalidates every key already sitting in the
            # lazy-deletion heap (they carry the un-rescaled
            # magnitudes, so _pick_branch would pop in stale priority
            # order for the rest of the run).  Rebuild the heap from
            # the *current* activities of its member variables.
            heap = [(-act[v], v)
                    for v in sorted({v for _, v in self._heap})]
            heapq.heapify(heap)
            self._heap = heap
        heapq.heappush(self._heap, (-act[var], var))

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= 0.999

    @staticmethod
    def _luby(i: int) -> int:
        """The Luby restart sequence 1,1,2,1,1,2,4,... (1-based index).

        MiniSat's formulation: find the finite subsequence containing
        index ``i`` and its position within it.
        """
        if i < 1:
            raise ValueError("the Luby sequence is 1-based")
        x = i - 1
        size, seq = 1, 0
        while size < x + 1:
            seq += 1
            size = 2 * size + 1
        while size - 1 != x:
            size = (size - 1) >> 1
            seq -= 1
            x %= size
        return 1 << seq

    # ------------------------------------------------------------------
    # Introspection (stable across cores; tests and the oracle use
    # these instead of poking core-specific internals)
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """False once the formula is known trivially UNSAT."""
        return self._ok

    @property
    def proof(self) -> Optional[ProofLog]:
        """The DRAT-style proof event log, or None when proof logging
        was off at construction (see :func:`use_proofs`)."""
        return self._proof

    def trail_lits(self) -> List[int]:
        """The current assignment trail, as literals in enqueue order."""
        return list(self._trail)

    def clause_lits(self) -> List[Tuple[int, ...]]:
        """Problem clauses in insertion order (current literal order)."""
        raise NotImplementedError

    def learnt_lits(self) -> List[Tuple[int, ...]]:
        """Learnt clauses currently in the database."""
        raise NotImplementedError

    def assignment(self) -> List[Optional[bool]]:
        """Per-variable values (None = unassigned)."""
        raise NotImplementedError


class LegacySolver(Solver):
    """The original object-based core: one ``_Clause`` per clause,
    watcher lists of ``(clause, blocker)`` pairs.

    Kept as the reference implementation behind the dual-path oracle
    (see the module docstring); construct it directly or via
    ``use_flat(False)``.
    """

    def __init__(self) -> None:
        super().__init__()
        self._clauses: List[_Clause] = []
        self._learnts: List[_Clause] = []
        #: Watcher lists, indexed by falsified literal; entries are
        #: ``(clause, blocker)`` where ``blocker`` is some literal of
        #: the clause (usually the other watch) whose truth proves the
        #: clause satisfied without touching it.
        self._watches: List[List[tuple]] = []
        self._assign: List[Optional[bool]] = []
        self._level: List[int] = []
        self._reason: List[Optional[_Clause]] = []
        self._polarity: List[bool] = []

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        var = self.num_vars
        self.num_vars += 1
        self._watches.append([])
        self._watches.append([])
        self._assign.append(None)
        self._level.append(0)
        self._reason.append(None)
        self._polarity.append(False)
        self._activity.append(0.0)
        heapq.heappush(self._heap, (0.0, var))
        return var

    def new_vars(self, n: int) -> int:
        """Allocate ``n`` fresh variables at once; returns the first.

        State-identical to ``n`` :meth:`new_var` calls (same side
        tables, same heap entries in the same order) — the template
        stamping fast path uses it to skip per-variable call overhead.
        """
        base = self.num_vars
        if n <= 0:
            return base
        self.num_vars = base + n
        self._watches.extend([] for _ in range(2 * n))
        self._assign.extend([None] * n)
        self._level.extend([0] * n)
        self._reason.extend([None] * n)
        self._polarity.extend([False] * n)
        self._activity.extend([0.0] * n)
        heap = self._heap
        for var in range(base, base + n):
            heapq.heappush(heap, (0.0, var))
        return base

    def _store_problem_clause(self, clause: List[int]) -> None:
        c = _Clause(clause, learnt=False)
        self._clauses.append(c)
        self._attach(c)

    def add_clauses_bulk(self, clauses: Iterable[List[int]]) -> bool:
        """Bulk-load pre-validated clauses, skipping normalisation.

        The fast path behind template stamping
        (:mod:`repro.sat.template`).  Caller contract, per clause:

        * at least two literals, over already-allocated variables;
        * pairwise-distinct variables (no duplicate literals, no
          tautologies);
        * the solver takes ownership of each literal list (watched-
          literal reordering mutates it in place — never reuse one).

        A clause whose variables are all unassigned at decision level
        0 is constructed and watch-attached directly; a clause touching
        a level-0-assigned variable gets the satisfied-clause/
        falsified-literal normalisation of :meth:`add_clause` applied
        inline (the distinct-variables contract rules out the
        duplicate/tautology cases, and the rare empty/unit outcomes
        are delegated back to :meth:`add_clause`) — this keeps the
        resulting clause database identical to adding every clause
        individually.  Returns False if the formula became trivially
        UNSAT.
        """
        if not self._ok:
            return False
        if self._elim_count:
            clauses = self._restore_for_bulk(clauses)
            if not self._ok:
                return False
        self._cancel_until(0)
        assign = self._assign
        watches = self._watches
        out = self._clauses
        append = out.append
        slow = self._add_clause_raw
        proof = self._proof
        for lits in clauses:
            if proof is not None:
                # Original literals, before any normalisation or
                # watched-literal reordering mutates the list.
                proof.input(lits)
            for lit in lits:
                if assign[lit >> 1] is not None:
                    break
            else:
                clause = _Clause(lits, False)
                append(clause)
                watches[lits[0] ^ 1].append((clause, lits[1]))
                watches[lits[1] ^ 1].append((clause, lits[0]))
                continue
            # Level-0 normalisation, inline.  ``v != (lit & 1)`` is
            # "literal true" (bool compares equal to int): keep
            # unassigned literals, drop falsified ones, skip the
            # clause on a satisfied one — exactly add_clause's rules
            # minus the duplicate/tautology checks the caller contract
            # makes unreachable.
            keep = []
            kappend = keep.append
            sat = False
            for lit in lits:
                v = assign[lit >> 1]
                if v is None:
                    kappend(lit)
                elif v != (lit & 1):
                    sat = True
                    break
            if sat:
                continue
            if len(keep) >= 2:
                if proof is not None and len(keep) < len(lits):
                    # Stored residue differs from the logged input
                    # (level-0-false literals stripped): log it as a
                    # RUP lemma so a later deletion of the stored form
                    # matches a live instance (see _add_clause_raw).
                    proof.learnt(keep)
                clause = _Clause(keep, False)
                append(clause)
                watches[keep[0] ^ 1].append((clause, keep[1]))
                watches[keep[1] ^ 1].append((clause, keep[0]))
            elif not slow(keep):  # empty or unit: rare, delegate
                return False
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> Optional[bool]:
        v = self._assign[lit_var(lit)]
        if v is None:
            return None
        return (not v) if lit_sign(lit) else v

    def _attach(self, clause: _Clause) -> None:
        lits = clause.lits
        self._watches[lits[0] ^ 1].append((clause, lits[1]))
        self._watches[lits[1] ^ 1].append((clause, lits[0]))

    def _enqueue(self, lit: int, reason: Optional[_Clause] = None) -> bool:
        val = self._value(lit)
        if val is not None:
            return val
        var = lit_var(lit)
        self._assign[var] = not lit_sign(lit)
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._polarity[var] = self._assign[var]
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            watchers = self._watches[lit]
            assign = self._assign
            i = 0
            j = 0
            n = len(watchers)
            false_lit = lit ^ 1
            while i < n:
                clause, blocker = watchers[i]
                i += 1
                # Blocker fast path: some literal of the clause is
                # already true, so the clause is satisfied and need
                # not be loaded at all.  (True == 1, so the comparison
                # is one int op; None compares unequal to both.)
                if assign[blocker >> 1] == (blocker & 1) ^ 1:
                    watchers[j] = (clause, blocker)
                    j += 1
                    continue
                lits = clause.lits
                # Ensure the falsified literal is in slot 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value(first) is True:
                    watchers[j] = (clause, first)
                    j += 1
                    continue
                # Search for a new watch.
                found = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) is not False:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[lits[1] ^ 1].append((clause, first))
                        found = True
                        break
                if found:
                    continue
                # Unit or conflicting.
                watchers[j] = (clause, first)
                j += 1
                if self._value(first) is False:
                    # Conflict: keep remaining watchers, reset queue.
                    while i < n:
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    del watchers[j:]
                    self._qhead = len(self._trail)
                    return clause
                self._enqueue(first, clause)
            del watchers[j:]
        return None

    def _analyze(self, conflict: _Clause) -> tuple:
        learnt: List[int] = [0]  # slot 0 for the asserting literal
        seen = [False] * self.num_vars
        counter = 0
        lit = None
        reason: Optional[_Clause] = conflict
        idx = len(self._trail) - 1
        while True:
            assert reason is not None
            self._bump_clause(reason)
            start = 0 if lit is None else 1
            # After the first iteration lits[0] is the enqueued literal.
            lits = reason.lits
            if lit is not None and lits[0] != lit:
                # Reason clause stores the implied literal first; if not,
                # locate it and skip it.
                lits = [lit] + [x for x in lits if x != lit]
            for q in lits[start:]:
                var = lit_var(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= self._decision_level():
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[lit_var(self._trail[idx])]:
                idx -= 1
            lit = self._trail[idx]
            idx -= 1
            var = lit_var(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[var]
        learnt[0] = lit_not(lit)
        # Clause minimization: drop literals implied by the rest.
        learnt = self._minimize(learnt, seen)
        if len(learnt) == 1:
            back_level = 0
        else:
            # Find the literal with the second-highest level.
            max_i = 1
            for i in range(2, len(learnt)):
                if self._level[lit_var(learnt[i])] > \
                        self._level[lit_var(learnt[max_i])]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = self._level[lit_var(learnt[1])]
        return learnt, back_level

    def _minimize(self, learnt: List[int], seen: List[bool]) -> List[int]:
        for lit in learnt[1:]:
            seen[lit_var(lit)] = True
        out = [learnt[0]]
        for lit in learnt[1:]:
            reason = self._reason[lit_var(lit)]
            if reason is None:
                out.append(lit)
                continue
            redundant = all(
                seen[lit_var(q)] or self._level[lit_var(q)] == 0
                for q in reason.lits if lit_var(q) != lit_var(lit)
            )
            if not redundant:
                out.append(lit)
        for lit in learnt[1:]:
            seen[lit_var(lit)] = False
        return out

    def _record_learnt(self, learnt: List[int]) -> None:
        if self._proof is not None:
            # Post-minimization literals (minimization preserves RUP);
            # unit learnts are logged too — they never enter _learnts,
            # only the level-0 trail.
            self._proof.learnt(learnt)
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        clause = _Clause(learnt, learnt=True)
        clause.activity = self._cla_inc
        self._learnts.append(clause)
        self._attach(clause)
        self._enqueue(learnt[0], clause)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        for lit in reversed(self._trail[bound:]):
            var = lit_var(lit)
            self._assign[var] = None
            self._reason[var] = None
            heapq.heappush(self._heap, (-self._activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _pick_branch(self) -> Optional[int]:
        while self._heap:
            _, var = heapq.heappop(self._heap)
            if self._assign[var] is None:
                return (var << 1) | (0 if self._polarity[var] else 1)
        for var in range(self.num_vars):
            if self._assign[var] is None:
                return (var << 1) | (0 if self._polarity[var] else 1)
        return None

    def _bump_clause(self, clause: _Clause) -> None:
        if clause.learnt:
            clause.activity += self._cla_inc

    def _reduce_db(self) -> None:
        # A learnt clause is *locked* (must be kept) while it is the
        # reason of its asserting literal's variable; reasons always
        # store that literal in slot 0, so lock detection is one table
        # probe per clause — no scan over all variables, no id()-keyed
        # side set.
        learnts = self._learnts
        learnts.sort(key=lambda c: c.activity)
        keep_from = len(learnts) // 2
        reason = self._reason
        removed = []
        kept = []
        for i, clause in enumerate(learnts):
            lits = clause.lits
            if i < keep_from and len(lits) > 2 \
                    and reason[lits[0] >> 1] is not clause:
                removed.append(clause)
            else:
                kept.append(clause)
        proof = self._proof
        for clause in removed:
            if proof is not None:
                proof.delete(clause.lits)
            self._detach(clause)
        self._learnts = kept
        if _debug_checks:
            self._debug_check_watches()

    def _detach(self, clause: _Clause) -> None:
        for lit in (clause.lits[0], clause.lits[1]):
            watchers = self._watches[lit ^ 1]
            for idx in range(len(watchers)):
                if watchers[idx][0] is clause:
                    del watchers[idx]
                    break
            else:
                # A detach miss means the watcher lists no longer
                # agree with the clause's watched literals — real
                # corruption that a silent pass would mask.
                if _debug_checks:
                    raise RuntimeError(
                        "watcher corruption: clause "
                        f"{tuple(clause.lits)} missing from the watch "
                        f"list of literal {lit ^ 1}")

    # ------------------------------------------------------------------
    # Inprocessing primitives (driven by repro.sat.simplify)
    # ------------------------------------------------------------------
    def _simp_lits(self, clause: _Clause) -> List[int]:
        return list(clause.lits)

    def _simp_shrink(self, clause: _Clause, new_lits: List[int]) -> None:
        # Detach on the OLD watched literals before mutating, then
        # re-attach on the new first two — a strengthened clause's
        # watchers are rebuilt, never inherited (inheriting them would
        # leave the watch lists pointing at literals the clause no
        # longer contains; see _debug_check_watches).
        self._detach(clause)
        clause.lits = list(new_lits)
        self._attach(clause)

    def _simp_remove(self, clause: _Clause) -> None:
        self._detach(clause)

    def _simp_gc(self) -> None:
        pass  # no arena: removed _Clause objects are plain garbage

    def _simp_clear_reasons(self) -> None:
        reason = self._reason
        for lit in self._trail:
            reason[lit >> 1] = None

    def _debug_check_watches(self) -> None:
        """Assert every watcher entry is consistent: the watched
        literal sits in its clause's first two slots and the blocker
        occurs in the clause.  Debug-only (full sweep)."""
        for idx, watchers in enumerate(self._watches):
            lit = idx ^ 1
            for clause, blocker in watchers:
                lits = clause.lits
                if lit not in lits[:2] or blocker not in lits:
                    raise RuntimeError(
                        "watcher corruption: literal "
                        f"{lit} watches clause {tuple(lits)} "
                        f"(blocker {blocker})")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def clause_lits(self) -> List[Tuple[int, ...]]:
        return [tuple(c.lits) for c in self._clauses]

    def learnt_lits(self) -> List[Tuple[int, ...]]:
        return [tuple(c.lits) for c in self._learnts]

    def assignment(self) -> List[Optional[bool]]:
        return list(self._assign)


# The flat core lives in its own module; imported last so it can extend
# the Solver base defined above (the facade dispatches lazily, so this
# import is only a convenience re-export).
from .flat import FlatSolver  # noqa: E402  (circular-safe tail import)
