"""Tseitin encoding of netlist logic into CNF.

:class:`CnfSink` abstracts over the two consumers (an incremental
:class:`~repro.sat.solver.Solver` or a standalone
:class:`~repro.sat.cnf.CNF`), and :func:`encode_frame` encodes one
combinational time-frame of a netlist given literals for its leaves
(inputs and state elements).  The unroller (:mod:`repro.unroll`) chains
frames; the COM engine encodes single frames for SAT sweeping.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Union

from ..netlist import GateType, Netlist, topological_order
from .cnf import CNF, lit_not, pos
from .solver import Solver


class CnfSink:
    """Uniform clause sink over a Solver or a CNF container."""

    def __init__(self, backend: Union[Solver, CNF]) -> None:
        self.backend = backend
        self._true_lit: Optional[int] = None

    def new_var(self) -> int:
        """Allocate a variable in the backend."""
        return self.backend.new_var()

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause to the backend."""
        self.backend.add_clause(lits)

    @property
    def true_lit(self) -> int:
        """A literal constrained to be true (allocated lazily)."""
        if self._true_lit is None:
            var = self.new_var()
            self._true_lit = pos(var)
            self.add_clause([self._true_lit])
        return self._true_lit

    @property
    def false_lit(self) -> int:
        """A literal constrained to be false."""
        return lit_not(self.true_lit)


def encode_and(sink: CnfSink, out: int, fanins: Sequence[int]) -> None:
    """Clauses for ``out <-> AND(fanins)``."""
    for f in fanins:
        sink.add_clause([lit_not(out), f])
    sink.add_clause([out] + [lit_not(f) for f in fanins])


def encode_or(sink: CnfSink, out: int, fanins: Sequence[int]) -> None:
    """Clauses for ``out <-> OR(fanins)``."""
    for f in fanins:
        sink.add_clause([out, lit_not(f)])
    sink.add_clause([lit_not(out)] + list(fanins))


def encode_xor2(sink: CnfSink, out: int, a: int, b: int) -> None:
    """Clauses for ``out <-> a XOR b``."""
    sink.add_clause([lit_not(out), a, b])
    sink.add_clause([lit_not(out), lit_not(a), lit_not(b)])
    sink.add_clause([out, lit_not(a), b])
    sink.add_clause([out, a, lit_not(b)])


def encode_mux(sink: CnfSink, out: int, sel: int, then: int,
               else_: int) -> None:
    """Clauses for ``out <-> (sel ? then : else_)``."""
    sink.add_clause([lit_not(sel), lit_not(then), out])
    sink.add_clause([lit_not(sel), then, lit_not(out)])
    sink.add_clause([sel, lit_not(else_), out])
    sink.add_clause([sel, else_, lit_not(out)])


def encode_equiv(sink: CnfSink, a: int, b: int) -> None:
    """Clauses for ``a <-> b``."""
    sink.add_clause([lit_not(a), b])
    sink.add_clause([a, lit_not(b)])


def encode_frame(
    net: Netlist,
    sink: CnfSink,
    leaves: Dict[int, int],
    roots: Optional[Sequence[int]] = None,
) -> Dict[int, int]:
    """Encode one combinational frame of ``net``.

    ``leaves`` maps every primary input and state element (that the
    frame may reach) to a literal; missing leaves are allocated fresh
    variables.  Returns the vertex-to-literal map for all encoded
    vertices.  Constant-0 maps to a dedicated false literal.
    """
    lits: Dict[int, int] = dict(leaves)
    order = topological_order(net, roots)
    for vid in order:
        if vid in lits:
            continue
        gate = net.gate(vid)
        t = gate.type
        if t is GateType.INPUT or gate.is_state:
            lits[vid] = pos(sink.new_var())
            continue
        if t is GateType.CONST0:
            lits[vid] = sink.false_lit
            continue
        f = [lits[x] for x in gate.fanins]
        if t is GateType.BUF:
            lits[vid] = f[0]
            continue
        if t is GateType.NOT:
            lits[vid] = lit_not(f[0])
            continue
        out = pos(sink.new_var())
        if t is GateType.AND:
            encode_and(sink, out, f)
        elif t is GateType.NAND:
            encode_and(sink, lit_not(out), f)
        elif t is GateType.OR:
            encode_or(sink, out, f)
        elif t is GateType.NOR:
            encode_or(sink, lit_not(out), f)
        elif t in (GateType.XOR, GateType.XNOR):
            acc = f[0]
            for b in f[1:-1]:
                mid = pos(sink.new_var())
                encode_xor2(sink, mid, acc, b)
                acc = mid
            final = out if t is GateType.XOR else lit_not(out)
            if len(f) == 1:
                encode_equiv(sink, final, acc)
            else:
                encode_xor2(sink, final, acc, f[-1])
        elif t is GateType.MUX:
            encode_mux(sink, out, f[0], f[1], f[2])
        else:  # pragma: no cover - exhaustive over combinational types
            raise ValueError(f"cannot encode gate type {t}")
        lits[vid] = out
    return lits


def encode_init_state(
    net: Netlist, sink: CnfSink, state_lits: Dict[int, int]
) -> Dict[int, int]:
    """Constrain ``state_lits`` to the initial states ``Z``.

    Register initial-value cones are encoded combinationally (they may
    contain primary inputs — nondeterministic initial values); latches
    are constrained to 0.  Returns the literal map of the init cone.
    """
    init_roots = []
    reg_inits = {}
    for vid in net.state_elements:
        gate = net.gate(vid)
        if gate.type is GateType.REGISTER:
            reg_inits[vid] = gate.fanins[1]
            init_roots.append(gate.fanins[1])
    lits = encode_frame(net, sink, {}, roots=init_roots) if init_roots else {}
    for vid, lit in state_lits.items():
        gate = net.gate(vid)
        if gate.type is GateType.REGISTER:
            encode_equiv(sink, lit, lits[reg_inits[vid]])
        else:
            sink.add_clause([lit_not(lit)])  # latches start at 0
    return lits
