"""Compiled frame templates: encode the transition relation once,
stamp it per time frame by offset arithmetic.

Every engine in the stack (BMC, k-induction, the recurrence and QBF
diameter engines, COM's inductive sweep, SAT target enlargement)
instantiates the *same* combinational frame once per time step.  The
direct path re-walks the netlist through
:func:`repro.sat.tseitin.encode_frame` every time — a full topological
traversal plus dict-based Tseitin dispatch per frame.  Following the
BMC folklore of Eén & Sörensson (temporal induction: encode the
transition relation once, instantiate by variable renaming), this
module compiles a netlist into a flat, immutable :class:`FrameTemplate`
— an integer clause array plus literal slot maps — and stamps frame
``t`` with pure integer arithmetic, feeding the solver through the
:meth:`repro.sat.solver.Solver.add_clauses_bulk` fast path.

Template literal space
----------------------
A compiled clause stores two kinds of literals:

* **local** literals (``lit < SLOT_BASE``): template-internal
  variables, numbered ``0 .. num_locals - 1`` with the usual
  ``2 * var + sign`` packing.  Stamping shifts them by ``2 * base``
  where ``base`` is the first solver variable allocated for the frame.
* **slot** literals (``lit >= SLOT_BASE``): per-frame parameters
  (state elements, and for the ``io``/``init`` modes the primary
  inputs), packed as ``SLOT_BASE + 2 * slot + sign``.  Stamping looks
  them up in a flat table built from the caller's slot values.
  ``SLOT_BASE`` is even, so ``lit ^ 1`` negates both kinds uniformly
  (``encode_frame`` negates leaf literals for NOT gates).

One extra slot carries the shared true/false literal backing CONST0.

Parity contract
---------------
Stamping is engineered to leave the solver in a state *element-wise
identical* to the direct ``encode_frame`` path: the same number of
variables allocated in the same order, the same clauses in the same
stream order, and the same level-0 normalisation decisions.  Clauses
with pairwise-distinct local variables and at most one slot literal
cannot stamp into duplicates or tautologies, so they are eligible for
bulk loading (the loader re-checks level-0 assignments per clause);
anything else goes through the normalising
:meth:`~repro.sat.solver.Solver.add_clause`
exactly as the direct path would.  Identical solver state means
identical CDCL search, so verdicts, bounds, *and counterexample
models* match the direct path bit for bit — the property the golden
equivalence suite pins.

Cache
-----
:func:`get_template` keeps a process-wide LRU keyed by
``(netlist structural signature, mode)`` (see
:meth:`repro.netlist.netlist.Netlist.signature`), so every strategy,
engine, and experiment row — including each worker process of
:mod:`repro.parallel` — reuses one compilation per distinct netlist.
Set the ``REPRO_FRAME_TEMPLATES=0`` environment variable or call
:func:`set_templates_enabled` / :func:`use_templates` to fall back to
the direct path globally (the A/B switch behind the golden tests and
the bench tool's ``encode_speedup`` figure).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .. import obs
from ..netlist import GateType, Netlist
from .cnf import pos
from .solver import Solver
from .tseitin import CnfSink, encode_frame, encode_mux

#: First slot literal.  Even (so ``lit ^ 1`` negates slots too) and far
#: above any realistic local-variable literal.
SLOT_BASE = 1 << 40

#: Template flavours (the cache key's second component):
#:
#: * ``"frame"`` — slots are the state elements; inputs are fresh
#:   locals; the tail appends the latch hold-muxes (``Unrolling``, the
#:   COM checker, SAT enlargement).
#: * ``"io"`` — slots are state elements *and* primary inputs (the QBF
#:   engine supplies input literals from a pre-allocated block).
#: * ``"init"`` — slots are the primary inputs; only the register
#:   initial-value cones are compiled (the QBF init-cone encode).
MODES = ("frame", "io", "init")

_ENV_VAR = "REPRO_FRAME_TEMPLATES"
_enabled = os.environ.get(_ENV_VAR, "1").strip().lower() \
    not in ("0", "false", "off", "no")


def templates_enabled() -> bool:
    """Whether template stamping is globally enabled."""
    return _enabled


def set_templates_enabled(enabled: bool) -> bool:
    """Set the global toggle; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def use_templates(enabled: bool) -> Iterator[None]:
    """Scoped override of the global toggle (A/B testing, benches)."""
    previous = set_templates_enabled(enabled)
    try:
        yield
    finally:
        set_templates_enabled(previous)


def netlist_has_const0(net: Netlist) -> bool:
    """Whether ``net`` contains a CONST0 vertex.

    The direct-path counterpart of :attr:`FrameTemplate.has_const0`:
    callers of either path pre-touch the sink's shared true literal on
    this condition so both paths allocate it at the same deterministic
    position (the direct path would otherwise allocate it lazily in
    the middle of the first frame that reaches CONST0).
    """
    return any(g.type is GateType.CONST0 for _, g in net.gates())


class _TemplateSink:
    """A recording CnfSink stand-in: runs ``encode_frame`` symbolically.

    ``new_var`` hands out consecutive local indices; clauses are
    recorded verbatim in template literal space; the true/false
    properties return the dedicated TRUE slot literal (and note that
    the template needs it) without emitting the unit clause — the real
    sink provides its own pinned true literal at stamp time.
    """

    __slots__ = ("num_locals", "clauses", "_true", "uses_true")

    def __init__(self, num_slots: int) -> None:
        self.num_locals = 0
        self.clauses: List[Tuple[int, ...]] = []
        self._true = SLOT_BASE + 2 * num_slots
        self.uses_true = False

    def new_var(self) -> int:
        var = self.num_locals
        self.num_locals += 1
        return var

    def add_clause(self, lits) -> None:
        self.clauses.append(tuple(lits))

    @property
    def true_lit(self) -> int:
        self.uses_true = True
        return self._true

    @property
    def false_lit(self) -> int:
        self.uses_true = True
        return self._true ^ 1


def _is_bulk_safe(clause: Tuple[int, ...]) -> bool:
    """Eligible for :meth:`Solver.add_clauses_bulk`: >= 2 literals,
    pairwise-distinct local variables, and at most ONE slot literal.

    Such a clause cannot stamp into a duplicate or a tautology: local
    variables are distinct by construction, and a slot value's
    variable always predates the frame's fresh locals (every caller
    allocates slot literals before stamping), so the lone slot cannot
    collide with them.  Two slot literals could stamp to the same
    variable (e.g. two state elements pinned to the shared constant),
    so those clauses keep the normalising ``add_clause`` route.  The
    remaining hazard — a literal assigned at level 0 (slot constants,
    mid-stamp unit propagation) — is re-checked per clause by the bulk
    loader itself."""
    if len(clause) < 2:
        return False
    seen = set()
    slots = 0
    for lit in clause:
        if lit >= SLOT_BASE:
            slots += 1
            if slots > 1:
                return False
            continue
        var = lit >> 1
        if var in seen:
            return False
        seen.add(var)
    return True


def _group_runs(
    clauses: Tuple[Tuple[int, ...], ...], safe: Tuple[bool, ...]
) -> Tuple[Tuple[bool, Tuple[Tuple[int, ...], ...]], ...]:
    """Group a clause stream into maximal same-classification runs."""
    runs: List[Tuple[bool, Tuple[Tuple[int, ...], ...]]] = []
    start = 0
    for idx in range(1, len(clauses) + 1):
        if idx == len(clauses) or safe[idx] != safe[start]:
            runs.append((safe[start], clauses[start:idx]))
            start = idx
    return tuple(runs)


class FrameTemplate:
    """One netlist's transition relation, compiled to a flat clause
    array ready for per-frame stamping.  Immutable; shared freely
    across solvers and threads."""

    __slots__ = ("mode", "slots", "num_locals", "core_locals",
                 "clauses", "bulk_safe", "core_clauses", "lit_map",
                 "next_state", "uses_true", "has_const0", "signature",
                 "runs_core", "runs_tail", "runs_all")

    def __init__(self, mode: str, slots: Tuple[int, ...],
                 num_locals: int, core_locals: int,
                 clauses: Tuple[Tuple[int, ...], ...],
                 bulk_safe: Tuple[bool, ...], core_clauses: int,
                 lit_map: Dict[int, int], next_state: Dict[int, int],
                 uses_true: bool, has_const0: bool,
                 signature: str) -> None:
        self.mode = mode
        #: Slot vids in slot order (callers pass values keyed by vid).
        self.slots = slots
        self.num_locals = num_locals
        #: Locals/clauses up to this boundary encode the frame itself;
        #: the rest is the next-state tail (latch hold-muxes), skipped
        #: when stamping ``with_next=False``.
        self.core_locals = core_locals
        self.clauses = clauses
        self.bulk_safe = bulk_safe
        self.core_clauses = core_clauses
        #: vid -> template literal for every encoded vertex.
        self.lit_map = lit_map
        #: state vid -> template literal of its next-state function.
        self.next_state = next_state
        self.uses_true = uses_true
        self.has_const0 = has_const0
        self.signature = signature
        #: Stream-order runs of ``(is_bulk, clause_tuple)`` segments —
        #: maximal consecutive same-classification groups, split at the
        #: core boundary so ``with_next=False`` stamps ``runs_core``
        #: alone.  Grouped once here so the stamp loop touches a
        #: handful of segments instead of branching per clause.
        self.runs_core = _group_runs(clauses[:core_clauses],
                                     bulk_safe[:core_clauses])
        self.runs_tail = _group_runs(clauses[core_clauses:],
                                     bulk_safe[core_clauses:])
        self.runs_all = self.runs_core + self.runs_tail

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FrameTemplate {self.mode} slots={len(self.slots)} "
                f"locals={self.num_locals} clauses={len(self.clauses)}>")

    def stamp(
        self,
        sink: CnfSink,
        slot_vals: Dict[int, int],
        with_next: bool = True,
    ) -> Tuple[Dict[int, int], Optional[Dict[int, int]]]:
        """Instantiate one frame into ``sink``.

        ``slot_vals`` maps every slot vid to its literal in the
        backend.  Returns ``(lits, next_state)``: the vertex-to-literal
        map of the frame and (when ``with_next``) the literals of the
        successor state; ``with_next=False`` stops at the core
        boundary (no latch hold-muxes — the COM frame-1 / enlargement
        S_0 shape).

        Certification note: stamping goes through the backend's public
        ``add_clause`` / ``add_clauses_bulk`` entry points, never a
        private fast path — so when the solver's DRAT-style proof log
        is armed (:func:`repro.sat.use_proofs`), every template-stamped
        clause is recorded as an input event and templated runs certify
        identically to direct encoding.
        """
        nslots = len(self.slots)
        tab = [0] * (2 * nslots + 2)
        for i, vid in enumerate(self.slots):
            lit = slot_vals[vid]
            tab[2 * i] = lit
            tab[2 * i + 1] = lit ^ 1
        if self.uses_true:
            true = sink.true_lit
            tab[2 * nslots] = true
            tab[2 * nslots + 1] = true ^ 1
        num = self.num_locals if with_next else self.core_locals
        runs = self.runs_all if with_next else self.runs_core
        backend = sink.backend
        is_solver = isinstance(backend, Solver)
        if num:
            if is_solver:
                base = backend.new_vars(num)
            else:
                base = sink.new_var()
                for _ in range(num - 1):
                    sink.new_var()
        else:
            base = 0
        off = 2 * base
        bulk = backend.add_clauses_bulk if is_solver else None
        add_clause = backend.add_clause if is_solver \
            else sink.add_clause
        SB = SLOT_BASE
        bulk_count = 0
        for is_bulk, seg in runs:
            if is_bulk and bulk is not None:
                bulk([[lit + off if lit < SB else tab[lit - SB]
                       for lit in cl] for cl in seg])
                bulk_count += len(seg)
            else:
                for cl in seg:
                    add_clause([lit + off if lit < SB
                                else tab[lit - SB] for lit in cl])
        lits = {vid: (lit + off if lit < SB else tab[lit - SB])
                for vid, lit in self.lit_map.items()}
        nxt: Optional[Dict[int, int]] = None
        if with_next:
            nxt = {vid: (lit + off if lit < SB else tab[lit - SB])
                   for vid, lit in self.next_state.items()}
        reg = obs.get_registry()
        reg.counter("template.frames_stamped")
        if bulk_count:
            reg.counter("template.bulk_clauses", bulk_count)
        return lits, nxt


def compile_template(net: Netlist, mode: str = "frame") -> FrameTemplate:
    """Compile ``net`` into a :class:`FrameTemplate` (uncached).

    The compiler *is* :func:`~repro.sat.tseitin.encode_frame`, run
    against a recording sink with the mode's slot literals as leaves —
    so the template clause stream is by construction the exact stream
    the direct path emits, just in template literal space.
    """
    if mode not in MODES:
        raise ValueError(f"unknown template mode {mode!r}")
    states = net.state_elements
    if mode == "frame":
        slot_vids: List[int] = list(states)
        roots: Optional[Sequence[int]] = None
    elif mode == "io":
        slot_vids = list(states) + list(net.inputs)
        roots = None
    else:  # init
        slot_vids = list(net.inputs)
        roots = [net.gate(r).fanins[1] for r in net.registers]
    sink = _TemplateSink(len(slot_vids))
    leaves = {vid: SLOT_BASE + 2 * i for i, vid in enumerate(slot_vids)}
    if mode == "init" and not roots:
        lit_map: Dict[int, int] = dict(leaves)
    else:
        lit_map = encode_frame(net, sink, leaves, roots=roots)
    core_locals = sink.num_locals
    core_clauses = len(sink.clauses)
    next_state: Dict[int, int] = {}
    if mode != "init":
        # The next-state tail, in the exact order the direct callers
        # append it after their frame encode.
        for vid in states:
            gate = net.gate(vid)
            if gate.type is GateType.REGISTER:
                next_state[vid] = lit_map[gate.fanins[0]]
            else:
                data, clock = gate.fanins
                out = pos(sink.new_var())
                encode_mux(sink, out, lit_map[clock], lit_map[data],
                           lit_map[vid])
                next_state[vid] = out
    return FrameTemplate(
        mode=mode,
        slots=tuple(slot_vids),
        num_locals=sink.num_locals,
        core_locals=core_locals,
        clauses=tuple(sink.clauses),
        bulk_safe=tuple(_is_bulk_safe(c) for c in sink.clauses),
        core_clauses=core_clauses,
        lit_map=lit_map,
        next_state=next_state,
        uses_true=sink.uses_true,
        has_const0=netlist_has_const0(net),
        signature=net.signature(),
    )


#: Process-wide LRU of compiled templates.  Each worker process of
#: :mod:`repro.parallel` grows its own (templates are not shipped
#: across the pickle boundary; the netlist is, and recompilation is a
#: one-time cost per worker surfaced by the ``template.compiles``
#: counter in merged snapshots).
_CACHE_MAX = 64
_cache: "OrderedDict[Tuple[str, str], FrameTemplate]" = OrderedDict()
_cache_lock = threading.Lock()


def get_template(net: Netlist, mode: str = "frame") -> FrameTemplate:
    """The compiled template for ``net``/``mode``, via the LRU cache.

    Keyed by the netlist's memoized structural signature, so two
    structurally-identical netlists (e.g. the same design generated in
    two strategies, or re-generated inside a worker process) share one
    compilation.  Publishes ``template.hits`` / ``template.compiles``
    counters and the ``encode.compile`` span.
    """
    key = (net.signature(), mode)
    with _cache_lock:
        tmpl = _cache.get(key)
        if tmpl is not None:
            _cache.move_to_end(key)
    if tmpl is not None:
        obs.counter("template.hits")
        return tmpl
    reg = obs.get_registry()
    with reg.span("encode.compile"):
        tmpl = compile_template(net, mode)
    reg.counter("template.compiles")
    with _cache_lock:
        _cache[key] = tmpl
        while len(_cache) > _CACHE_MAX:
            _cache.popitem(last=False)
    return tmpl


def clear_template_cache() -> None:
    """Drop every cached compilation (tests, cold-path benches)."""
    with _cache_lock:
        _cache.clear()


def template_cache_size() -> int:
    """Number of live cache entries (introspection for tests)."""
    with _cache_lock:
        return len(_cache)
