"""Two- and three-valued netlist simulation."""

from .simulator import BitParallelSimulator
from .ternary import (
    X,
    constant_state_elements,
    ternary_eval,
    ternary_initial_state,
)
from .random_sim import random_signatures, signature_classes

__all__ = [
    "BitParallelSimulator",
    "X",
    "constant_state_elements",
    "random_signatures",
    "signature_classes",
    "ternary_eval",
    "ternary_initial_state",
]
