"""Bit-parallel netlist simulation (Definition 2 trace semantics).

Values are Python integers used as bit-vectors: bit ``k`` of every
signal belongs to the ``k``-th of ``width`` parallel simulation runs.
This gives cheap random-simulation *signatures* for the COM engine's
equivalence-candidate filtering, and ``width=1`` gives plain traces.

Latch semantics
---------------
A level-sensitive latch is modeled in discrete time as
``out(t) = clock(t-1) ? data(t-1) : out(t-1)`` with ``out(0)`` given by
its initial value (constant 0 by convention).  That is, a latch behaves
exactly like a register whose next-state is a hold-mux.  This keeps the
combinational netlist acyclic and is the standard discrete-time view
under which phase abstraction (Section 3.3) is formulated.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..netlist import Netlist, GateType, topological_order


#: Op-list entry kinds (compiled evaluation plan).
_OP_STATE = 0
_OP_INPUT = 1
_OP_GATE = 2


class BitParallelSimulator:
    """Simulates a netlist over ``width`` parallel runs per step.

    By default the netlist is *compiled* at construction into a flat
    topological op list — one specialized closure per combinational
    gate — so the per-cycle inner loop does no gate-table lookups and
    no type dispatch.  ``compiled=False`` keeps the original
    interpreted evaluator (the two are pinned equivalent by the
    randomized cross-check in ``tests/unit/test_sim.py``).
    """

    def __init__(self, net: Netlist, width: int = 1,
                 compiled: bool = True) -> None:
        self.net = net
        self.width = width
        self.mask = (1 << width) - 1
        self.compiled = bool(compiled)
        self._order = topological_order(net)
        self._init_order = topological_order(
            net, [net.gate(r).fanins[1] for r in net.state_elements
                  if net.gate(r).type is GateType.REGISTER]
        )
        #: next-state plan: (vid, data/next fanin, clock or None)
        self._state_plan = []
        for vid in net.state_elements:
            gate = net.gate(vid)
            if gate.type is GateType.REGISTER:
                self._state_plan.append((vid, gate.fanins[0], None))
            else:
                data, clock = gate.fanins
                self._state_plan.append((vid, data, clock))
        self._ops = self._compile_plan(self._order) \
            if self.compiled else None
        self._init_ops = self._compile_plan(self._init_order) \
            if self.compiled else None

    # ------------------------------------------------------------------
    def _compile_plan(self, order):
        """Flatten a topological order into ``(vid, kind, fn)`` ops."""
        ops = []
        for vid in order:
            gate = self.net.gate(vid)
            if gate.is_state:
                ops.append((vid, _OP_STATE, None))
            elif gate.type is GateType.INPUT:
                ops.append((vid, _OP_INPUT, None))
            else:
                ops.append((vid, _OP_GATE, self._compile_gate(gate)))
        return ops

    def _compile_gate(self, gate):
        """One specialized closure computing the gate from ``values``."""
        f = gate.fanins
        t = gate.type
        mask = self.mask
        if t is GateType.CONST0:
            return lambda values: 0
        if t is GateType.BUF:
            (a,) = f
            return lambda values: values[a]
        if t is GateType.NOT:
            (a,) = f
            return lambda values: ~values[a] & mask
        if t is GateType.MUX:
            s, a, b = f
            return lambda values: ((values[s] & values[a])
                                   | (~values[s] & values[b] & mask))
        if t in (GateType.AND, GateType.NAND) and len(f) == 2:
            a, b = f
            if t is GateType.AND:
                return lambda values: values[a] & values[b]
            return lambda values: ~(values[a] & values[b]) & mask
        if t in (GateType.OR, GateType.NOR) and len(f) == 2:
            a, b = f
            if t is GateType.OR:
                return lambda values: values[a] | values[b]
            return lambda values: ~(values[a] | values[b]) & mask
        if t in (GateType.XOR, GateType.XNOR) and len(f) == 2:
            a, b = f
            if t is GateType.XOR:
                return lambda values: values[a] ^ values[b]
            return lambda values: ~(values[a] ^ values[b]) & mask
        # Wide gates: generic reduction closures.
        if t in (GateType.AND, GateType.NAND):
            def reduce_and(values, f=f, mask=mask,
                           invert=t is GateType.NAND):
                out = mask
                for x in f:
                    out &= values[x]
                return ~out & mask if invert else out
            return reduce_and
        if t in (GateType.OR, GateType.NOR):
            def reduce_or(values, f=f, mask=mask,
                          invert=t is GateType.NOR):
                out = 0
                for x in f:
                    out |= values[x]
                return ~out & mask if invert else out
            return reduce_or
        if t in (GateType.XOR, GateType.XNOR):
            def reduce_xor(values, f=f, mask=mask,
                           invert=t is GateType.XNOR):
                out = 0
                for x in f:
                    out ^= values[x]
                return ~out & mask if invert else out
            return reduce_xor
        raise ValueError(f"cannot evaluate gate type {t}")

    # ------------------------------------------------------------------
    def initial_state(
        self, init_inputs: Optional[Dict[int, int]] = None
    ) -> Dict[int, int]:
        """Evaluate register initial-value cones into a state map.

        ``init_inputs`` assigns values to primary inputs appearing in
        initial-value cones (nondeterministic initial values); inputs
        left unassigned default to 0.  Latches initialize to 0.
        """
        values: Dict[int, int] = {}
        init_inputs = init_inputs or {}
        if self._init_ops is not None:
            mask = self.mask
            for vid, kind, fn in self._init_ops:
                if kind == _OP_GATE:
                    values[vid] = fn(values)
                elif kind == _OP_INPUT:
                    values[vid] = init_inputs.get(vid, 0) & mask
                else:
                    # A state element inside an init cone contributes
                    # its own initial value; resolved conservatively to
                    # 0 for latches and recursively for registers.
                    values[vid] = 0
        else:
            for vid in self._init_order:
                gate = self.net.gate(vid)
                if gate.type is GateType.INPUT:
                    values[vid] = init_inputs.get(vid, 0) & self.mask
                elif gate.is_state:
                    values[vid] = 0
                else:
                    values[vid] = self._eval(gate, values)
        state: Dict[int, int] = {}
        for vid in self.net.state_elements:
            gate = self.net.gate(vid)
            if gate.type is GateType.REGISTER:
                state[vid] = values.get(gate.fanins[1], 0)
            else:
                state[vid] = 0
        return state

    def evaluate(
        self, state: Dict[int, int], inputs: Dict[int, int]
    ) -> Dict[int, int]:
        """Evaluate every vertex for one cycle given state and inputs."""
        values: Dict[int, int] = {}
        if self._ops is not None:
            mask = self.mask
            for vid, kind, fn in self._ops:
                if kind == _OP_GATE:
                    values[vid] = fn(values)
                elif kind == _OP_STATE:
                    values[vid] = state.get(vid, 0) & mask
                else:
                    values[vid] = inputs.get(vid, 0) & mask
            return values
        for vid in self._order:
            gate = self.net.gate(vid)
            if gate.is_state:
                values[vid] = state.get(vid, 0) & self.mask
            elif gate.type is GateType.INPUT:
                values[vid] = inputs.get(vid, 0) & self.mask
            else:
                values[vid] = self._eval(gate, values)
        return values

    def next_state(
        self, state: Dict[int, int], values: Dict[int, int]
    ) -> Dict[int, int]:
        """Compute the successor state from current-cycle ``values``."""
        nxt: Dict[int, int] = {}
        for vid, data, clock in self._state_plan:
            if clock is None:  # register
                nxt[vid] = values[data]
            else:  # latch: hold unless clock was high
                c = values[clock]
                nxt[vid] = (values[data] & c) | (state.get(vid, 0) & ~c
                                                 & self.mask)
        return nxt

    def step(
        self, state: Dict[int, int], inputs: Dict[int, int]
    ) -> tuple:
        """One simulation step: ``(values, next_state)``."""
        values = self.evaluate(state, inputs)
        return values, self.next_state(state, values)

    def run(
        self,
        cycles: int,
        input_provider: Callable[[int, int], int],
        observe: Optional[Sequence[int]] = None,
        init_inputs: Optional[Dict[int, int]] = None,
    ) -> Dict[int, List[int]]:
        """Simulate ``cycles`` steps, returning per-vertex value lists.

        ``input_provider(vid, cycle)`` supplies input values;
        ``observe`` restricts which vertices are recorded (default: all
        targets, outputs and state elements).
        """
        if observe is None:
            observe = (list(self.net.targets) + list(self.net.outputs)
                       + self.net.state_elements)
        observe = list(dict.fromkeys(observe))
        trace: Dict[int, List[int]] = {v: [] for v in observe}
        state = self.initial_state(init_inputs)
        for cycle in range(cycles):
            inputs = {v: input_provider(v, cycle) for v in self.net.inputs}
            values, state = self.step(state, inputs)
            for v in observe:
                trace[v].append(values[v])
        return trace

    # ------------------------------------------------------------------
    def _eval(self, gate, values: Dict[int, int]) -> int:
        f = gate.fanins
        t = gate.type
        if t is GateType.CONST0:
            return 0
        if t is GateType.BUF:
            return values[f[0]]
        if t is GateType.NOT:
            return ~values[f[0]] & self.mask
        if t is GateType.AND:
            out = self.mask
            for x in f:
                out &= values[x]
            return out
        if t is GateType.OR:
            out = 0
            for x in f:
                out |= values[x]
            return out
        if t is GateType.NAND:
            out = self.mask
            for x in f:
                out &= values[x]
            return ~out & self.mask
        if t is GateType.NOR:
            out = 0
            for x in f:
                out |= values[x]
            return ~out & self.mask
        if t is GateType.XOR:
            out = 0
            for x in f:
                out ^= values[x]
            return out
        if t is GateType.XNOR:
            out = 0
            for x in f:
                out ^= values[x]
            return ~out & self.mask
        if t is GateType.MUX:
            s, a, b = (values[x] for x in f)
            return (s & a) | (~s & b & self.mask)
        raise ValueError(f"cannot evaluate gate type {t}")
