"""Bit-parallel netlist simulation (Definition 2 trace semantics).

Values are Python integers used as bit-vectors: bit ``k`` of every
signal belongs to the ``k``-th of ``width`` parallel simulation runs.
This gives cheap random-simulation *signatures* for the COM engine's
equivalence-candidate filtering, and ``width=1`` gives plain traces.

Latch semantics
---------------
A level-sensitive latch is modeled in discrete time as
``out(t) = clock(t-1) ? data(t-1) : out(t-1)`` with ``out(0)`` given by
its initial value (constant 0 by convention).  That is, a latch behaves
exactly like a register whose next-state is a hold-mux.  This keeps the
combinational netlist acyclic and is the standard discrete-time view
under which phase abstraction (Section 3.3) is formulated.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..netlist import Netlist, GateType, topological_order


class BitParallelSimulator:
    """Simulates a netlist over ``width`` parallel runs per step."""

    def __init__(self, net: Netlist, width: int = 1) -> None:
        self.net = net
        self.width = width
        self.mask = (1 << width) - 1
        self._order = topological_order(net)
        self._init_order = topological_order(
            net, [net.gate(r).fanins[1] for r in net.state_elements
                  if net.gate(r).type is GateType.REGISTER]
        )

    # ------------------------------------------------------------------
    def initial_state(
        self, init_inputs: Optional[Dict[int, int]] = None
    ) -> Dict[int, int]:
        """Evaluate register initial-value cones into a state map.

        ``init_inputs`` assigns values to primary inputs appearing in
        initial-value cones (nondeterministic initial values); inputs
        left unassigned default to 0.  Latches initialize to 0.
        """
        values: Dict[int, int] = {}
        init_inputs = init_inputs or {}
        for vid in self._init_order:
            gate = self.net.gate(vid)
            if gate.type is GateType.INPUT:
                values[vid] = init_inputs.get(vid, 0) & self.mask
            elif gate.is_state:
                # A state element inside an init cone contributes its
                # own initial value; resolved conservatively to 0 for
                # latches and recursively for registers.
                values[vid] = 0
            else:
                values[vid] = self._eval(gate, values)
        state: Dict[int, int] = {}
        for vid in self.net.state_elements:
            gate = self.net.gate(vid)
            if gate.type is GateType.REGISTER:
                state[vid] = values.get(gate.fanins[1], 0)
            else:
                state[vid] = 0
        return state

    def evaluate(
        self, state: Dict[int, int], inputs: Dict[int, int]
    ) -> Dict[int, int]:
        """Evaluate every vertex for one cycle given state and inputs."""
        values: Dict[int, int] = {}
        for vid in self._order:
            gate = self.net.gate(vid)
            if gate.is_state:
                values[vid] = state.get(vid, 0) & self.mask
            elif gate.type is GateType.INPUT:
                values[vid] = inputs.get(vid, 0) & self.mask
            else:
                values[vid] = self._eval(gate, values)
        return values

    def next_state(
        self, state: Dict[int, int], values: Dict[int, int]
    ) -> Dict[int, int]:
        """Compute the successor state from current-cycle ``values``."""
        nxt: Dict[int, int] = {}
        for vid in self.net.state_elements:
            gate = self.net.gate(vid)
            if gate.type is GateType.REGISTER:
                nxt[vid] = values[gate.fanins[0]]
            else:  # latch: hold unless clock was high
                data, clock = gate.fanins
                c = values[clock]
                nxt[vid] = (values[data] & c) | (state.get(vid, 0) & ~c
                                                 & self.mask)
        return nxt

    def step(
        self, state: Dict[int, int], inputs: Dict[int, int]
    ) -> tuple:
        """One simulation step: ``(values, next_state)``."""
        values = self.evaluate(state, inputs)
        return values, self.next_state(state, values)

    def run(
        self,
        cycles: int,
        input_provider: Callable[[int, int], int],
        observe: Optional[Sequence[int]] = None,
        init_inputs: Optional[Dict[int, int]] = None,
    ) -> Dict[int, List[int]]:
        """Simulate ``cycles`` steps, returning per-vertex value lists.

        ``input_provider(vid, cycle)`` supplies input values;
        ``observe`` restricts which vertices are recorded (default: all
        targets, outputs and state elements).
        """
        if observe is None:
            observe = (list(self.net.targets) + list(self.net.outputs)
                       + self.net.state_elements)
        observe = list(dict.fromkeys(observe))
        trace: Dict[int, List[int]] = {v: [] for v in observe}
        state = self.initial_state(init_inputs)
        for cycle in range(cycles):
            inputs = {v: input_provider(v, cycle) for v in self.net.inputs}
            values, state = self.step(state, inputs)
            for v in observe:
                trace[v].append(values[v])
        return trace

    # ------------------------------------------------------------------
    def _eval(self, gate, values: Dict[int, int]) -> int:
        f = gate.fanins
        t = gate.type
        if t is GateType.CONST0:
            return 0
        if t is GateType.BUF:
            return values[f[0]]
        if t is GateType.NOT:
            return ~values[f[0]] & self.mask
        if t is GateType.AND:
            out = self.mask
            for x in f:
                out &= values[x]
            return out
        if t is GateType.OR:
            out = 0
            for x in f:
                out |= values[x]
            return out
        if t is GateType.NAND:
            out = self.mask
            for x in f:
                out &= values[x]
            return ~out & self.mask
        if t is GateType.NOR:
            out = 0
            for x in f:
                out |= values[x]
            return ~out & self.mask
        if t is GateType.XOR:
            out = 0
            for x in f:
                out ^= values[x]
            return out
        if t is GateType.XNOR:
            out = 0
            for x in f:
                out ^= values[x]
            return ~out & self.mask
        if t is GateType.MUX:
            s, a, b = (values[x] for x in f)
            return (s & a) | (~s & b & self.mask)
        raise ValueError(f"cannot evaluate gate type {t}")
