"""Random simulation signatures for equivalence-candidate filtering.

The COM engine (SAT sweeping, Section 3.1) must guess which vertex
pairs might be semantically equivalent before it proves anything.  The
classic filter is random simulation: run many random traces in
parallel, collect each vertex's value *signature*, and only consider
pairs with identical (or complementary) signatures.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..netlist import Netlist
from .simulator import BitParallelSimulator


def random_signatures(
    net: Netlist,
    cycles: int = 8,
    width: int = 64,
    seed: int = 2004,
) -> Dict[int, Tuple[int, ...]]:
    """Per-vertex signatures from ``width`` random runs of ``cycles``.

    The signature of a vertex is the tuple of its bit-parallel values
    over time; equal signatures are a necessary condition for sequential
    equivalence (from the initial states), so they make good merge
    candidates.
    """
    rng = random.Random(seed)
    sim = BitParallelSimulator(net, width=width)
    mask = sim.mask
    init_inputs = {v: rng.getrandbits(width) & mask for v in net.inputs}
    state = sim.initial_state(init_inputs)
    signatures: Dict[int, List[int]] = {v: [] for v in net}
    for _ in range(cycles):
        inputs = {v: rng.getrandbits(width) & mask for v in net.inputs}
        values, state = sim.step(state, inputs)
        for vid, val in values.items():
            signatures[vid].append(val)
    return {vid: tuple(sig) for vid, sig in signatures.items()}


def signature_classes(
    signatures: Dict[int, Tuple[int, ...]]
) -> List[List[int]]:
    """Group vertices into candidate-equivalence classes by signature.

    Returns only classes with two or more members, each sorted by
    vertex id (the earliest vertex acts as class representative).
    """
    classes: Dict[Tuple[int, ...], List[int]] = {}
    for vid, sig in signatures.items():
        classes.setdefault(sig, []).append(vid)
    return [sorted(members) for members in classes.values()
            if len(members) > 1]
