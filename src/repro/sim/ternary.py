"""Three-valued (0/1/X) simulation.

Used to detect *constant* state elements: starting from the initial
state (with ``X`` for nondeterministic initial values) and ``X`` on all
primary inputs, the ternary state is iterated to a least fixpoint under
the information ordering (``0``/``1`` above ``X``).  Any state element
whose fixpoint value is still 0 or 1 provably holds that constant in
every reachable state — the *constant components* (CCs) of the
structural diameter bound, and merge fodder for the COM engine.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..netlist import Netlist, GateType, topological_order

#: The "unknown" value.
X = 2


def _meet(a: int, b: int) -> int:
    """Information meet: equal values stay, conflicts go to X."""
    return a if a == b else X


def ternary_eval(net: Netlist, state: Dict[int, int],
                 inputs: Optional[Dict[int, int]] = None) -> Dict[int, int]:
    """Evaluate all vertices ternarily for one cycle.

    ``state`` maps state elements to {0,1,X}; ``inputs`` maps primary
    inputs to {0,1,X} (default all X).
    """
    inputs = inputs or {}
    values: Dict[int, int] = {}
    for vid in topological_order(net):
        gate = net.gate(vid)
        if gate.is_state:
            values[vid] = state.get(vid, X)
        elif gate.type is GateType.INPUT:
            values[vid] = inputs.get(vid, X)
        else:
            values[vid] = _eval(gate, values)
    return values


def _eval(gate, values: Dict[int, int]) -> int:
    t = gate.type
    f = gate.fanins
    if t is GateType.CONST0:
        return 0
    if t is GateType.BUF:
        return values[f[0]]
    if t is GateType.NOT:
        v = values[f[0]]
        return X if v == X else 1 - v
    if t in (GateType.AND, GateType.NAND):
        out = 1
        for x in f:
            v = values[x]
            if v == 0:
                out = 0
                break
            if v == X:
                out = X
        if t is GateType.NAND:
            return X if out == X else 1 - out
        return out
    if t in (GateType.OR, GateType.NOR):
        out = 0
        for x in f:
            v = values[x]
            if v == 1:
                out = 1
                break
            if v == X:
                out = X
        if t is GateType.NOR:
            return X if out == X else 1 - out
        return out
    if t in (GateType.XOR, GateType.XNOR):
        out = 0
        for x in f:
            v = values[x]
            if v == X:
                return X
            out ^= v
        return (1 - out) if t is GateType.XNOR else out
    if t is GateType.MUX:
        s, a, b = (values[x] for x in f)
        if s == 1:
            return a
        if s == 0:
            return b
        return _meet(a, b)
    raise ValueError(f"cannot ternary-evaluate gate type {t}")


def ternary_initial_state(net: Netlist) -> Dict[int, int]:
    """Ternary initial state: constant inits resolved, inputs give X."""
    values: Dict[int, int] = {}
    init_edges = [net.gate(r).fanins[1] for r in net.registers]
    for vid in topological_order(net, init_edges):
        gate = net.gate(vid)
        if gate.type is GateType.INPUT or gate.is_state:
            values[vid] = X
        else:
            values[vid] = _eval(gate, values)
    state: Dict[int, int] = {}
    for vid in net.state_elements:
        gate = net.gate(vid)
        if gate.type is GateType.REGISTER:
            state[vid] = values.get(gate.fanins[1], X)
        else:
            state[vid] = 0  # latches initialize to 0 by convention
    return state


def constant_state_elements(net: Netlist,
                            max_iterations: Optional[int] = None
                            ) -> Dict[int, int]:
    """State elements provably constant in all reachable states.

    Runs the ternary fixpoint and returns ``{vid: constant_value}`` for
    every state element still binary at the fixpoint.  The fixpoint is
    reached in at most ``|R| + 1`` iterations (each iteration can only
    move values down the information order).
    """
    state = ternary_initial_state(net)
    limit = max_iterations or (len(state) + 1)
    for _ in range(limit):
        values = ternary_eval(net, state)
        nxt: Dict[int, int] = {}
        changed = False
        for vid in state:
            gate = net.gate(vid)
            if gate.type is GateType.REGISTER:
                new = _meet(state[vid], values[gate.fanins[0]])
            else:
                data, clock = gate.fanins
                c = values[clock]
                if c == 0:
                    new = state[vid]
                elif c == 1:
                    new = _meet(state[vid], values[data])
                else:
                    new = _meet(state[vid], _meet(values[data], state[vid]))
            if new != state[vid]:
                changed = True
            nxt[vid] = new
        state = nxt
        if not changed:
            break
    return {vid: val for vid, val in state.items() if val != X}
