"""Theorems 1-4: back-translating diameter bounds through transformations.

This module is the paper's primary contribution in executable form.
``This research enables the use of a diameter bound obtained upon a
transformed design to yield a tight bound for the original,
untransformed design via a constant-time calculation.``

All bounds are *completeness bounds*: a value ``d`` such that a clean
BMC check of time-steps ``0 .. d - 1`` proves the target unreachable.
Definition 3's diameter is one such bound for trace-equivalent and
folded vertex sets, and Theorem 4 produces such a bound directly
("the original target t is hittable within d(t') + k time-steps, if at
all").
"""

from __future__ import annotations

from typing import Iterable, Optional

from .record import StepKind, TransformChain, TransformStep


class UnsoundTransformError(Exception):
    """Raised when a bound is back-translated through an approximate
    (over- or under-approximating) transformation.

    Sections 3.5/3.6: overapproximation may both add reachable states
    (increasing diameter) and add transitions (decreasing it);
    underapproximation dually.  "Therefore, diameter bounds obtained
    upon an (over|under)approximated netlist cannot be used in general
    to obtain a bound for the original netlist."
    """


def theorem1_trace_equivalent(bound: int) -> int:
    """Theorem 1: trace-equivalent vertex sets have *equal* diameter."""
    return bound


def theorem2_retiming(bound: int, lag: int) -> int:
    """Theorem 2: ``d(U) <= d(Ũ') + i`` for uniform target lag ``-i``.

    ``lag`` is the non-negative skew ``i = -r(t)`` of the (normalized-
    retimed) target: each of the ``i`` prefix time-steps discarded into
    the retiming stump corresponds to one acyclic register composed in
    front of the recurrence structure, incrementing diameter by at most
    one apiece.
    """
    if lag < 0:
        raise ValueError("normalized retiming lags satisfy -r(t) >= 0")
    return bound + lag


def theorem3_state_folding(bound: int, factor: int) -> int:
    """Theorem 3: ``d(U) <= c * d(Ũ)`` for phase/c-slow abstraction.

    Any transition of the abstracted netlist corresponds to ``c``
    transitions of the original, so a valuation witnessed within
    ``d(Ũ)`` folded steps occurs within ``c * d(Ũ)`` original steps.
    """
    if factor < 1:
        raise ValueError("folding factor must be >= 1")
    return factor * bound


def theorem4_target_enlargement(bound: int, k: int) -> int:
    """Theorem 4: a k-step enlarged target with diameter ``d(t')``
    implies the original target is hittable within ``d(t') + k`` steps,
    if at all."""
    if k < 0:
        raise ValueError("enlargement depth must be >= 0")
    return bound + k


def back_translate_step(bound: int, step: TransformStep,
                        pre_step_target: Optional[int] = None) -> int:
    """Back-translate ``bound`` through one transformation step."""
    if step.kind is StepKind.TRACE_EQUIVALENT:
        return theorem1_trace_equivalent(bound)
    if step.kind is StepKind.RETIME:
        lag = step.lags.get(pre_step_target, 0) \
            if pre_step_target is not None else max(step.lags.values(),
                                                    default=0)
        return theorem2_retiming(bound, lag)
    if step.kind is StepKind.STATE_FOLD:
        return theorem3_state_folding(bound, step.factor)
    if step.kind is StepKind.TARGET_ENLARGE:
        return theorem4_target_enlargement(bound, step.depth)
    raise UnsoundTransformError(
        f"step {step.name!r} ({step.kind.value}) does not preserve "
        f"diameter bounds (Sections 3.5/3.6)")


def back_translate(chain: TransformChain, original_target: int,
                   bound: int) -> int:
    """Back-translate a bound on the chain's final netlist to the
    original netlist, applying Theorems 1-4 in reverse order.

    Raises :class:`UnsoundTransformError` if the chain contains an
    over- or under-approximating step.
    """
    # Resolve the target's identity entering each step, front to back.
    entering = []
    vid: Optional[int] = original_target
    for step in chain.steps:
        entering.append(vid)
        if vid is not None:
            vid = step.target_map.get(vid)
    out = bound
    for step, pre_target in zip(reversed(chain.steps), reversed(entering)):
        out = back_translate_step(out, step, pre_target)
    return out


def chain_is_sound(steps: Iterable[TransformStep]) -> bool:
    """True when every step in the chain preserves diameter bounds."""
    return all(step.is_sound_for_diameter for step in steps)
