"""Transformation provenance records.

Every structural transformation in :mod:`repro.transform` returns a
:class:`TransformResult` carrying the transformed netlist, a vertex
mapping, and a :class:`TransformStep` describing how diameter bounds
back-translate (Section 3).  Chains of steps are accumulated in a
:class:`TransformChain`, which the theory module walks in reverse to
convert a bound on the final netlist into a bound on the original one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..netlist import Netlist


class StepKind(enum.Enum):
    """How a transformation affects diameter bounds (paper section)."""

    #: Trace-equivalence preserving (Thm 1): bound carries over as-is.
    TRACE_EQUIVALENT = "trace-equivalent"
    #: Normalized retiming (Thm 2): add the negated target lag.
    RETIME = "retime"
    #: Phase/c-slow abstraction (Thm 3): multiply by the folding factor.
    STATE_FOLD = "state-fold"
    #: k-step target enlargement (Thm 4): add k.
    TARGET_ENLARGE = "target-enlarge"
    #: Overapproximation (Sec 3.5): bounds are NOT back-translatable.
    OVERAPPROX = "overapprox"
    #: Underapproximation (Sec 3.6): bounds are NOT back-translatable.
    UNDERAPPROX = "underapprox"


@dataclass(frozen=True)
class TransformStep:
    """One applied transformation, with its back-translation data.

    ``target_map`` maps each pre-step target vertex to its post-step
    correspondent (``None`` when the target was discharged, e.g.
    merged to a constant by redundancy removal).  ``lags`` (retiming)
    holds the non-negative skew ``i = -r(t)`` per pre-step target;
    ``factor`` (state folding) the color count ``c``; ``depth``
    (target enlargement) the enlargement ``k``.
    """

    name: str
    kind: StepKind
    target_map: Dict[int, Optional[int]] = field(default_factory=dict)
    lags: Dict[int, int] = field(default_factory=dict)
    factor: int = 1
    depth: int = 0

    @property
    def is_sound_for_diameter(self) -> bool:
        """True when bounds on the result imply bounds on the source."""
        return self.kind not in (StepKind.OVERAPPROX, StepKind.UNDERAPPROX)


@dataclass
class TransformResult:
    """Outcome of a single transformation application.

    ``info`` carries engine-specific metadata (e.g. retiming exposes
    per-input lags so tests and debuggers can correlate traces).
    """

    netlist: Netlist
    step: TransformStep
    mapping: Dict[int, int] = field(default_factory=dict)
    info: Dict[str, object] = field(default_factory=dict)


@dataclass
class TransformChain:
    """A sequence of transformations applied to an original netlist."""

    original: Netlist
    netlist: Netlist
    steps: List[TransformStep] = field(default_factory=list)

    @classmethod
    def identity(cls, net: Netlist) -> "TransformChain":
        """The empty chain over ``net``."""
        return cls(original=net, netlist=net, steps=[])

    def extend(self, result: TransformResult) -> "TransformChain":
        """Chain a new transformation result onto this chain."""
        return TransformChain(
            original=self.original,
            netlist=result.netlist,
            steps=self.steps + [result.step],
        )

    def resolve_target(self, original_target: int) -> Optional[int]:
        """Follow a target through every step; None if discharged."""
        vid: Optional[int] = original_target
        for step in self.steps:
            if vid is None:
                return None
            vid = step.target_map.get(vid)
        return vid
