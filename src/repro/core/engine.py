"""The transformation-based diameter bounding (TBV) engine.

Drives the paper's overall flow: apply a strategy of structural
transformations (e.g. ``"COM,RET,COM"``, the pipeline of Tables 1
and 2), run a diameter bounding engine on the final — typically much
smaller — netlist, and back-translate each target's bound to the
original netlist via Theorems 1-4.  "Due to the reduction potential of
these transformations, this theory may enable overapproximate
techniques to yield exponentially tighter diameter bounds."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..netlist import GateType, Netlist
from ..resilience import Budget
from .record import TransformChain
from .theory import back_translate

if False:  # pragma: no cover - import-cycle-free type hints only
    from ..transform.redundancy import SweepConfig  # noqa: F401

#: Trivial-target statuses.
BOUNDED = "bounded"
PROVEN = "proven"  # target reduced to constant 0: unreachable
TRIVIAL_HIT = "trivial-hit"  # target reduced to constant 1


@dataclass
class TargetReport:
    """Per-target outcome of a TBV run."""

    target: int
    name: Optional[str]
    status: str
    transformed_target: Optional[int] = None
    transformed_bound: Optional[int] = None
    bound: Optional[int] = None


@dataclass
class EngineResult:
    """Outcome of a full TBV run over all targets."""

    chain: TransformChain
    reports: List[TargetReport] = field(default_factory=list)

    @property
    def netlist(self) -> Netlist:
        """The final (fully transformed) netlist."""
        return self.chain.netlist

    def useful(self, threshold: int = 50) -> List[TargetReport]:
        """The paper's ``T'``: targets with a bound below ``threshold``
        (discharged targets count as bound 0)."""
        out = []
        for r in self.reports:
            if r.status == PROVEN:
                out.append(r)
            elif r.bound is not None and r.bound < threshold:
                out.append(r)
        return out

    def average_bound(self, threshold: int = 50) -> float:
        """Average back-translated bound over ``T'`` (the table metric)."""
        useful = self.useful(threshold)
        if not useful:
            return 0.0
        return sum(r.bound or 0 for r in useful) / len(useful)


def _is_constant(net: Netlist, vid: int) -> Optional[int]:
    gate = net.gate(vid)
    if gate.type is GateType.CONST0:
        return 0
    if gate.type is GateType.NOT and \
            net.gate(gate.fanins[0]).type is GateType.CONST0:
        return 1
    return None


class TBVEngine:
    """Applies a transformation strategy and bounds target diameters.

    ``strategy`` is a comma-separated pipeline over the tokens ``COM``
    (redundancy removal), ``STRASH`` (structural-hashing-only
    redundancy removal via an AIG round-trip), ``RET`` (min-register
    normalized retiming), ``COI`` (cone-of-influence reduction),
    ``PHASE`` (phase abstraction) and ``CSLOW[:<c>]`` (c-slow
    abstraction; the factor is inferred when omitted).  ``bounder``
    computes a per-target diameter bound on the *final* netlist and
    defaults to the structural technique of [7]; any engine with the
    same signature may be plugged in — the theory is agnostic.
    """

    def __init__(
        self,
        strategy: str = "COM,RET,COM",
        bounder: Optional[Callable[[Netlist, int], int]] = None,
        sweep_config: Optional["SweepConfig"] = None,
        refine_gc_limit: int = 0,
    ) -> None:
        self.strategy = [tok.strip().upper()
                         for tok in strategy.split(",") if tok.strip()]
        self.bounder = bounder
        self.sweep_config = sweep_config
        self.refine_gc_limit = refine_gc_limit

    def transform(self, net: Netlist,
                  budget: Optional[Budget] = None) -> TransformChain:
        """Apply the strategy, returning the provenance chain.

        ``budget`` is checked between strategy tokens (raising
        :class:`repro.resilience.ResourceExhausted` /
        :class:`repro.resilience.Cancelled`) and threaded into the
        budget-aware transforms; an exhausted COM degrades to fewer
        merges rather than failing.
        """
        from ..transform.coi import coi_reduction
        from ..transform.cslow import cslow_abstract
        from ..transform.phase import phase_abstract
        from ..transform.redundancy import redundancy_removal
        from ..transform.retime import retime
        from ..transform.strash import strash

        chain = TransformChain.identity(net)
        for token in self.strategy:
            if budget is not None:
                budget.check()
            if token == "COM":
                result = redundancy_removal(chain.netlist,
                                            config=self.sweep_config,
                                            budget=budget)
            elif token == "STRASH":
                result = strash(chain.netlist)
            elif token == "RET":
                result = retime(chain.netlist)
            elif token == "COI":
                result = coi_reduction(chain.netlist)
            elif token == "PHASE":
                result = phase_abstract(chain.netlist)
            elif token.startswith("CSLOW"):
                _, _, arg = token.partition(":")
                result = cslow_abstract(chain.netlist,
                                        c=int(arg) if arg else None)
            else:
                raise ValueError(f"unknown strategy token {token!r}")
            chain = chain.extend(result)
        return chain

    def _skew_free(self, chain: TransformChain, target: int) -> bool:
        """True when the chain views ``target`` without temporal skew.

        A constant-0 *transformed* target proves the original target
        unreachable only then: a retimed target with lag ``-i`` skips
        its first ``i`` time-steps (they live in the retiming stump),
        and a folded target only witnesses one phase, so a constant-0
        observation there is not a proof — merely a bound of 1 to be
        back-translated (Theorems 2/3 still make the BMC window
        sound).
        """
        from .record import StepKind

        vid: Optional[int] = target
        for step in chain.steps:
            if vid is None:
                return True
            if step.kind is StepKind.RETIME:
                if step.lags.get(vid, 0) != 0:
                    return False
            elif step.kind is not StepKind.TRACE_EQUIVALENT:
                return False
            vid = step.target_map.get(vid)
        return True

    def run(self, net: Netlist,
            budget: Optional[Budget] = None) -> EngineResult:
        """Transform, bound every target, and back-translate.

        The bounding stage itself is never aborted by ``budget`` (the
        default structural bounder always terminates); the budget
        governs the transformation pipeline and the optional GC
        refinement only.
        """
        from ..diameter.structural import StructuralAnalysis

        chain = self.transform(net, budget=budget)
        final = chain.netlist
        analysis: Optional[StructuralAnalysis] = None
        if self.bounder is None:
            analysis = StructuralAnalysis(
                final, refine_gc_limit=self.refine_gc_limit,
                budget=budget)
        result = EngineResult(chain=chain)
        for target in net.targets:
            name = net.gate(target).name
            mapped = chain.resolve_target(target)
            if mapped is None:
                result.reports.append(TargetReport(
                    target, name, PROVEN, None, None, 0))
                continue
            const = _is_constant(final, mapped)
            if const == 0:
                if self._skew_free(chain, target):
                    result.reports.append(TargetReport(
                        target, name, PROVEN, mapped, 0, 0))
                else:
                    # Constant under skew: a 1-step bound on the
                    # transformed netlist, back-translated as usual.
                    result.reports.append(TargetReport(
                        target, name, BOUNDED, mapped, 1,
                        back_translate(chain, target, 1)))
                continue
            if const == 1:
                result.reports.append(TargetReport(
                    target, name, TRIVIAL_HIT, mapped, 1,
                    back_translate(chain, target, 1)))
                continue
            if analysis is not None:
                raw = analysis.bound(mapped)
            else:
                raw = self.bounder(final, mapped)
            result.reports.append(TargetReport(
                target, name, BOUNDED, mapped, raw,
                back_translate(chain, target, raw)))
        return result
