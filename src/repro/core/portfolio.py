"""Strategy portfolios: attempt several transformation pipelines.

Motivation 2 of Section 1: transformations "may vary both resource
requirements and tightness of the obtained approximation ... this
research constitutes yet another practical mechanism which may be
attempted to discharge difficult verification problems."  In practice
one therefore runs a *portfolio* of strategies and keeps, per target,
the best back-translated bound any of them produced — each is sound,
so their minimum is sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..netlist import Netlist, NetlistError
from ..resilience import Budget, Cancelled, EngineFailure, \
    ResourceExhausted
from .engine import EngineResult, PROVEN, TBVEngine

#: A sensible default portfolio (cheap to expensive).
DEFAULT_STRATEGIES = ("", "STRASH", "COM", "RET", "COM,RET,COM")


@dataclass
class StrategyOutcome:
    """One strategy's run: its result or the error that stopped it."""

    strategy: str
    result: Optional[EngineResult] = None
    error: Optional[str] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the strategy completed without error."""
        return self.result is not None


@dataclass
class PortfolioResult:
    """All strategy outcomes plus per-target winners."""

    net: Netlist
    outcomes: List[StrategyOutcome] = field(default_factory=list)

    def best(self, target: int) -> Tuple[Optional[int], Optional[str]]:
        """The tightest sound bound for ``target`` and its strategy.

        Returns ``(0, strategy)`` for proven targets and
        ``(None, None)`` when no strategy produced a bound.
        """
        best_bound: Optional[int] = None
        best_strategy: Optional[str] = None
        for outcome in self.outcomes:
            if not outcome.ok:
                continue
            for report in outcome.result.reports:
                if report.target != target:
                    continue
                bound = 0 if report.status == PROVEN else report.bound
                if bound is None:
                    continue
                if best_bound is None or bound < best_bound:
                    best_bound = bound
                    best_strategy = outcome.strategy
        return best_bound, best_strategy

    def best_per_target(self) -> Dict[int, Tuple[Optional[int],
                                                 Optional[str]]]:
        """Best ``(bound, strategy)`` for every target."""
        return {t: self.best(t) for t in self.net.targets}

    def useful(self, threshold: int = 50) -> int:
        """Targets whose *best* bound beats ``threshold`` — the
        portfolio's |T'| (>= any single strategy's)."""
        count = 0
        for t in self.net.targets:
            bound, _ = self.best(t)
            if bound is not None and bound < threshold:
                count += 1
        return count

    def summary(self) -> str:
        """A human-readable multi-line summary."""
        lines = [f"portfolio over {self.net.name}: "
                 f"{len(self.net.targets)} target(s)"]
        for outcome in self.outcomes:
            label = outcome.strategy or "(none)"
            if not outcome.ok:
                lines.append(f"  {label:<14} failed: {outcome.error}")
                continue
            useful = len(outcome.result.useful())
            lines.append(
                f"  {label:<14} |T'| = {useful:<4} "
                f"({outcome.seconds * 1e3:7.1f} ms)")
        lines.append(f"  {'portfolio':<14} |T'| = {self.useful()}")
        return "\n".join(lines)


def compare_strategies(
    net: Netlist,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    sweep_config=None,
    refine_gc_limit: int = 0,
    budget: Optional[Budget] = None,
    jobs: int = 1,
) -> PortfolioResult:
    """Run every strategy; failures (e.g. CSLOW on a non-c-slow
    netlist, an engine crash, an exhausted per-strategy budget) are
    recorded, not raised — each strategy's bound is independently
    sound, so the portfolio survives any subset of them.

    Each strategy runs under the obs span ``portfolio/<strategy>``, so
    per-strategy wall-time and the solver effort spent inside it land
    in the active registry; ``StrategyOutcome.seconds`` is the span's
    own duration (monotonic).

    ``budget`` governs the whole portfolio: each strategy runs on an
    equal :meth:`~repro.resilience.Budget.slice` of whatever remains,
    strategies are skipped outright (with a recorded outcome and a
    ``portfolio.budget_skips`` counter) once the shared pool is dry,
    and cancellation raises :class:`Cancelled` immediately.

    ``jobs > 1`` fans the strategies across a process pool
    (:mod:`repro.parallel`): outcomes come back in strategy order —
    the per-target minima, and therefore every table derived from
    them, are identical at any ``jobs`` value — each worker gets an
    equal pre-split budget slice, a crashed worker becomes a failed
    outcome (never an aborted portfolio), and worker telemetry lands
    under ``parallel/portfolio/<strategy>``.
    """
    if jobs > 1:
        return _compare_strategies_parallel(
            net, strategies, sweep_config, refine_gc_limit, budget,
            jobs)
    portfolio = PortfolioResult(net=net)
    reg = obs.get_registry()
    with reg.span("portfolio"):
        for i, strategy in enumerate(strategies):
            label = strategy or "(none)"
            sub: Optional[Budget] = None
            if budget is not None:
                if budget.cancelled:
                    raise Cancelled(budget_name=budget.name)
                reason = budget.exhausted()
                if reason is not None:
                    reg.counter("portfolio.budget_skips")
                    portfolio.outcomes.append(StrategyOutcome(
                        strategy=strategy,
                        error=f"skipped: budget exhausted ({reason})"))
                    continue
                # Equal share of the remaining pool per pending
                # strategy, so an expensive early pipeline cannot
                # starve the rest of the portfolio.
                sub = budget.slice(1.0 / (len(strategies) - i),
                                   name=f"portfolio[{label}]")
            try:
                with reg.span(label) as strategy_span:
                    result = TBVEngine(
                        strategy, sweep_config=sweep_config,
                        refine_gc_limit=refine_gc_limit).run(
                            net, budget=sub)
                portfolio.outcomes.append(StrategyOutcome(
                    strategy=strategy, result=result,
                    seconds=strategy_span.seconds))
            except (NetlistError, ValueError, EngineFailure,
                    ResourceExhausted) as exc:
                reg.counter("portfolio.failures")
                portfolio.outcomes.append(StrategyOutcome(
                    strategy=strategy, error=str(exc),
                    seconds=strategy_span.seconds))
    return portfolio


def _compare_strategies_parallel(
    net: Netlist,
    strategies: Sequence[str],
    sweep_config,
    refine_gc_limit: int,
    budget: Optional[Budget],
    jobs: int,
) -> PortfolioResult:
    """The ``jobs > 1`` fan-out of :func:`compare_strategies`."""
    from ..parallel import ParallelExecutor
    from ..parallel.workers import run_strategy

    portfolio = PortfolioResult(net=net)
    reg = obs.get_registry()
    payloads = [{"net": net, "strategy": strategy,
                 "sweep_config": sweep_config,
                 "refine_gc_limit": refine_gc_limit}
                for strategy in strategies]
    labels = [strategy or "(none)" for strategy in strategies]
    with reg.span("portfolio"):
        executor = ParallelExecutor(jobs=jobs, name="portfolio")
        outcomes = executor.map(run_strategy, payloads, budget=budget,
                                labels=labels)
        for strategy, outcome in zip(strategies, outcomes):
            if outcome.ok:
                portfolio.outcomes.append(outcome.value)
            else:
                # Worker crash or typed error: the same failed-outcome
                # shape the sequential loop records.
                reg.counter("portfolio.failures")
                portfolio.outcomes.append(StrategyOutcome(
                    strategy=strategy, error=str(outcome.error),
                    seconds=outcome.seconds))
    return portfolio
