"""The paper's contribution: provenance records, Theorems 1-4, TBV engine."""

from .record import StepKind, TransformChain, TransformResult, TransformStep
from .theory import (
    UnsoundTransformError,
    back_translate,
    back_translate_step,
    chain_is_sound,
    theorem1_trace_equivalent,
    theorem2_retiming,
    theorem3_state_folding,
    theorem4_target_enlargement,
)
from .prove import FALSIFIED, ProofResult, UNKNOWN, prove
from .portfolio import (
    DEFAULT_STRATEGIES,
    PortfolioResult,
    StrategyOutcome,
    compare_strategies,
)
from .engine import (
    BOUNDED,
    EngineResult,
    PROVEN,
    TBVEngine,
    TRIVIAL_HIT,
    TargetReport,
)

__all__ = [
    "BOUNDED",
    "DEFAULT_STRATEGIES",
    "FALSIFIED",
    "PortfolioResult",
    "ProofResult",
    "UNKNOWN",
    "prove",
    "StrategyOutcome",
    "compare_strategies",
    "EngineResult",
    "PROVEN",
    "StepKind",
    "TBVEngine",
    "TRIVIAL_HIT",
    "TargetReport",
    "TransformChain",
    "TransformResult",
    "TransformStep",
    "UnsoundTransformError",
    "back_translate",
    "back_translate_step",
    "chain_is_sound",
    "theorem1_trace_equivalent",
    "theorem2_retiming",
    "theorem3_state_folding",
    "theorem4_target_enlargement",
]
