"""A top-level verification manager: ``prove(net, target)``.

Orchestrates everything the library implements into the decision
procedure the paper motivates: try transformation-based diameter
bounds first (a small bound turns BMC into a full decision procedure);
quickly search for shallow counterexamples; fall back to k-induction
and localization refinement when bounds stay impractical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .. import obs
from ..netlist import Netlist
from ..transform.localize_cegar import localization_refinement
from ..unroll import Counterexample, FALSIFIED as BMCFALSIFIED, \
    PROVEN as BMC_PROVEN, bmc, k_induction
from .portfolio import DEFAULT_STRATEGIES, compare_strategies

#: Final verdicts.
PROVEN = "proven"
FALSIFIED = "falsified"
UNKNOWN = "unknown"


@dataclass
class ProofResult:
    """Outcome of :func:`prove` for a single target."""

    status: str
    method: str
    target: int
    bound: Optional[int] = None
    strategy: Optional[str] = None
    counterexample: Optional[Counterexample] = None
    seconds: float = 0.0
    log: List[str] = field(default_factory=list)


def prove(
    net: Netlist,
    target: Optional[int] = None,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    max_complete_depth: int = 64,
    quick_bmc_depth: int = 10,
    induction_k: int = 8,
    sweep_config=None,
    refine_gc_limit: int = 6,
) -> ProofResult:
    """Decide ``AG(!target)`` with the full engine stack.

    1. run the strategy portfolio; keep the best back-translated bound;
    2. if the bound fits ``max_complete_depth``, discharge completely
       with BMC (Theorem 1-4 soundness makes this a decision);
    3. otherwise search for shallow counterexamples, then attempt
       k-induction, then localization refinement;
    4. report ``unknown`` with the best bound when everything passes.
    """
    if target is None:
        if not net.targets:
            raise ValueError("netlist has no targets")
        target = net.targets[0]
    watch = obs.stopwatch()
    reg = obs.get_registry()
    log: List[str] = []

    with reg.span("prove"):
        scoped = net.copy()
        scoped.targets = [target]
        portfolio = compare_strategies(scoped, strategies=strategies,
                                       sweep_config=sweep_config,
                                       refine_gc_limit=refine_gc_limit)
        bound, strategy = portfolio.best(target)
        log.append(f"portfolio best bound: {bound} via "
                   f"{strategy or '(none)'}")
        if bound == 0:
            reg.counter("prove.proven.transformation")
            return ProofResult(PROVEN, "transformation", target, bound=0,
                               strategy=strategy, log=log,
                               seconds=watch.elapsed)
        if bound is not None and bound <= max_complete_depth:
            with reg.span("complete-bmc"):
                check = bmc(net, target, max_depth=bound,
                            complete_bound=bound)
            log.append(f"complete BMC to {bound}: {check.status}")
            if check.status == BMC_PROVEN:
                reg.counter("prove.proven.complete-bmc")
                return ProofResult(PROVEN, "complete-bmc", target,
                                   bound=bound, strategy=strategy,
                                   log=log, seconds=watch.elapsed)
            if check.status == BMCFALSIFIED:
                reg.counter("prove.falsified.complete-bmc")
                return ProofResult(FALSIFIED, "complete-bmc", target,
                                   bound=bound, strategy=strategy,
                                   counterexample=check.counterexample,
                                   log=log, seconds=watch.elapsed)

        with reg.span("quick-bmc"):
            quick = bmc(net, target, max_depth=quick_bmc_depth)
        log.append(f"quick BMC to {quick_bmc_depth}: {quick.status}")
        if quick.status == BMCFALSIFIED:
            reg.counter("prove.falsified.bmc")
            return ProofResult(FALSIFIED, "bmc", target, bound=bound,
                               counterexample=quick.counterexample,
                               log=log, seconds=watch.elapsed)

        with reg.span("k-induction"):
            induct = k_induction(net, target, max_k=induction_k)
        log.append(f"k-induction to k={induction_k}: {induct.status}")
        if induct.status == BMC_PROVEN:
            reg.counter("prove.proven.k-induction")
            return ProofResult(PROVEN, "k-induction", target,
                               bound=bound, log=log,
                               seconds=watch.elapsed)
        if induct.status == BMCFALSIFIED:
            reg.counter("prove.falsified.k-induction")
            return ProofResult(FALSIFIED, "k-induction", target,
                               bound=bound,
                               counterexample=induct.counterexample,
                               log=log, seconds=watch.elapsed)

        with reg.span("localization"):
            cegar = localization_refinement(net, target,
                                            max_depth=max_complete_depth)
        log.append(f"localization refinement: {cegar.status} "
                   f"({cegar.iterations} iteration(s))")
        if cegar.status == "proven":
            reg.counter("prove.proven.localization")
            return ProofResult(PROVEN, "localization", target,
                               bound=bound, log=log,
                               seconds=watch.elapsed)
        if cegar.status == "falsified":
            with reg.span("localization"):
                concrete = bmc(
                    net, target,
                    max_depth=(cegar.counterexample_depth or 0) + 1)
            if concrete.status == BMCFALSIFIED:
                reg.counter("prove.falsified.localization")
                return ProofResult(FALSIFIED, "localization", target,
                                   bound=bound,
                                   counterexample=concrete.counterexample,
                                   log=log, seconds=watch.elapsed)

    reg.counter("prove.unknown")
    return ProofResult(UNKNOWN, "exhausted", target, bound=bound,
                       strategy=strategy, log=log,
                       seconds=watch.elapsed)
