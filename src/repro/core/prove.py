"""A top-level verification manager: ``prove(net, target)``.

Orchestrates everything the library implements into the decision
procedure the paper motivates: try transformation-based diameter
bounds first (a small bound turns BMC into a full decision procedure);
quickly search for shallow counterexamples; fall back to k-induction
and localization refinement when bounds stay impractical.

Resource governance (Layer 0.6): ``prove`` accepts a
:class:`repro.resilience.Budget` and slices it across its phases.  On
exhaustion or an engine failure it *degrades, never lies*: the result
falls back to the always-terminating structural bounder on the
original netlist — the only fallback that is sound for diameter
(approximation-derived bounds do not back-translate, Sections
3.5/3.6) — with ``degraded=True`` and a structured
``exhaustion_reason``.  Cooperative cancellation
(:class:`repro.resilience.Cancelled`) always propagates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .. import obs
from ..cert import certification_enabled
from ..netlist import Netlist
from ..resilience import Budget, Cancelled, CertificationFailure, \
    EngineFailure
from ..sat import flat_enabled, use_flat
from ..transform.localize_cegar import localization_refinement
from ..unroll import Counterexample, FALSIFIED as BMCFALSIFIED, \
    PROVEN as BMC_PROVEN, bmc, k_induction
from .portfolio import DEFAULT_STRATEGIES, compare_strategies

#: Final verdicts.
PROVEN = "proven"
FALSIFIED = "falsified"
UNKNOWN = "unknown"


@dataclass
class ProofResult:
    """Outcome of :func:`prove` for a single target.

    ``degraded`` marks a run that hit its resource budget or an engine
    failure and fell back to the structural bounder; the reported
    ``bound`` is still sound.  ``exhaustion_reason`` carries the
    structured cause (one of
    :data:`repro.resilience.EXHAUSTION_REASONS`, ``"failure"`` for an
    engine crash, or ``"certification"`` when a verdict failed its
    proof/witness check on both solver cores).
    """

    status: str
    method: str
    target: int
    bound: Optional[int] = None
    strategy: Optional[str] = None
    counterexample: Optional[Counterexample] = None
    seconds: float = 0.0
    log: List[str] = field(default_factory=list)
    degraded: bool = False
    exhaustion_reason: Optional[str] = None


def _structural_fallback(net: Netlist, target: int,
                         best: Optional[int]) -> Optional[int]:
    """The sound degradation bound: the structural analysis of the
    *original* netlist, combined with any bound already in hand.

    Never budgeted — it must terminate for degradation to be graceful
    — and never replaced by an approximation engine: localization /
    c-slow bounds do not back-translate (Sections 3.5/3.6), so using
    them here would be unsound.
    """
    try:
        from ..diameter.structural import StructuralAnalysis

        fallback = StructuralAnalysis(net).bound(target)
    except Cancelled:
        raise
    except Exception:  # pragma: no cover - structural never raises
        return best
    if best is None:
        return fallback
    return min(best, fallback)


def _race_probes(net: Netlist, target: int, quick_bmc_depth: int,
                 induction_k: int, budget: Optional[Budget],
                 jobs: int, cubes: bool):
    """Run the quick-BMC and k-induction probes as concurrent workers.

    Returns their :class:`repro.parallel.WorkerOutcome` pair in fixed
    ``(quick, induction)`` order regardless of completion order; the
    caller merges them with the sequential priority (falsification
    beats induction).  A crashed worker surfaces as an outcome whose
    ``error`` is an :class:`EngineFailure`, which the caller maps to
    the same degradation path as an in-process engine crash.
    """
    from ..parallel import ParallelExecutor
    from ..parallel.workers import run_bmc_probe, run_induction_probe

    # The certification and cube toggles are captured in the parent
    # and shipped in the payload: workers must not depend on
    # inheriting process globals across the spawn/fork boundary.
    certify = certification_enabled()
    executor = ParallelExecutor(jobs=min(jobs, 2), name="prove")
    tasks = [
        (run_bmc_probe,
         {"net": net, "target": target, "max_depth": quick_bmc_depth,
          "certify": certify, "use_cubes": cubes}),
        (run_induction_probe,
         {"net": net, "target": target, "max_k": induction_k,
          "certify": certify, "use_cubes": cubes}),
    ]
    outcomes = executor.map_tasks(tasks, budget=budget,
                                  labels=["quick-bmc", "k-induction"])
    return outcomes[0], outcomes[1]


def _cert_retry(reg, budget: Optional[Budget], phase: str, call):
    """One-shot cross-core arbitration after a certification failure.

    The failed verdict came from the current solver core, so the most
    informative retry is the *other* core: a genuine solver bug fails
    again (the checker is core-independent) while a transient flake
    recovers.  The retry runs under whatever budget survives, after a
    tiny budget-capped backoff; with the budget already exhausted the
    arbitration gives up immediately.  A second
    :class:`CertificationFailure` (or any :class:`EngineFailure`)
    propagates to the caller's degradation path.
    """
    reg.counter("cert.retried")
    reg.event("cert.retry", phase=phase,
              retry_core="legacy" if flat_enabled() else "flat")
    delay = 0.05
    if budget is not None:
        if budget.cancelled:
            raise Cancelled(budget_name=budget.name)
        reason = budget.exhausted()
        if reason is not None:
            raise CertificationFailure(
                phase, stage="arbitration",
                message=f"budget exhausted ({reason}) before the "
                        "cross-core retry")
        remaining = budget.remaining_seconds()
        if remaining is not None:
            delay = max(0.0, min(delay, remaining * 0.1))
    if delay:
        time.sleep(delay)
    with use_flat(not flat_enabled()):
        result = call()
    reg.counter("cert.recovered")
    return result


def _run_certified(reg, budget: Optional[Budget], phase: str, call):
    """Run an engine call, arbitrating one certification failure."""
    try:
        return call()
    except CertificationFailure:
        return _cert_retry(reg, budget, phase, call)


def prove(
    net: Netlist,
    target: Optional[int] = None,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    max_complete_depth: int = 64,
    quick_bmc_depth: int = 10,
    induction_k: int = 8,
    sweep_config=None,
    refine_gc_limit: int = 6,
    budget: Optional[Budget] = None,
    jobs: int = 1,
    use_cubes: Optional[bool] = None,
) -> ProofResult:
    """Decide ``AG(!target)`` with the full engine stack.

    1. run the strategy portfolio; keep the best back-translated bound;
    2. if the bound fits ``max_complete_depth``, discharge completely
       with BMC (Theorem 1-4 soundness makes this a decision);
    3. otherwise search for shallow counterexamples, then attempt
       k-induction, then localization refinement;
    4. report ``unknown`` with the best bound when everything passes.

    ``budget`` governs the whole call: the portfolio runs on a 40%
    slice (so the fallback phases always have resources left), every
    later phase checks the remaining pool before starting, and any
    exhaustion or :class:`EngineFailure` degrades to the structural
    bound (see the module docstring) instead of raising.  Only
    :class:`Cancelled` propagates.

    Certification arbitration: when verdict certification is armed
    (:func:`repro.cert.use_certification` or ``REPRO_CERT``), a
    :class:`repro.resilience.CertificationFailure` from BMC or
    k-induction triggers ONE retry of that engine call on the other
    solver core under the surviving budget (``cert.retried`` /
    ``cert.recovered`` counters); a second failure degrades to the
    structural bound with ``exhaustion_reason="certification"`` —
    the same never-lie posture as an engine crash.

    ``jobs > 1`` parallelizes the independent engine calls
    (:mod:`repro.parallel`): the portfolio strategies fan out across
    the pool, and the quick-BMC / k-induction probes race as two
    concurrent workers whose results merge in the sequential priority
    order (falsification first, then induction), so the verdict —
    though not the wall-clock — is the sequential one.

    ``use_cubes`` (None = the global :func:`repro.sat.use_cubes`
    toggle) arms cube-and-conquer inside every BMC / k-induction call
    this manager issues, including the racing probes — hard frame
    queries split into cube sets raced with first-win cancellation
    (:mod:`repro.sat.cube`).  Verdicts and bounds are unchanged.
    """
    from ..sat import cube as _cube

    if target is None:
        if not net.targets:
            raise ValueError("netlist has no targets")
        target = net.targets[0]
    cubes = _cube.cubes_enabled() if use_cubes is None else use_cubes
    watch = obs.stopwatch()
    reg = obs.get_registry()
    log: List[str] = []

    def degraded(best: Optional[int], strategy: Optional[str],
                 reason: str, detail: str) -> ProofResult:
        reg.counter("resilience.downgrades")
        reg.event("resilience.downgrade", target=target,
                  reason=reason, detail=detail)
        log.append(f"degraded ({reason}): {detail}; "
                   "falling back to structural bound")
        bound = _structural_fallback(net, target, best)
        return ProofResult(UNKNOWN, "structural-fallback", target,
                           bound=bound, strategy=strategy, log=log,
                           seconds=watch.elapsed, degraded=True,
                           exhaustion_reason=reason)

    def gate(best: Optional[int], strategy: Optional[str],
             phase: str) -> Optional[ProofResult]:
        """Pre-phase budget check; a result means stop degraded."""
        if budget is None:
            return None
        if budget.cancelled:
            raise Cancelled(budget_name=budget.name)
        reason = budget.exhausted()
        if reason is None:
            return None
        return degraded(best, strategy, reason,
                        f"budget exhausted before {phase}")

    with reg.span("prove"):
        scoped = net.copy()
        scoped.targets = [target]
        # The portfolio gets a capped share so the completion phases
        # are never starved by a pathological transformation pipeline.
        portfolio_budget = None if budget is None else \
            budget.slice(0.4, name="prove/portfolio")
        portfolio = compare_strategies(scoped, strategies=strategies,
                                       sweep_config=sweep_config,
                                       refine_gc_limit=refine_gc_limit,
                                       budget=portfolio_budget,
                                       jobs=jobs)
        bound, strategy = portfolio.best(target)
        log.append(f"portfolio best bound: {bound} via "
                   f"{strategy or '(none)'}")
        if bound == 0:
            reg.counter("prove.proven.transformation")
            return ProofResult(PROVEN, "transformation", target, bound=0,
                               strategy=strategy, log=log,
                               seconds=watch.elapsed)
        if bound is not None and bound <= max_complete_depth:
            stop = gate(bound, strategy, "complete BMC")
            if stop is not None:
                return stop
            try:
                with reg.span("complete-bmc"):
                    check = _run_certified(
                        reg, budget, "complete-bmc",
                        lambda: bmc(net, target, max_depth=bound,
                                    complete_bound=bound,
                                    budget=budget, use_cubes=cubes))
            except CertificationFailure as exc:
                return degraded(bound, strategy, "certification",
                                str(exc))
            except EngineFailure as exc:
                return degraded(bound, strategy, "failure", str(exc))
            log.append(f"complete BMC to {bound}: {check.status}")
            if check.status == BMC_PROVEN:
                reg.counter("prove.proven.complete-bmc")
                return ProofResult(PROVEN, "complete-bmc", target,
                                   bound=bound, strategy=strategy,
                                   log=log, seconds=watch.elapsed)
            if check.status == BMCFALSIFIED:
                reg.counter("prove.falsified.complete-bmc")
                return ProofResult(FALSIFIED, "complete-bmc", target,
                                   bound=bound, strategy=strategy,
                                   counterexample=check.counterexample,
                                   log=log, seconds=watch.elapsed)

        stop = gate(bound, strategy, "quick BMC")
        if stop is not None:
            return stop
        if jobs > 1:
            # Engine race: the probes are independent, so they run as
            # concurrent workers; the merge below inspects them in the
            # sequential priority order (falsification, induction), so
            # the verdict is deterministic at any jobs value.
            quick_out, induct_out = _race_probes(
                net, target, quick_bmc_depth, induction_k, budget,
                jobs, cubes)
            if isinstance(quick_out.error, CertificationFailure):
                # Worker-side certification failure: arbitrate
                # in-process on the other core, like the sequential
                # path would.
                try:
                    quick = _cert_retry(
                        reg, budget, "quick-bmc",
                        lambda: bmc(net, target,
                                    max_depth=quick_bmc_depth,
                                    budget=budget, use_cubes=cubes))
                except CertificationFailure as exc:
                    return degraded(bound, strategy, "certification",
                                    str(exc))
                except EngineFailure as exc:
                    return degraded(bound, strategy, "failure",
                                    str(exc))
            elif quick_out.error is not None:
                return degraded(bound, strategy, "failure",
                                str(quick_out.error))
            else:
                quick = quick_out.value
        else:
            try:
                with reg.span("quick-bmc"):
                    quick = _run_certified(
                        reg, budget, "quick-bmc",
                        lambda: bmc(net, target,
                                    max_depth=quick_bmc_depth,
                                    budget=budget, use_cubes=cubes))
            except CertificationFailure as exc:
                return degraded(bound, strategy, "certification",
                                str(exc))
            except EngineFailure as exc:
                return degraded(bound, strategy, "failure", str(exc))
        log.append(f"quick BMC to {quick_bmc_depth}: {quick.status}")
        if quick.status == BMCFALSIFIED:
            reg.counter("prove.falsified.bmc")
            return ProofResult(FALSIFIED, "bmc", target, bound=bound,
                               counterexample=quick.counterexample,
                               log=log, seconds=watch.elapsed)

        if jobs > 1:
            if isinstance(induct_out.error, CertificationFailure):
                try:
                    induct = _cert_retry(
                        reg, budget, "k-induction",
                        lambda: k_induction(net, target,
                                            max_k=induction_k,
                                            budget=budget,
                                            use_cubes=cubes))
                except CertificationFailure as exc:
                    return degraded(bound, strategy, "certification",
                                    str(exc))
                except EngineFailure as exc:
                    return degraded(bound, strategy, "failure",
                                    str(exc))
            elif induct_out.error is not None:
                return degraded(bound, strategy, "failure",
                                str(induct_out.error))
            else:
                induct = induct_out.value
        else:
            stop = gate(bound, strategy, "k-induction")
            if stop is not None:
                return stop
            try:
                with reg.span("k-induction"):
                    induct = _run_certified(
                        reg, budget, "k-induction",
                        lambda: k_induction(net, target,
                                            max_k=induction_k,
                                            budget=budget,
                                            use_cubes=cubes))
            except CertificationFailure as exc:
                return degraded(bound, strategy, "certification",
                                str(exc))
            except EngineFailure as exc:
                return degraded(bound, strategy, "failure", str(exc))
        log.append(f"k-induction to k={induction_k}: {induct.status}")
        if induct.status == BMC_PROVEN:
            reg.counter("prove.proven.k-induction")
            return ProofResult(PROVEN, "k-induction", target,
                               bound=bound, log=log,
                               seconds=watch.elapsed)
        if induct.status == BMCFALSIFIED:
            reg.counter("prove.falsified.k-induction")
            return ProofResult(FALSIFIED, "k-induction", target,
                               bound=bound,
                               counterexample=induct.counterexample,
                               log=log, seconds=watch.elapsed)

        stop = gate(bound, strategy, "localization")
        if stop is not None:
            return stop
        try:
            with reg.span("localization"):
                cegar = localization_refinement(
                    net, target, max_depth=max_complete_depth,
                    budget=budget)
            log.append(f"localization refinement: {cegar.status} "
                       f"({cegar.iterations} iteration(s))")
            if cegar.status == "proven":
                reg.counter("prove.proven.localization")
                return ProofResult(PROVEN, "localization", target,
                                   bound=bound, log=log,
                                   seconds=watch.elapsed)
            if cegar.status == "falsified":
                with reg.span("localization"):
                    concrete = bmc(
                        net, target,
                        max_depth=(cegar.counterexample_depth or 0) + 1,
                        budget=budget)
                if concrete.status == BMCFALSIFIED:
                    reg.counter("prove.falsified.localization")
                    return ProofResult(
                        FALSIFIED, "localization", target, bound=bound,
                        counterexample=concrete.counterexample,
                        log=log, seconds=watch.elapsed)
        except CertificationFailure as exc:
            # Localization re-runs concrete BMC internally; its
            # certification failures degrade without a core retry
            # (the refinement loop is not idempotent enough to
            # replay wholesale).
            return degraded(bound, strategy, "certification",
                            str(exc))
        except EngineFailure as exc:
            return degraded(bound, strategy, "failure", str(exc))

    reg.counter("prove.unknown")
    return ProofResult(UNKNOWN, "exhausted", target, bound=bound,
                       strategy=strategy, log=log,
                       seconds=watch.elapsed)
