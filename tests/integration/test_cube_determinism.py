"""Integration: cube-and-conquer determinism and the jobs=2 race.

The third PR 9 satellite: experiment tables must be byte-identical and
``prove`` verdicts/bounds identical at jobs ∈ {1, 2, 4} with cubes on
or off — the cube race changes wall clock, never answers.  The pooled
class is the tier-1 jobs=2 cube smoke (fifth satellite): a genuinely
multi-process cube race over a pigeonhole instance, both polarities.
"""

import pytest

from repro import obs
from repro.core.prove import prove
from repro.experiments.runner import format_table
from repro.experiments.table1 import run as run_table1
from repro.gen import iscas89
from repro.netlist import s27
from repro.sat import SAT, UNSAT
from repro.sat.cnf import neg, pos
from repro.sat.cube import solve_cubes, use_cube_config, use_cubes
from repro.unroll import bmc

TITLE = "Table 1: ISCAS89 (profile-synthesized)"


def _php_clauses(holes):
    pigeons = holes + 1

    def var(i, j):
        return i * holes + j

    clauses = [[pos(var(i, j)) for j in range(holes)]
               for i in range(pigeons)]
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                clauses.append([neg(var(i1, j)), neg(var(i2, j))])
    return clauses


@pytest.mark.parallel
class TestCubeDeterminism:
    def test_table1_byte_identical_across_jobs_and_cubes(self):
        baseline = format_table(
            run_table1(scale=0.1, designs=["S27"], jobs=1), TITLE)
        for jobs in (1, 2, 4):
            with use_cubes(True), \
                    use_cube_config(conflict_threshold=8, cube_vars=2,
                                    jobs=jobs):
                rows = run_table1(scale=0.1, designs=["S27"],
                                  jobs=jobs)
            assert format_table(rows, TITLE) == baseline, \
                f"table diverged at jobs={jobs} with cubes on"

    def test_prove_verdict_and_bound_identical(self):
        net = s27()
        baseline = prove(net, jobs=1)
        for jobs in (1, 2):
            raced = prove(net, jobs=jobs, use_cubes=True)
            assert raced.status == baseline.status
            assert raced.method == baseline.method
            assert raced.bound == baseline.bound

    def test_bmc_with_cubes_matches_plain(self):
        # S298 at this scale is falsifiable and its frame queries are
        # hard enough that a 1-conflict threshold reliably splits.
        net = iscas89.generate("S298", scale=0.15)
        plain = bmc(net, max_depth=5)
        with use_cubes(True), \
                use_cube_config(conflict_threshold=1, cube_vars=2,
                                jobs=2):
            with obs.scoped(obs.Registry("t")) as reg:
                raced = bmc(net, max_depth=5)
                snap = reg.snapshot()
        assert raced.status == plain.status
        assert raced.depth_checked == plain.depth_checked
        if plain.counterexample is not None:
            assert raced.counterexample.depth == \
                plain.counterexample.depth
        assert snap["counters"].get("cube.engaged", 0) > 0, \
            "the cube path never engaged — the smoke is vacuous"


@pytest.mark.parallel
class TestPooledCubeRace:
    """Tier-1 jobs=2 smoke: real worker processes, both verdicts."""

    def test_unsat_requires_every_cube(self):
        clauses = _php_clauses(3)
        with obs.scoped(obs.Registry("t")) as reg:
            join = solve_cubes({"mode": "cnf", "clauses": clauses},
                               [(neg(0),), (pos(0),)], jobs=2)
            snap = reg.snapshot()
        assert join.result == UNSAT
        assert join.cubes == 2
        assert snap["counters"]["cube.unsat_joins"] == 1

    def test_sat_cube_wins_the_race(self):
        # Cube 0 is an UNSAT pigeonhole grind, cube 1 flips the
        # backdoor on and is trivially SAT: whichever worker finishes
        # first, the reported winner is the SAT cube's index.
        clauses = _php_clauses(3)
        backdoor = 4 * 3
        sat_clauses = [clause + [pos(backdoor)] for clause in clauses]
        sat_clauses.append([neg(backdoor), pos(backdoor + 1)])
        with obs.scoped(obs.Registry("t")) as reg:
            join = solve_cubes({"mode": "cnf", "clauses": sat_clauses},
                               [(neg(backdoor),), (pos(backdoor),)],
                               jobs=2)
            snap = reg.snapshot()
        assert join.result == SAT
        assert join.winner == 1
        assert snap["counters"]["cube.sat_wins"] == 1

    def test_certified_unsat_race_checks_every_proof(self):
        # Per-cube DRAT proofs are checked inside the workers; the
        # cert counters fold back un-prefixed, so a certified join
        # shows one check per cube.
        clauses = _php_clauses(3)
        with obs.scoped(obs.Registry("t")) as reg:
            join = solve_cubes({"mode": "cnf", "clauses": clauses,
                                "certify": True},
                               [(neg(0),), (pos(0),)], jobs=2)
            snap = reg.snapshot()
        assert join.result == UNSAT
        assert snap["counters"]["cert.checked"] >= 2
