"""Tier-1 smoke tests for the streaming trace layer end to end.

Covers the ISSUE 5 acceptance path: a tiny BMC run under
``REPRO_TRACE`` yields schema-valid JSONL and a Chrome-loadable
export; a ``jobs=2`` table run produces per-worker trace files that
stitch into one wall-clock-aligned timeline carrying BMC frame and
COM sweep-round progress events; and ``trace regress`` gates the
committed bench artifacts (report-only against the real pair, nonzero
exit on an injected slowdown).
"""

import copy
import json
import os
import subprocess
import sys

import pytest

from repro.experiments.table1 import run as run_table1
from repro.netlist import s27
from repro.obs import trace
from repro.tools.trace import main as trace_main
from repro.unroll import bmc

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                         "benchmarks")
BENCH_PR3 = os.path.join(BENCH_DIR, "BENCH_pr3.json")
BENCH_PR4 = os.path.join(BENCH_DIR, "BENCH_pr4.json")

#: Keys required on every trace record.
COMMON_KEYS = {"ty", "t", "pid", "tid", "trace"}
#: Per-type required keys (schema repro-trace-v1).
TYPE_KEYS = {
    "M": {"schema", "role", "epoch"},
    "B": {"path", "name"},
    "E": {"path", "name", "dur"},
    "C": {"name", "delta", "value"},
    "I": {"name", "fields"},
    "P": {"source", "fields"},
    "Q": {"fields"},
}


def _validate_schema(records):
    assert records, "empty trace"
    assert records[0]["ty"] == "M"
    assert records[0]["schema"] == trace.TRACE_SCHEMA
    for record in records:
        assert COMMON_KEYS <= set(record), record
        assert record["ty"] in TYPE_KEYS, record
        assert TYPE_KEYS[record["ty"]] <= set(record), record


@pytest.fixture(autouse=True)
def _tracing_off_before_and_after():
    trace.stop_trace()
    yield
    trace.stop_trace()


class TestBmcUnderTrace:
    def test_tiny_bmc_trace_is_schema_valid(self, tmp_path):
        path = str(tmp_path / "bmc.jsonl")
        trace.start_trace(path)
        result = bmc(s27(), max_depth=4)
        trace.stop_trace()
        assert result.depth_checked > 0
        records = trace.read_trace(path)
        _validate_schema(records)
        # The BMC frame loop streamed both spans and progress beats.
        frame_spans = [r for r in records if r["ty"] == "E"
                       and r["name"] == "frame"]
        assert len(frame_spans) == result.depth_checked
        beats = [r for r in records if r["ty"] == "P"
                 and r["source"] == "bmc"]
        assert [b["fields"]["frame"] for b in beats] == \
            list(range(result.depth_checked))
        assert all("budget_s" in b["fields"] for b in beats)

    def test_chrome_export_cli(self, tmp_path, capsys):
        path = str(tmp_path / "bmc.jsonl")
        trace.start_trace(path)
        bmc(s27(), max_depth=3)
        trace.stop_trace()
        out = str(tmp_path / "timeline.json")
        assert trace_main(["export", path, "--format", "chrome",
                           "--out", out]) == 0
        with open(out) as handle:
            document = json.load(handle)
        events = document["traceEvents"]
        assert events and document["displayTimeUnit"] == "ms"
        # Balanced span begin/end per name keeps the timeline loadable.
        begins = sum(1 for e in events if e["ph"] == "B")
        ends = sum(1 for e in events if e["ph"] == "E")
        assert begins == ends > 0

    def test_cli_exit_flushes_short_trace(self, tmp_path):
        # A short CLI run emits fewer records than the sink's buffer
        # holds; the atexit flush must still land them on disk.
        from repro.netlist import S27_BENCH
        bench = tmp_path / "s27.bench"
        bench.write_text(S27_BENCH)
        path = str(tmp_path / "cli.jsonl")
        env = dict(os.environ, REPRO_TRACE=path)
        env.pop(trace.TRACE_ID_ENV, None)
        src = os.path.join(os.path.dirname(__file__), "..", "..",
                           "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.tools.bound", str(bench),
             "--strategy", "COM"],
            env=env, capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        records = trace.read_trace(path)
        _validate_schema(records)

    def test_summary_cli_reports_spans(self, tmp_path, capsys):
        path = str(tmp_path / "bmc.jsonl")
        trace.start_trace(path)
        bmc(s27(), max_depth=3)
        trace.stop_trace()
        assert trace_main(["summary", path]) == 0
        out = capsys.readouterr().out
        assert "top spans by self time" in out
        assert "bmc" in out


@pytest.mark.parallel
class TestJobs2Stitching:
    def test_table_jobs2_stitches_into_one_timeline(
            self, tmp_path, monkeypatch):
        base = str(tmp_path / "table.jsonl")
        monkeypatch.setenv(trace.TRACE_ENV, base)
        monkeypatch.delenv(trace.TRACE_ID_ENV, raising=False)
        sink = trace.trace_from_env()
        assert sink is not None
        # The table pipeline exercises the COM sweep in the workers;
        # a tiny BMC under the same parent trace covers the BMC frame
        # events the acceptance criteria name.
        bmc(s27(), max_depth=3)
        run_table1(scale=0.1, designs=["S27", "S298"], jobs=2)
        trace.stop_trace()

        paths = trace.discover_trace_files(base)
        assert len(paths) >= 2, \
            f"expected parent + worker files, got {paths}"
        records = trace.stitch_files(paths)
        _validate_schema(records)
        # One trace id across every process, parent pid + workers.
        assert len({r["trace"] for r in records}) == 1
        pids = {r["pid"] for r in records}
        assert os.getpid() in pids and len(pids) >= 2
        # Wall-clock aligned: the stitched stream is time-ordered.
        stamps = [r["t"] for r in records]
        assert stamps == sorted(stamps)
        # Worker-side sweep rounds and parent-side BMC frames are both
        # on the timeline.
        sources = {r["source"] for r in records if r["ty"] == "P"}
        assert "bmc" in sources
        assert "com.sweep" in sources
        sweep_pids = {r["pid"] for r in records if r["ty"] == "P"
                      and r["source"] == "com.sweep"}
        assert sweep_pids - {os.getpid()}, \
            "no sweep progress came from a worker process"
        # And the stitched stream exports to a loadable Chrome trace.
        document = trace.to_chrome(records)
        json.dumps(document)
        assert len(document["traceEvents"]) > 0


class TestBenchRegress:
    def test_committed_artifacts_report_only_exit_zero(self, capsys):
        code = trace_main(["regress", BENCH_PR3, BENCH_PR4,
                           "--report-only"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bench regress: pr3 -> pr4" in out
        assert "metrics" in out

    def test_injected_slowdown_exits_nonzero(self, tmp_path, capsys):
        with open(BENCH_PR4) as handle:
            artifact = json.load(handle)
        slowed = copy.deepcopy(artifact)
        slowed["rev"] = "slowed"
        for section in slowed["sections"].values():
            if isinstance(section.get("seconds"), (int, float)):
                section["seconds"] = section["seconds"] * 10 + 1.0
        slow_path = str(tmp_path / "BENCH_slowed.json")
        with open(slow_path, "w") as handle:
            json.dump(slowed, handle)
        code = trace_main(["regress", BENCH_PR4, slow_path])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        # Identical artifacts are always clean.
        assert trace_main(["regress", BENCH_PR4, BENCH_PR4]) == 0

    def test_speedup_drop_is_higher_better_regression(
            self, tmp_path, capsys):
        with open(BENCH_PR4) as handle:
            artifact = json.load(handle)
        slowed = copy.deepcopy(artifact)
        encode = slowed["sections"]["encode"]
        if encode.get("encode_speedup"):
            encode["encode_speedup"] = \
                encode["encode_speedup"] / 100.0
        slow_path = str(tmp_path / "BENCH_nospeedup.json")
        with open(slow_path, "w") as handle:
            json.dump(slowed, handle)
        code = trace_main(["regress", BENCH_PR4, slow_path])
        out = capsys.readouterr().out
        assert code == 1
        assert "encode.encode_speedup" in out
