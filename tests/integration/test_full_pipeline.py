"""Integration tests: the paper's full flow on multi-module scenarios.

The end-to-end story: transform the netlist, bound the diameter on the
reduced design, back-translate (Theorems 1-4), and discharge the target
*completely* with a BMC window of that depth.
"""

import pytest

from repro.core import PROVEN, TBVEngine
from repro.diameter import first_hit_time, recurrence_diameter
from repro.gen import blocks, gp, iscas89
from repro.netlist import NetlistBuilder, s27
from repro.sim import BitParallelSimulator
from repro.transform import SweepConfig, phase_abstract, retime
from repro.unroll import FALSIFIED, PROVEN as BMC_PROVEN, bmc

FAST = SweepConfig(sim_cycles=8, sim_width=32, conflict_budget=500)


def guarded_pipeline_design():
    """Pipeline guarded so the target is genuinely unreachable.

    input -> 3-stage pipeline -> AND with its own negation.
    """
    b = NetlistBuilder("guarded")
    sig = b.input("i")
    for k in range(3):
        sig = b.register(sig, name=f"p{k}")
    t = b.buf(b.and_(sig, b.not_(sig)), name="t")
    b.net.add_target(t)
    return b.net, t


def deep_unreachable_design():
    """A design whose unreachability needs a real diameter argument:
    a 3-stage pipeline feeding a comparison that never holds."""
    b = NetlistBuilder("deep")
    x = b.input("x")
    a = x
    for k in range(3):
        a = b.register(a, name=f"a{k}")
    c = x
    for k in range(3):
        c = b.register(c, name=f"b{k}")
    t = b.buf(b.xor(a, c), name="t")  # equal streams: never differs
    b.net.add_target(t)
    return b.net, t


class TestCompleteBMCViaDiameter:
    def test_unreachable_proved_by_bounded_check(self):
        net, t = deep_unreachable_design()
        report = TBVEngine("COM,RET,COM", sweep_config=FAST).run(net)\
            .reports[0]
        assert report.bound is not None and report.bound < 20
        result = bmc(net, t, max_depth=100, complete_bound=report.bound)
        assert result.status == BMC_PROVEN

    def test_reachable_found_within_bound(self):
        net = iscas89.generate("S641")
        engine = TBVEngine("COM,RET,COM", sweep_config=FAST)
        reports = engine.run(net).reports
        checked = 0
        for report in reports:
            if report.status != "bounded" or report.bound >= 30:
                continue
            result = bmc(net, report.target, max_depth=100,
                         complete_bound=report.bound)
            assert result.is_complete
            if result.status == FALSIFIED:
                assert result.counterexample.depth < report.bound
            checked += 1
        assert checked > 0

    def test_com_proves_guarded_target_directly(self):
        net, t = guarded_pipeline_design()
        report = TBVEngine("COM", sweep_config=FAST).run(net).reports[0]
        # AND(x, NOT x) folds to constant 0 during rebuild.
        assert report.status == PROVEN
        assert first_hit_time(net, t) is None

    def test_s27_full_pipeline(self):
        net = s27()
        report = TBVEngine("COM,RET,COM", sweep_config=FAST).run(net)\
            .reports[0]
        hit = first_hit_time(net, net.targets[0])
        assert hit is not None and hit < report.bound
        result = bmc(net, net.targets[0], max_depth=report.bound,
                     complete_bound=report.bound)
        assert result.status == FALSIFIED


class TestPhaseThenRetime:
    def test_latched_gp_design_through_phase_and_retiming(self):
        net = gp.generate_latched("L_FLUSHN", scale=0.05)
        assert net.latches
        engine = TBVEngine("PHASE,COM,RET,COM", sweep_config=FAST)
        result = engine.run(net)
        assert result.netlist.latches == []
        folded = [s for s in result.chain.steps if s.factor == 2]
        assert folded
        for report in result.reports:
            if report.status == "bounded":
                # Theorem 3 doubling is reflected in the final bound.
                assert report.bound >= report.transformed_bound

    def test_phase_abstraction_halves_state(self):
        net = gp.generate_latched("L_SLB", scale=0.05)
        result = phase_abstract(net)
        assert result.netlist.num_registers() * 2 <= len(net.latches) + 1


class TestRecurrenceOnTransformed:
    def test_recurrence_diameter_tightens_after_retiming(self):
        # The paper's future-work note: transformations also help
        # recurrence-diameter engines.  A pipeline has recurrence
        # diameter ~ depth; retimed to combinational it drops to 1.
        b = NetlistBuilder("pipe")
        sig = b.input("i")
        for k in range(4):
            sig = b.register(sig, name=f"p{k}")
        b.net.add_target(sig)
        before = recurrence_diameter(b.net, max_k=40)
        res = retime(b.net)
        after = recurrence_diameter(res.netlist, max_k=40)
        assert after.exact
        lag = res.step.lags[b.net.targets[0]]
        assert after.bound + lag <= before.bound + 1
        assert after.bound == 1  # combinational: single state


class TestGeneratedDesignSanity:
    @pytest.mark.parametrize("name", ["S953", "S641", "S1488"])
    def test_iscas_profiles_match_table(self, name):
        from repro.diameter import StructuralAnalysis

        net = iscas89.generate(name)
        profile = iscas89.profile(name)
        analysis = StructuralAnalysis(net)
        measured = analysis.register_profile()
        total = sum(measured.values())
        # Register population within 15% of the paper's row.
        assert abs(total - profile.registers) <= \
            max(3, 0.15 * profile.registers)
        assert len(net.targets) == profile.targets

    def test_gp_profile_generates(self):
        net = gp.generate("L_SLB", scale=0.5)
        assert net.num_registers() > 0
        assert net.targets

    def test_generation_deterministic(self):
        a = iscas89.generate("S641")
        c = iscas89.generate("S641")
        assert len(a) == len(c)
        assert a.stats() == c.stats()

    def test_blocks_are_observable(self):
        b = NetlistBuilder("obs")
        word = blocks.add_queue(b, 3, 2, "q")
        t = b.buf(b.or_(*word), name="t")
        b.net.add_target(t)
        trace = BitParallelSimulator(b.net).run(
            6, lambda v, c: 1, observe=[t])
        assert 1 in trace[t]
