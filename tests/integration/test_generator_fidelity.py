"""Generator fidelity: every Table 1/2 profile synthesizes faithfully.

For each of the 42 ISCAS89 and 29 GP profiles, the generated netlist
must (a) carry exactly the profiled target count, (b) match the
profiled register population within a small tolerance (motif granules
cause minor rounding), and (c) produce the planned number of
originally-useful targets under the structural bounder — the quantity
the whole Table reproduction calibrates against.
"""

import pytest

from repro.diameter import StructuralAnalysis
from repro.gen import gp, iscas89
from repro.netlist import topological_order

#: Designs small enough to analyze at full scale in CI time.
T1_FULL_SCALE = [n for n in iscas89.design_names()
                 if iscas89.profile(n).registers <= 260]
T2_SCALED = gp.design_names()


@pytest.mark.parametrize("name", T1_FULL_SCALE)
def test_iscas89_profile_fidelity(name):
    profile = iscas89.profile(name)
    net = iscas89.generate(name)
    # Structural sanity: no combinational cycles.
    topological_order(net)
    assert len(net.targets) == profile.targets
    analysis = StructuralAnalysis(net)
    counts = analysis.register_profile()
    total = sum(counts.values())
    tolerance = max(4, int(0.2 * max(1, profile.registers)))
    assert abs(total - profile.registers) <= tolerance, \
        (total, profile.registers)
    useful = sum(1 for t in net.targets if analysis.bound(t) < 50)
    # The original-netlist |T'| is the calibration anchor: exact for
    # small designs, within a small slack for motif-rounded ones.
    assert abs(useful - profile.useful_trio[0]) <= \
        max(1, profile.targets // 10), (useful, profile.useful_trio[0])


@pytest.mark.parametrize("name", T2_SCALED)
def test_gp_profile_fidelity(name):
    profile = gp.profile(name).scaled(0.15)
    net = gp.generate(name, scale=0.15)
    topological_order(net)
    assert len(net.targets) == profile.targets
    analysis = StructuralAnalysis(net)
    useful = sum(1 for t in net.targets if analysis.bound(t) < 50)
    assert abs(useful - profile.useful_trio[0]) <= \
        max(1, profile.targets // 5), (useful, profile.useful_trio[0])


def test_every_table1_profile_recorded():
    assert len(iscas89.design_names()) == 42
    sigma = iscas89.TABLE1_SIGMA
    assert sigma["original"]["useful"] == 477
    assert sigma["crc"]["useful"] == 639
    total = sum(p.registers for p in iscas89.profiles())
    assert total == sum(sigma["original"]["profile"])


def test_every_table2_profile_recorded():
    assert len(gp.design_names()) == 29
    sigma = gp.TABLE2_SIGMA
    assert sigma["original"]["useful"] == 95
    assert sigma["crc"]["useful"] == 126
    total = sum(p.registers for p in gp.profiles())
    assert total == sum(sigma["original"]["profile"])


def test_trios_monotone_or_known_exceptions():
    # The paper's trios are monotone except S38584_1 (COM > CRC, the
    # Theorem 2 penalty the text discusses).
    exceptions = set()
    for profile in iscas89.profiles():
        a, b, c = profile.useful_trio
        if not (a <= b and b <= c):
            exceptions.add(profile.name)
    assert exceptions == {"S38584_1"}
    for profile in gp.profiles():
        a, b, c = profile.useful_trio
        assert a <= b <= c, profile.name
