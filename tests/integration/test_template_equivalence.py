"""Golden equivalence: template stamping vs the direct encode path.

The template layer's parity contract (see :mod:`repro.sat.template`)
promises *identical solver state*, hence identical CDCL search, hence
identical verdicts, bounds and counterexample traces — not merely
equivalent ones.  These tests pin that end to end across the engines
that consume unrollings, and pin the cache economics (hits across
portfolio strategies and across worker processes).
"""

import pytest

from repro import obs
from repro.core.prove import prove
from repro.diameter.recurrence import recurrence_diameter
from repro.netlist import NetlistBuilder, s27
from repro.sat.template import clear_template_cache, use_templates
from repro.unroll import FALSIFIED, PROVEN, bmc, k_induction


def counter_target(width, hit_value):
    b = NetlistBuilder(f"counter{width}")
    regs = b.registers(width, prefix="c")
    b.connect_word(regs, b.increment(regs))
    t = b.word_eq(regs, b.word_const(hit_value, width))
    b.net.add_target(b.buf(t, name="t"))
    return b.net


def unreachable_target():
    b = NetlistBuilder("stuck")
    r = b.register(name="r")
    b.connect(r, r)
    b.net.add_target(r)
    return b.net


def both_paths(run):
    """Run ``run()`` under templates off, then on (cold cache)."""
    clear_template_cache()
    with use_templates(False):
        direct = run()
    clear_template_cache()
    with use_templates(True):
        templated = run()
    return direct, templated


class TestGoldenVerdicts:
    def test_bmc_counterexample_is_bit_identical(self):
        net = counter_target(3, 5)
        direct, templ = both_paths(lambda: bmc(net, max_depth=10))
        assert direct.status == templ.status == FALSIFIED
        assert direct.depth_checked == templ.depth_checked
        cd, ct = direct.counterexample, templ.counterexample
        assert cd.depth == ct.depth
        assert cd.inputs == ct.inputs
        assert cd.initial_state == ct.initial_state

    def test_bmc_proven_matches(self):
        net = unreachable_target()
        direct, templ = both_paths(
            lambda: bmc(net, max_depth=10, complete_bound=3))
        assert direct == templ
        assert direct.status == PROVEN

    def test_bmc_s27_matches(self):
        net = s27()
        direct, templ = both_paths(lambda: bmc(net, max_depth=6))
        assert direct.status == templ.status
        assert direct.depth_checked == templ.depth_checked
        if direct.counterexample is not None:
            assert direct.counterexample == templ.counterexample

    def test_k_induction_proven_matches(self):
        net = unreachable_target()
        direct, templ = both_paths(lambda: k_induction(net, max_k=6))
        assert direct == templ
        assert direct.status == PROVEN

    def test_k_induction_falsified_matches(self):
        net = counter_target(2, 3)
        direct, templ = both_paths(lambda: k_induction(net, max_k=8))
        assert direct.status == templ.status == FALSIFIED
        assert direct.counterexample.inputs \
            == templ.counterexample.inputs
        assert direct.counterexample.initial_state \
            == templ.counterexample.initial_state

    @pytest.mark.parametrize("from_init", [False, True])
    def test_recurrence_bound_matches(self, from_init):
        net = counter_target(3, 7)
        direct, templ = both_paths(
            lambda: recurrence_diameter(net, from_init=from_init,
                                        max_k=12))
        assert direct.bound == templ.bound
        assert direct.exact == templ.exact

    def test_prove_full_stack_matches(self):
        net = s27()
        direct, templ = both_paths(lambda: prove(net))
        assert direct.status == templ.status
        assert direct.method == templ.method
        assert direct.bound == templ.bound


class TestCacheEconomics:
    def test_portfolio_strategies_share_one_compilation(self):
        """A multi-strategy portfolio run compiles each distinct
        netlist structure at most once; re-proving a *fresh* but
        structurally-identical netlist compiles nothing new — every
        template comes out of the cache (the key is the structural
        signature, not object identity)."""
        clear_template_cache()
        reg = obs.get_registry()
        hits0 = reg.counter_value("template.hits")
        compiles0 = reg.counter_value("template.compiles")
        stamped0 = reg.counter_value("template.frames_stamped")
        strategies = ("", "STRASH", "COM")
        prove(s27(), strategies=strategies)
        hits1 = reg.counter_value("template.hits") - hits0
        compiles1 = reg.counter_value("template.compiles") - compiles0
        stamped1 = reg.counter_value("template.frames_stamped") - stamped0
        assert compiles1 >= 1
        assert hits1 > 0
        assert stamped1 > 0
        # Second run over fresh objects: pure cache hits, zero
        # compiles.
        prove(s27(), strategies=strategies)
        compiles2 = reg.counter_value("template.compiles") \
            - compiles0 - compiles1
        hits2 = reg.counter_value("template.hits") - hits0 - hits1
        assert compiles2 == 0
        assert hits2 >= hits1 + compiles1

    def test_worker_processes_report_template_counters(self):
        """Under ``jobs=2`` each worker grows its own process-local
        cache; the merged snapshot surfaces their counters under the
        ``parallel/<pool>/<label>/`` prefix."""
        reg = obs.get_registry()
        snap0 = reg.snapshot()["counters"]
        prove(s27(), jobs=2)
        snap = reg.snapshot()["counters"]
        merged = {
            key: value - snap0.get(key, 0)
            for key, value in snap.items()
            if key.startswith("parallel/")
            and key.endswith("template.frames_stamped")
        }
        assert merged, "no worker template counters merged"
        assert sum(merged.values()) > 0

    def test_jobs_invariance_of_verdict(self):
        net = s27()
        seq = prove(net, jobs=1)
        par = prove(net, jobs=2)
        assert (seq.status, seq.method, seq.bound) \
            == (par.status, par.method, par.bound)
