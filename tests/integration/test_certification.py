"""End-to-end certification integration tests.

The ISSUE's acceptance bar: certified verdicts are byte-identical to
uncertified ones on healthy runs; an injected ``corrupt_learnt`` /
``corrupt_model`` fault is *caught* by the proof checker or witness
replay while the uncertified path silently accepts the answer; and
:func:`repro.core.prove` arbitrates — one cross-core retry, then
graceful degradation to the sound structural bound when certification
fails persistently.
"""

import pytest

from repro import obs
from repro.cert import CertificationFailure, use_certification
from repro.core import prove
from repro.gen import iscas89
from repro.netlist import NetlistBuilder
from repro.resilience import FAULT_CORRUPT_MODEL, FaultPlan, inject
from repro.unroll import (
    BOUNDED,
    FALSIFIED,
    PROVEN,
    bmc,
    k_induction,
)


def counter_target(width, hit_value):
    b = NetlistBuilder(f"counter{width}")
    regs = b.registers(width, prefix="c")
    b.connect_word(regs, b.increment(regs))
    t = b.buf(b.word_eq(regs, b.word_const(hit_value, width)),
              name="t")
    b.net.add_target(t)
    return b.net, t


def unreachable_target():
    b = NetlistBuilder("stuck")
    r = b.register(name="r")
    b.connect(r, r)
    b.net.add_target(r)
    return b.net, r


def s1269():
    """The pinned adversarial instance: large enough that BMC actually
    learns clauses (pure counters solve by propagation alone, so the
    ``corrupt_learnt`` fault would never fire on them)."""
    return iscas89.generate("s1269")


class TestVerdictIdentity:
    """Certification must never change an answer, only audit it."""

    @pytest.mark.parametrize("design", ["s27", "s298"])
    def test_iscas_bmc_verdicts_identical(self, design):
        net = iscas89.generate(design)
        plain = bmc(net, max_depth=12, certify=False)
        certified = bmc(net, max_depth=12, certify=True)
        assert certified.status == plain.status
        assert certified.depth_checked == plain.depth_checked
        if plain.counterexample is None:
            assert certified.counterexample is None
        else:
            assert certified.counterexample.depth == \
                plain.counterexample.depth
            assert certified.counterexample.inputs == \
                plain.counterexample.inputs
            assert certified.counterexample.initial_state == \
                plain.counterexample.initial_state

    def test_counterexample_certified(self):
        net, t = counter_target(3, 5)
        with obs.scoped(obs.Registry("cert-int")) as reg:
            result = bmc(net, t, max_depth=10, certify=True)
            snap = reg.snapshot()
        assert result.status == FALSIFIED
        assert result.counterexample.depth == 5
        # Witness replay ran and the refuted frames 0..4 were
        # proof-checked: two checks, zero failures.
        assert snap["counters"]["cert.checked"] == 2
        assert "cert.failed" not in snap["counters"]

    def test_proven_bmc_certified(self):
        net, t = unreachable_target()
        with obs.scoped(obs.Registry("cert-int")) as reg:
            result = bmc(net, t, max_depth=8, complete_bound=4,
                         certify=True)
            snap = reg.snapshot()
        assert result.status == PROVEN
        assert snap["counters"]["cert.checked"] == 1

    def test_k_induction_proof_certified(self):
        net, t = unreachable_target()
        with obs.scoped(obs.Registry("cert-int")) as reg:
            result = k_induction(net, t, max_k=4, certify=True)
            snap = reg.snapshot()
        assert result.status == PROVEN
        # Base-case BMC frames plus the inductive step each conclude.
        assert snap["counters"]["cert.checked"] >= 1
        assert "cert.failed" not in snap["counters"]


class TestAdversarialCorruption:
    """The point of the layer: corrupted reasoning must not survive."""

    def test_corrupt_learnt_caught_by_proof_check(self):
        net = s1269()
        with inject(FaultPlan(corrupt_learnt=range(10 ** 6))):
            with pytest.raises(CertificationFailure) as info:
                bmc(net, max_depth=12, certify=True)
        assert info.value.stage == "proof"

    def test_corrupt_learnt_accepted_silently_without_certification(self):
        # The same fault under the uncertified path: the run completes
        # and reports a definitive-looking verdict with no hint that
        # conflict analysis was corrupted.  This is the hazard the
        # certification layer exists to close.
        net = s1269()
        with inject(FaultPlan(corrupt_learnt=range(10 ** 6))):
            result = bmc(net, max_depth=12, certify=False)
        assert result.status in (FALSIFIED, BOUNDED, PROVEN)

    def test_corrupt_model_caught_by_witness_replay(self):
        net, t = counter_target(3, 5)
        # Call index 5 is the SAT frame (frames 0..4 refute).
        with inject(FaultPlan(at={5: FAULT_CORRUPT_MODEL})):
            with pytest.raises(CertificationFailure) as info:
                bmc(net, t, max_depth=10, certify=True)
        assert info.value.stage == "witness"
        assert "under simulation" in str(info.value)

    def test_corrupt_model_accepted_silently_without_certification(self):
        net, t = counter_target(3, 5)
        with inject(FaultPlan(at={5: FAULT_CORRUPT_MODEL})):
            result = bmc(net, t, max_depth=10, certify=False)
        assert result.status == FALSIFIED


class TestProveArbitration:
    """prove() retries certification failures on the other solver
    core, then degrades to the sound structural bound."""

    def test_transient_corruption_recovers_via_cross_core_retry(self):
        # Corruption limited to the first few learnt clauses: the
        # first core's proof check fails, the retry on the other core
        # (fault indices already consumed) certifies cleanly.
        net = s1269()
        with obs.scoped(obs.Registry("cert-int")) as reg:
            with use_certification(True):
                with inject(FaultPlan(corrupt_learnt=range(3))):
                    result = prove(net)
            snap = reg.snapshot()
        assert not result.degraded
        assert result.status == "falsified"
        assert snap["counters"]["cert.retried"] >= 1
        assert snap["counters"]["cert.recovered"] >= 1

    def test_persistent_corruption_degrades_to_structural_bound(self):
        net = s1269()
        with obs.scoped(obs.Registry("cert-int")) as reg:
            with use_certification(True):
                with inject(FaultPlan(corrupt_learnt=range(10 ** 6))):
                    result = prove(net)
            snap = reg.snapshot()
        assert result.degraded
        assert result.exhaustion_reason == "certification"
        assert result.method == "structural-fallback"
        assert result.bound is not None
        assert snap["counters"]["cert.retried"] >= 1
        assert "cert.recovered" not in snap["counters"]


def pigeonhole_net(pigeons, holes):
    """PHP(pigeons, holes) as a combinational miter: the target is
    satisfiable iff the (unsatisfiable) pigeonhole formula is, so BMC
    refutes every frame — after enough conflicts to restart and fire
    inprocessing rounds."""
    b = NetlistBuilder(f"php{pigeons}x{holes}")
    x = {(p, h): b.input(f"x{p}_{h}") for p in range(pigeons)
         for h in range(holes)}
    clauses = [b.or_(*(x[p, h] for h in range(holes)))
               for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append(b.or_(b.not_(x[p1, h]),
                                     b.not_(x[p2, h])))
    t = b.buf(b.and_(*clauses), name="t")
    b.net.add_target(t)
    return b.net, t


class TestInprocessingCertified:
    """Tier-1 smoke for the inprocessing pass: a BMC run hard enough
    to restart fires simplify rounds mid-search, and the certified
    verdict is identical with the simplifier on and off."""

    def test_bmc_verdict_identical_and_certified_with_simplify(self):
        from repro.sat import use_simplify

        net, t = pigeonhole_net(6, 5)
        with use_simplify(False):
            off = bmc(net, t, max_depth=1, certify=True)
        with obs.scoped(obs.Registry("cert-int")) as reg:
            with use_simplify(True):
                on = bmc(net, t, max_depth=1, certify=True)
            snap = reg.snapshot()
        assert (on.status, on.depth_checked) == \
            (off.status, off.depth_checked) == (BOUNDED, 1)
        assert on.counterexample is None and off.counterexample is None
        # The run actually exercised the simplifier, certifiedly.
        assert snap["counters"]["simplify.rounds"] >= 1
        assert snap["counters"]["cert.checked"] >= 1
        assert "cert.failed" not in snap["counters"]
