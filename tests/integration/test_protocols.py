"""Integration tests: realistic protocol workloads end to end.

The properties here are genuine safety invariants (one-hot grants,
flag consistency, credit conservation); each is validated against the
exact oracle and then discharged with the library's engines.
"""

import pytest

from repro.core import PROVEN, TBVEngine, prove
from repro.diameter import first_hit_time, structural_diameter_bound
from repro.gen.protocols import (
    credit_channel,
    fifo_with_flags,
    round_robin_arbiter,
)
from repro.transform import SweepConfig
from repro.unroll import PROVEN as BMC_PROVEN, bmc, k_induction

FAST = SweepConfig(sim_cycles=8, sim_width=32, conflict_budget=400)


class TestArbiter:
    def test_property_truly_unreachable(self):
        net, violation = round_robin_arbiter(3)
        assert first_hit_time(net, violation) is None

    def test_grants_actually_happen(self):
        from repro.sim import BitParallelSimulator

        net, violation = round_robin_arbiter(3)
        sim = BitParallelSimulator(net)
        gnt0 = net.by_name("gnt0")
        trace = sim.run(4, lambda v, c: 1, observe=[gnt0])
        assert 1 in trace[gnt0]

    def test_rotation_is_fair(self):
        from repro.sim import BitParallelSimulator

        net, violation = round_robin_arbiter(3)
        sim = BitParallelSimulator(net)
        gnts = [net.by_name(f"gnt{k}") for k in range(3)]
        trace = sim.run(6, lambda v, c: 1, observe=gnts)
        # With everyone requesting, each client is granted twice in six
        # cycles (perfect rotation).
        for g in gnts:
            assert sum(trace[g]) == 2

    def test_discharged_by_prove(self):
        net, violation = round_robin_arbiter(3)
        result = prove(net, violation, sweep_config=FAST,
                       max_complete_depth=40, induction_k=4)
        assert result.status == "proven"

    def test_bounded_proof_via_diameter(self):
        net, violation = round_robin_arbiter(2)
        bound = structural_diameter_bound(net, violation)
        if bound <= 64:
            check = bmc(net, violation, max_depth=bound,
                        complete_bound=bound)
            assert check.status == BMC_PROVEN


class TestFifo:
    def test_flags_never_conflict(self):
        net, violation = fifo_with_flags(depth=3, width=1)
        assert first_hit_time(net, violation) is None

    def test_full_reachable(self):
        # Sanity: the full flag itself is reachable (push-only run).
        from repro.sim import BitParallelSimulator

        net, violation = fifo_with_flags(depth=2, width=1)
        sim = BitParallelSimulator(net)
        full = net.by_name("full")
        push = net.by_name("push")
        trace = sim.run(5, lambda v, c: 1 if v == push else 0,
                        observe=[full])
        assert 1 in trace[full]

    def test_k_induction_proves_flag_property(self):
        net, violation = fifo_with_flags(depth=2, width=1)
        result = k_induction(net, violation, max_k=6)
        assert result.status == BMC_PROVEN

    def test_engine_bounds_are_sound(self):
        net, violation = fifo_with_flags(depth=2, width=2)
        report = TBVEngine("COM,RET,COM",
                           sweep_config=FAST).run(net).reports[0]
        hit = first_hit_time(net, violation)
        if report.status == PROVEN:
            assert hit is None
        elif hit is not None:
            assert hit < report.bound


class TestCreditChannel:
    def test_conservation_truly_holds(self):
        net, violation = credit_channel(credits=2)
        assert first_hit_time(net, violation) is None

    def test_sends_happen_and_credits_return(self):
        from repro.sim import BitParallelSimulator

        net, violation = credit_channel(credits=2)
        sim = BitParallelSimulator(net)
        send = net.by_name("send")
        back = net.by_name("credit_back")
        trace = sim.run(6, lambda v, c: 1, observe=[send, back])
        assert 1 in trace[send]
        assert 1 in trace[back]

    def test_discharged_by_prove(self):
        net, violation = credit_channel(credits=2)
        result = prove(net, violation, sweep_config=FAST,
                       max_complete_depth=40, induction_k=6)
        assert result.status == "proven"

    def test_starvation_without_returns_would_violate_liveness_not_safety(
            self):
        # Drive want_send always, verify credits bottom out (send goes
        # quiet) without ever violating the safety target.
        from repro.sim import BitParallelSimulator

        net, violation = credit_channel(credits=1)
        sim = BitParallelSimulator(net)
        send = net.by_name("send")
        trace = sim.run(8, lambda v, c: 1, observe=[send, violation])
        assert all(v == 0 for v in trace[violation])
