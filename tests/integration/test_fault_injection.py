"""Fault-injection and budget integration tests.

The ISSUE's acceptance bar: under an injected solver timeout at *any*
scripted call index, :func:`repro.core.prove` and the experiment
runner must still return a sound structural bound — never one derived
from an approximation engine — and the full table must complete with
error cells.  These tests drive that end to end with
:mod:`repro.resilience.faults` plans and hierarchical budgets, and
assert the degradation paths through the obs counters they increment.
"""

import pytest

from repro import obs
from repro.core import FALSIFIED, PROVEN, UNKNOWN, prove
from repro.core.portfolio import compare_strategies
from repro.diameter import first_hit_time
from repro.diameter.structural import StructuralAnalysis
from repro.experiments.runner import (
    cumulative,
    evaluate_design,
    format_table,
    run_table,
)
from repro.gen import iscas89
from repro.netlist import NetlistBuilder
from repro.resilience import (
    Budget,
    Cancelled,
    FAULT_CRASH,
    FAULT_TIMEOUT,
    FAULT_UNKNOWN,
    FaultPlan,
    inject,
)
from repro.transform import SweepConfig
from repro.unroll import ABORTED, bmc
from repro.unroll import FALSIFIED as BMC_FALSIFIED

FAST = SweepConfig(sim_cycles=6, sim_width=32, conflict_budget=200)


def mod_counter_target(width, modulus, value):
    b = NetlistBuilder("mod")
    regs = b.registers(width, prefix="c")
    wrap = b.word_eq(regs, b.word_const(modulus - 1, width))
    bump = b.word_mux(wrap, b.word_const(0, width), b.increment(regs))
    b.connect_word(regs, bump)
    t = b.buf(b.word_eq(regs, b.word_const(value, width)), name="t")
    b.net.add_target(t)
    return b.net, t


def sample_indices(n):
    """A cheap-but-representative index sample: the first few calls,
    a Fibonacci spread through the middle, and the very last call."""
    wanted = {0, 1, 2, 3, 5, 8, 13, 21, n - 1}
    return sorted(i for i in wanted if 0 <= i < n)


class TestBMCAbortMidFrame:
    def test_timeout_fault_aborts_with_frame_invariant(self):
        net, t = mod_counter_target(3, 8, 5)  # first hit at depth 5
        with inject(FaultPlan(at={2: FAULT_TIMEOUT})) as plan:
            check = bmc(net, t, max_depth=8)
        assert check.status == ABORTED
        # Frames 0 and 1 got definitive answers; frame 2 did not.
        assert check.depth_checked == 2
        assert check.exhaustion_reason == "deadline"
        assert plan.injected == [(2, FAULT_TIMEOUT)]

    def test_spurious_unknown_aborts_without_reason(self):
        net, t = mod_counter_target(3, 8, 5)
        with inject(FaultPlan(at={0: FAULT_UNKNOWN})):
            check = bmc(net, t, max_depth=8)
        assert check.status == ABORTED
        assert check.depth_checked == 0
        assert check.exhaustion_reason is None

    def test_query_budget_aborts_mid_frame(self):
        net, t = mod_counter_target(3, 8, 5)
        check = bmc(net, t, max_depth=8, budget=Budget(queries=3))
        assert check.status == ABORTED
        assert check.depth_checked == 3
        assert check.exhaustion_reason == "queries"

    def test_unfaulted_run_still_falsifies(self):
        net, t = mod_counter_target(3, 8, 5)
        with inject(FaultPlan(at={100: FAULT_CRASH})):
            check = bmc(net, t, max_depth=8)
        assert check.status == BMC_FALSIFIED
        assert check.counterexample.depth == 5


class TestProveDegradation:
    """prove() must stay sound under a fault at ANY solver-call index.

    Soundness here is checkable exactly: the mod-6 counter reaches
    value 4 at time 4 and never reaches value 7, so any ``falsified``
    verdict must carry a depth-4 counterexample, any ``proven``
    verdict is only legitimate on the unreachable target, and any
    ``unknown`` must still carry a bound no worse than the structural
    analysis of the untransformed netlist (2**3 = 8 here).
    """

    STRUCTURAL_CAP = 8

    def _faultless_calls(self, net):
        with inject(FaultPlan(at={})) as plan:
            prove(net, sweep_config=FAST, refine_gc_limit=4)
        return plan.calls

    def _assert_sound(self, result, reachable):
        if result.status == PROVEN:
            assert not reachable
        elif result.status == FALSIFIED:
            assert reachable
            assert result.counterexample is not None
            assert result.counterexample.depth == 4
        else:
            assert result.status == UNKNOWN
            assert result.bound is not None
            assert result.bound <= self.STRUCTURAL_CAP

    @pytest.mark.timeout_guard(240)
    def test_timeout_at_every_sampled_index_unreachable(self):
        net, t = mod_counter_target(3, 6, 7)  # 7 is unreachable
        n = self._faultless_calls(net)
        assert n > 0
        for index in sample_indices(n):
            with inject(FaultPlan(at={index: FAULT_TIMEOUT})):
                result = prove(net, sweep_config=FAST,
                               refine_gc_limit=4)
            self._assert_sound(result, reachable=False)

    @pytest.mark.timeout_guard(240)
    def test_timeout_at_sampled_indices_reachable(self):
        net, t = mod_counter_target(3, 6, 4)  # reachable at time 4
        n = self._faultless_calls(net)
        for index in (0, min(3, n - 1), n - 1):
            with inject(FaultPlan(at={index: FAULT_TIMEOUT})):
                result = prove(net, sweep_config=FAST,
                               refine_gc_limit=4)
            self._assert_sound(result, reachable=True)

    @pytest.mark.timeout_guard(240)
    def test_crash_at_sampled_indices(self):
        net, t = mod_counter_target(3, 6, 7)
        n = self._faultless_calls(net)
        for index in (0, min(5, n - 1), n - 1):
            with inject(FaultPlan(at={index: FAULT_CRASH})):
                result = prove(net, sweep_config=FAST,
                               refine_gc_limit=4)
            self._assert_sound(result, reachable=False)

    def test_dead_solver_degrades_to_structural_bound(self):
        # Every single solver call times out: no engine can conclude,
        # yet the verdict still carries the sound structural bound.
        for value, reachable in ((7, False), (4, True)):
            net, t = mod_counter_target(3, 6, value)
            with inject(FaultPlan(after=0)):
                result = prove(net, sweep_config=FAST,
                               refine_gc_limit=4)
            assert result.status == UNKNOWN
            assert result.bound is not None
            assert result.bound <= self.STRUCTURAL_CAP
            # Never an approximation-derived bound: it matches what
            # the structural engine says about the original netlist.
            assert result.bound <= StructuralAnalysis(net).bound(t)
            self._assert_sound(result, reachable)

    def test_budget_exhaustion_downgrades_with_counter(self):
        net, t = mod_counter_target(3, 6, 7)
        with obs.scoped(obs.Registry("test")) as reg:
            result = prove(net, sweep_config=FAST,
                           budget=Budget(conflicts=0, name="starved"))
        assert result.degraded
        assert result.method == "structural-fallback"
        assert result.exhaustion_reason is not None
        assert result.bound is not None
        assert result.bound <= self.STRUCTURAL_CAP
        assert reg.counter_value("resilience.downgrades") >= 1

    def test_cancellation_propagates(self):
        net, t = mod_counter_target(3, 6, 7)
        budget = Budget(name="cancelled")
        budget.cancel()
        with pytest.raises(Cancelled):
            prove(net, sweep_config=FAST, budget=budget)


class TestPortfolioFallback:
    def test_crashing_solver_leaves_sat_free_strategies_standing(self):
        net, t = mod_counter_target(3, 6, 7)
        with obs.scoped(obs.Registry("test")) as reg:
            with inject(FaultPlan(after=0, action=FAULT_CRASH)):
                portfolio = compare_strategies(net, sweep_config=FAST)
        # Every strategy has a recorded outcome — none vanished.
        assert len(portfolio.outcomes) == 5
        failed = [o for o in portfolio.outcomes if not o.ok]
        assert failed, "SAT-using strategies should have crashed"
        for outcome in failed:
            assert outcome.error
        # The SAT-free strategies survive and the best bound is the
        # sound structural one.
        bound, strategy = portfolio.best(t)
        assert bound is not None
        assert bound <= StructuralAnalysis(net).bound(t)
        assert reg.counter_value("portfolio.failures") == len(failed)

    def test_exhausted_portfolio_budget_skips_with_outcomes(self):
        net, t = mod_counter_target(3, 6, 7)
        with obs.scoped(obs.Registry("test")) as reg:
            portfolio = compare_strategies(
                net, sweep_config=FAST,
                budget=Budget(wall_seconds=0.0, name="dry"))
        assert len(portfolio.outcomes) == 5
        assert all(not o.ok for o in portfolio.outcomes)
        assert reg.counter_value("portfolio.budget_skips") == 5


class TestRunnerErrorCells:
    def test_crashing_solver_yields_error_cells_not_aborts(self):
        net, t = mod_counter_target(3, 6, 7)
        with obs.scoped(obs.Registry("test")) as reg:
            with inject(FaultPlan(after=0, action=FAULT_CRASH)):
                row = evaluate_design(net, sweep_config=FAST)
        # The SAT-free original column completes; the COM-based
        # columns degrade to error cells.
        assert set(row.columns) == {"original", "com", "crc"}
        assert row.columns["original"].ok
        assert not row.columns["com"].ok
        assert not row.columns["crc"].ok
        assert reg.counter_value("runner.error_cells") == 2
        # The sigma row skips error cells and the renderer marks them.
        sigma = cumulative([row])
        assert sigma.columns["com"].targets == 0
        assert sigma.columns["original"].targets == len(net.targets)
        rendered = format_table([row], "faulted table")
        assert "!!" in rendered

    def test_exhausted_budget_marks_cells_with_reason(self):
        net, t = mod_counter_target(3, 6, 7)
        row = evaluate_design(net, sweep_config=FAST,
                              budget=Budget(queries=0, name="dry"))
        assert set(row.columns) == {"original", "com", "crc"}
        for col in row.columns.values():
            assert not col.ok
            assert col.exhaustion_reason == "queries"

    def test_failing_design_becomes_error_row(self):
        def bad_generate(name, scale=1.0):
            raise RuntimeError("synthetic generation failure")

        profiles = [iscas89.profile("S27"), iscas89.profile("S298")]
        with obs.scoped(obs.Registry("test")) as reg:
            rows = run_table(bad_generate, profiles)
        assert [r.name for r in rows] == ["S27", "S298"]
        assert all(r.error == "synthetic generation failure"
                   for r in rows)
        assert reg.counter_value("runner.design_errors") == 2
        rendered = format_table(rows, "all-failed table")
        assert rendered.count("!!") >= 2
        assert "Σ" in rendered  # the sigma row still renders

    def test_zero_budget_table_completes_with_error_rows(self):
        profiles = [iscas89.profile("S27")]
        rows = run_table(iscas89.generate, profiles,
                         budget=Budget(wall_seconds=0.0, name="dry"))
        assert len(rows) == 1
        assert rows[0].error == "budget exhausted (deadline)"
        assert format_table(rows, "budgeted table")

    def test_cancellation_is_the_only_table_abort(self):
        budget = Budget(name="cancelled")
        budget.cancel()
        with pytest.raises(Cancelled):
            run_table(iscas89.generate, [iscas89.profile("S27")],
                      budget=budget)
