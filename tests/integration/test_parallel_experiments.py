"""Integration tests for the --jobs fan-out: determinism, fault
tolerance, and the prove() engine race.

All pooled tests carry the ``parallel`` marker; they run in tier-1 (the
marker is informational, not excluded) and use tiny designs so the
process-pool overhead dominates the solver work.
"""

import pytest

from repro import obs
from repro.core import compare_strategies
from repro.core.prove import prove
from repro.experiments.runner import format_table, run_table
from repro.experiments.table1 import run as run_table1
from repro.gen import iscas89
from repro.netlist import s27
from repro.resilience import FAULT_CRASH, FaultPlan, inject

DESIGNS = ["S27", "S298"]


@pytest.mark.parallel
class TestTableDeterminism:
    def test_table1_jobs2_byte_identical(self):
        rows1 = run_table1(scale=0.1, designs=DESIGNS, jobs=1)
        rows2 = run_table1(scale=0.1, designs=DESIGNS, jobs=2)
        title = "Table 1: ISCAS89 (profile-synthesized)"
        assert format_table(rows2, title) == format_table(rows1, title)

    def test_row_order_is_design_order(self):
        rows = run_table1(scale=0.1, designs=DESIGNS, jobs=2)
        assert [row.name for row in rows] == DESIGNS

    def test_rows_carry_full_columns(self):
        rows = run_table1(scale=0.1, designs=["S27"], jobs=2)
        assert rows[0].error is None
        for column in rows[0].columns.values():
            assert column.ok


@pytest.mark.parallel
class TestTableFaultTolerance:
    def test_injected_crash_yields_error_cells_not_abort(self):
        # Every worker re-arms the shipped plan from call index 0, so
        # each design's first solver call raises EngineFailure; the
        # table must still complete, with error cells where the crash
        # landed and intact cells elsewhere.
        with inject(FaultPlan(at={0: FAULT_CRASH})):
            rows = run_table(iscas89.generate, iscas89.profiles(),
                             scale=0.1, designs=DESIGNS, jobs=2)
        assert [row.name for row in rows] == DESIGNS
        error_cells = [
            column
            for row in rows
            for column in row.columns.values()
            if column.error is not None
        ]
        assert error_cells, "the injected crash never surfaced"
        # The renderer accepts the mixed rows unchanged.
        assert "Σ" in format_table(rows, "faulted")

    def test_generation_failure_is_error_row(self):
        def boom(name, scale=1.0):
            raise RuntimeError("generator exploded")

        profiles = iscas89.profiles()[:2]
        rows = run_table(boom, profiles, scale=0.1, jobs=2)
        assert len(rows) == 2
        assert all(row.error is not None for row in rows)


@pytest.mark.parallel
class TestPortfolioAndProve:
    def test_portfolio_jobs2_matches_sequential(self):
        net = s27()
        seq = compare_strategies(net, strategies=("", "COM"), jobs=1)
        par = compare_strategies(net, strategies=("", "COM"), jobs=2)
        target = net.targets[0]
        assert par.best(target) == seq.best(target)
        assert [o.strategy for o in par.outcomes] == \
            [o.strategy for o in seq.outcomes]

    def test_portfolio_telemetry_lands_under_parallel_prefix(self):
        with obs.scoped(obs.Registry("t")) as reg:
            compare_strategies(s27(), strategies=("", "COM"), jobs=2)
            snap = reg.snapshot()
        prefixed = [key for key in snap["counters"]
                    if key.startswith("parallel/portfolio/")]
        assert prefixed
        assert snap["counters"]["parallel.tasks"] == 2

    def test_prove_jobs2_matches_sequential_verdict(self):
        net = s27()
        seq = prove(net, jobs=1)
        par = prove(net, jobs=2)
        assert par.status == seq.status
        assert par.method == seq.method
        assert par.bound == seq.bound
